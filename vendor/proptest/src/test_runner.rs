//! Deterministic case generation: configuration and the test RNG.

/// Per-`proptest!` configuration. Only `cases` is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The shim's case RNG: xoshiro256++ seeded from a name hash, so every
/// test gets an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds from a test name (FNV-1a hash expanded by SplitMix64).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Seeds from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }
}
