//! The `Strategy` trait and the combinators the workspace uses:
//! `prop_map`, `prop_recursive`, `boxed`, ranges, tuples, `Just`, and
//! `Union` (the engine behind `prop_oneof!`).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values for property tests.
///
/// The shim reduces proptest's value-tree model to direct generation:
/// `generate` draws one value, and there is no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `self` generates leaves, and `recurse` wraps
    /// an inner strategy into one more level of structure, up to `depth`
    /// levels. The `_desired_size` / `_expected_branch_size` hints of real
    /// proptest are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            // Each level draws a leaf with some probability, so generated
            // structures span the whole size range up to `depth`.
            let inner = weighted_pair(base.clone(), cur, 0.35);
            cur = recurse(inner).boxed();
        }
        weighted_pair(base, cur, 0.2)
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

fn weighted_pair<T: 'static>(
    a: BoxedStrategy<T>,
    b: BoxedStrategy<T>,
    p_a: f64,
) -> BoxedStrategy<T> {
    BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
        if rng.uniform_f64() < p_a {
            a.generate(rng)
        } else {
            b.generate(rng)
        }
    }))
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.uniform_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.uniform_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
