#![forbid(unsafe_code)]
//! Vendored shim for the subset of the `proptest` crate API this
//! workspace uses.
//!
//! Cases are generated from a deterministic per-test seed (a hash of the
//! test's module path and name), so failures are reproducible, but there
//! is **no shrinking**: a failing case panics with its case number and
//! the assertion message. `prop_assume!` ends the case successfully
//! instead of resampling.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Defines property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(40))] // optional
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u64..100, v in arb_thing(), flag: bool) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let __outcome: ::core::result::Result<(), ::std::string::String> = {
                    $crate::__proptest_bind! { rng = __rng; $($params)* }
                    #[allow(clippy::redundant_closure_call)]
                    (move || {
                        { $body }
                        ::core::result::Result::Ok(())
                    })()
                };
                if let ::core::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest case #{} of {} failed: {}",
                        __case, stringify!($name), __msg
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    (rng = $rng:ident;) => {};
    (rng = $rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    (rng = $rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { rng = $rng; $($rest)* }
    };
    (rng = $rng:ident; $name:ident : $ty:ty) => {
        let $name = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    (rng = $rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind! { rng = $rng; $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body (fails the case, with a
/// formatted message if given).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`", __l, __r));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l, __r, ::std::format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if *__l == *__r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`", __l, __r));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if *__l == *__r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l, __r, ::std::format!($($fmt)+)));
        }
    }};
}

/// Discards the current case when the assumption does not hold. The shim
/// ends the case successfully instead of resampling.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
