//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A size specification: a fixed length or a length range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
