//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Fair-coin strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any;

/// The fair-coin strategy value.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
