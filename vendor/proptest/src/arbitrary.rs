//! `any::<T>()` for the handful of types the workspace asks for.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy of `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-range strategy for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    type Strategy = crate::bool::Any;

    fn arbitrary() -> Self::Strategy {
        crate::bool::ANY
    }
}

impl Arbitrary for crate::sample::Index {
    type Strategy = crate::sample::IndexStrategy;

    fn arbitrary() -> Self::Strategy {
        crate::sample::IndexStrategy
    }
}
