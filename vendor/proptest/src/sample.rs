//! Sampling helpers (`prop::sample::Index`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length-agnostic index: drawn once, projected onto any collection
/// length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects onto `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

/// Strategy generating [`Index`] values.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;

    fn generate(&self, rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}
