//! The glob-import surface test files use (`use proptest::prelude::*`).

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Namespace alias so `prop::collection::vec`, `prop::sample::Index` and
/// `prop::bool::ANY` resolve as they do with the real crate.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::sample;
}
