#![forbid(unsafe_code)]
//! Vendored shim for the subset of the `criterion` crate API this
//! workspace uses: wall-clock micro-benchmarks with a calibrated
//! iteration count and a compact median report.
//!
//! The statistical machinery of real criterion (outlier analysis, HTML
//! reports, regression detection) is out of scope; numbers printed here
//! are `[min median max]` over `sample_size` samples.

use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The first positional CLI argument, if any — a substring filter on
/// benchmark ids, matching real criterion's `cargo bench -- <filter>`.
fn name_filter() -> Option<&'static str> {
    static FILTER: OnceLock<Option<String>> = OnceLock::new();
    FILTER
        .get_or_init(|| std::env::args().skip(1).find(|a| !a.starts_with('-')))
        .as_deref()
}

fn filtered_out(id: &str) -> bool {
    name_filter().is_some_and(|f| !id.contains(f))
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_secs: f64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_secs: 0.30,
        }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if filtered_out(id) {
            return self;
        }
        let stats = run_samples(self, &mut routine);
        report(id, &stats, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Per-sample timing loop handle.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        if filtered_out(&full_id) {
            return self;
        }
        let stats = run_samples(self.criterion, &mut routine);
        report(&full_id, &stats, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id);
        if filtered_out(&full_id) {
            return self;
        }
        let stats = run_samples(self.criterion, &mut |b: &mut Bencher| routine(b, input));
        report(&full_id, &stats, self.throughput);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier (function name and/or parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function_name, &self.parameter) {
            (Some(n), Some(p)) => write!(f, "{n}/{p}"),
            (Some(n), None) => write!(f, "{n}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

struct Stats {
    min_ns: f64,
    median_ns: f64,
    max_ns: f64,
}

fn run_samples<F: FnMut(&mut Bencher)>(criterion: &Criterion, routine: &mut F) -> Stats {
    // Calibration pass: one iteration, also serving as warm-up.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let per_iter_ns = (bencher.elapsed.as_nanos() as f64).max(1.0);
    let budget_ns = criterion.measurement_secs * 1e9 / criterion.sample_size as f64;
    let iters = (budget_ns / per_iter_ns).clamp(1.0, 1e9) as u64;

    let mut samples: Vec<f64> = (0..criterion.sample_size)
        .map(|_| {
            bencher.iters = iters;
            routine(&mut bencher);
            bencher.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    Stats {
        min_ns: samples[0],
        median_ns: samples[samples.len() / 2],
        max_ns: samples[samples.len() - 1],
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} Gelem/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} Melem/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} Kelem/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} elem/s")
    }
}

fn report(id: &str, stats: &Stats, throughput: Option<Throughput>) {
    println!(
        "{:<48} time: [{} {} {}]",
        id,
        fmt_time(stats.min_ns),
        fmt_time(stats.median_ns),
        fmt_time(stats.max_ns)
    );
    if let Some(t) = throughput {
        let per_iter = match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
        };
        let unit = per_iter * 1e9 / stats.median_ns;
        let label = match t {
            Throughput::Elements(_) => fmt_rate(unit),
            Throughput::Bytes(_) => format!("{:.3} MiB/s", unit / (1024.0 * 1024.0)),
        };
        println!("{:<48} thrpt: [{}]", "", label);
    }
}

/// Defines a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; there is
            // nothing to verify in that mode.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
