#![forbid(unsafe_code)]
//! Vendored shim for the subset of the `rand` crate API this workspace
//! uses: a seedable `StdRng` plus `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically
//! solid for simulation workloads, deterministic per seed, and free of
//! external dependencies. It is *not* the same stream as the real
//! `rand::rngs::StdRng` (ChaCha12), so seeds produce different (but
//! equally valid) pattern sequences.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding constructor (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of `Self` from raw bits (the shim's stand-in for
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range from which a single value can be drawn (the shim's stand-in
/// for `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        f64::sample(self) < p
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_bool_extremes_and_frequency() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.25).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(2u32..=5);
            assert!((2..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
