//! The PROTEST pipeline of the paper's Fig. 8, end to end.
//!
//! 1. Estimate signal probabilities at every net.
//! 2. Compute per-fault detection probabilities.
//! 3. Compute the random test length for a demanded confidence.
//! 4. Optimize per-input signal probabilities ("orders of magnitudes"
//!    shorter tests).
//! 5. Generate weighted random patterns and validate by static fault
//!    simulation.
//!
//! Run with: `cargo run --release --example protest_flow`

use dynmos::netlist::generate::{domino_wide_and, single_cell_network};
use dynmos::protest::{
    detection_probabilities, network_fault_list, optimize_input_probabilities,
    signal_probabilities, test_length, FaultSimulator, PatternSource,
};

fn main() {
    let n = 10;
    let net = single_cell_network(domino_wide_and(n));
    let faults = network_fault_list(&net);
    let confidence = 0.999;
    println!(
        "circuit: {}-input domino AND, {} faults, confidence {confidence}",
        n,
        faults.len()
    );

    // 1. Signal probabilities under uniform inputs.
    let uniform = vec![0.5f64; n];
    let sig = signal_probabilities(&net, &uniform);
    let po = net.primary_outputs()[0];
    println!(
        "signal probability at the output (uniform inputs): {:.6}",
        sig[po.index()]
    );

    // 2. Detection probabilities.
    let det = detection_probabilities(&net, &faults, &uniform);
    let (hardest_idx, hardest_p) = det
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("nonempty fault list");
    println!(
        "hardest fault: {} with detection probability {:.6}",
        faults[hardest_idx].label, hardest_p
    );

    // 3. Test length at uniform inputs.
    let n_uniform = test_length(&det, confidence);
    println!("required test length (uniform):   {n_uniform}");

    // 4. Optimized input probabilities.
    let report = optimize_input_probabilities(&net, &faults, confidence, 8);
    println!(
        "required test length (optimized): {} (improvement {:.0}x)",
        report.optimized_length,
        report.improvement()
    );
    println!(
        "optimized probabilities: {:?}",
        report
            .probabilities
            .iter()
            .map(|p| (p * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    // 5. Validate both predictions by fault simulation.
    for (label, probs, budget) in [
        ("uniform", uniform.clone(), 4 * n_uniform),
        (
            "optimized",
            report.probabilities.clone(),
            4 * report.optimized_length,
        ),
    ] {
        let mut src = PatternSource::new(0xACE1, probs);
        let out = FaultSimulator::new(&net).run_random(&faults, &mut src, budget);
        let worst = out.detected_at.iter().flatten().max().copied().unwrap_or(0);
        println!(
            "fault simulation [{label}]: coverage {:.1}% within {} patterns (last detection at #{worst})",
            100.0 * out.coverage(),
            out.patterns_applied,
        );
    }
}
