//! The two-phase dynamic nMOS discipline of the paper's Figs. 6 and 7.
//!
//! Builds the c17 benchmark in dynamic nMOS NAND cells, verifies the
//! two-phase clocking discipline (gates alternate Φ1/Φ2 along every arc),
//! evaluates it both at gate level and — for one gate — at switch level
//! through the full clock sequence, and shows that the paper's fault
//! classes hold on a multi-gate network.
//!
//! Run with: `cargo run --example dynamic_nmos_pipeline`

use dynmos::logic::{parse_expr, VarTable};
use dynmos::model::{validate_cell, FaultLibrary};
use dynmos::netlist::generate::c17_dynamic_nmos;
use dynmos::netlist::parse_cell;
use dynmos::switch::gates::dynamic_nmos_gate;
use dynmos::switch::Sim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. c17 in dynamic nMOS, with a legal two-phase assignment.
    let net = c17_dynamic_nmos();
    net.check_clocking()?;
    println!(
        "c17(dynamic nMOS): {} gates, depth {}, two-phase discipline OK",
        net.gates().len(),
        net.depth()
    );
    for (gi, inst) in net.gates().iter().enumerate() {
        println!("  gate g{gi}: phase {}", inst.phase);
    }

    // 2. Gate-level truth check against the NAND reference.
    let nand = |x: bool, y: bool| !(x && y);
    let mut mismatches = 0;
    for w in 0..32u32 {
        let i: Vec<bool> = (0..5).map(|k| (w >> k) & 1 == 1).collect();
        let n1 = nand(i[0], i[2]);
        let n2 = nand(i[2], i[3]);
        let n3 = nand(i[1], n2);
        let n4 = nand(n2, i[4]);
        let expect = vec![nand(n1, n3), nand(n3, n4)];
        if net.eval(&i) != expect {
            mismatches += 1;
        }
    }
    println!("exhaustive check vs NAND reference: {mismatches} mismatches");
    assert_eq!(mismatches, 0);

    // 3. One NAND cell at switch level, through the full Fig. 6 clock
    //    sequence (load at Phi2, latch, precharge at Phi1, evaluate).
    let mut vars = VarTable::new();
    let t = parse_expr("a*b", &mut vars)?;
    let gate = dynamic_nmos_gate(&t, 2)?;
    println!("\nswitch-level NAND2 through the two-phase sequence:");
    for w in 0..4u64 {
        let mut sim = Sim::new(&gate.circuit);
        let out = gate.evaluate(&mut sim, w);
        println!("  a={} b={} -> z={}", w & 1, (w >> 1) & 1, out);
    }

    // 4. The paper's theorem on this cell: every physical fault stays
    //    combinational and matches its predicted class.
    let cell = parse_cell(
        "nand2",
        "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a*b;",
    )?;
    let validation = validate_cell(&cell);
    println!(
        "\ntheorem check on nand2: {} faults, all combinational: {}, all match prediction: {}",
        validation.faults.len(),
        validation.all_combinational(),
        validation.all_match()
    );
    assert!(validation.all_combinational() && validation.all_match());

    // 5. The cell's fault library (note both precharge faults collapse to
    //    s0-z — the paper's "very interesting fact").
    let lib = FaultLibrary::generate(&cell);
    println!("\n{lib}");
    Ok(())
}
