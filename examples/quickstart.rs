//! Quickstart: generate the paper's Fig. 9 fault library and test it.
//!
//! Reproduces the section-5 table of the paper — the ten distinguishable
//! fault classes of the domino gate `u = a*(b+c) + d*e` — then derives a
//! compact deterministic test set, doubles it per the paper's apply-twice
//! rule, and confirms full coverage by fault simulation.
//!
//! Run with: `cargo run --example quickstart`

use dynmos::atpg::{apply_twice, generate_test_set};
use dynmos::model::FaultLibrary;
use dynmos::netlist::generate::single_cell_network;
use dynmos::netlist::parse_cell;
use dynmos::protest::{network_fault_list, FaultSimulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The cell, in the paper's own description language (Fig. 9).
    let cell = parse_cell(
        "fig9",
        "TECHNOLOGY domino-CMOS;
         INPUT a,b,c,d,e;
         OUTPUT u;
         x1 := a*(b+c);
         x2 := d*e;
         u := x1+x2;",
    )?;

    // 2. The fault library: all faulty functions, equivalence-collapsed,
    //    in minimum disjunctive form — the paper's section-5 table.
    let lib = FaultLibrary::generate(&cell);
    println!("{lib}");

    // 3. A deterministic test set for the network-level fault list.
    let net = single_cell_network(cell);
    let faults = network_fault_list(&net);
    let report = generate_test_set(&net, &faults, 0);
    println!(
        "ATPG: {} tests cover {} faults ({} redundant, {} aborted)",
        report.tests.len(),
        faults.len(),
        report.redundant.len(),
        report.aborted.len()
    );

    // 4. Apply the set exactly twice (assumptions A1/A2) and verify
    //    full coverage by fault simulation.
    let doubled = apply_twice(&report.tests);
    let sim = FaultSimulator::new(&net);
    let outcome = sim.run_patterns(&faults, &doubled);
    println!(
        "fault simulation: {:.1}% coverage with {} patterns",
        100.0 * outcome.coverage(),
        outcome.patterns_applied
    );
    assert_eq!(outcome.coverage(), 1.0);
    Ok(())
}
