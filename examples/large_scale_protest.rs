//! PROTEST at production scale: exact-by-BDD and Monte Carlo beyond the
//! enumeration limit.
//!
//! The paper's enumerative analysis is fine for cells; "large scaled
//! integrated circuits" need either symbolic functions or sampling. This
//! example analyzes a 61-input carry chain (impossible to enumerate:
//! 2^61 rows) three ways and shows they agree where they overlap:
//!
//! * exact BDD-based detection probabilities (linear in BDD size here),
//! * Monte Carlo estimates with confidence intervals,
//! * BDD-extracted deterministic test patterns, cross-checked against
//!   the PODEM engine.
//!
//! Run with: `cargo run --release --example large_scale_protest`

use dynmos::atpg::{generate_test, AtpgOutcome};
use dynmos::netlist::generate::carry_chain;
use dynmos::protest::symbolic::{bdd_detection_probability, bdd_test_pattern};
use dynmos::protest::{mc_detection_probability, network_fault_list, test_length, FaultSimulator};

fn main() {
    let bits = 30;
    let net = carry_chain(bits);
    let n = net.primary_inputs().len();
    let faults = network_fault_list(&net);
    println!(
        "carry chain: {bits} majority gates, {n} primary inputs (2^{n} rows — enumeration impossible), {} faults",
        faults.len()
    );

    // Exact detection probabilities via BDDs for a sample of faults along
    // the chain (deep faults are harder: their effect must propagate).
    println!("\nfault                          P(detect) [BDD exact]   MC estimate (100k)");
    let probs = vec![0.5f64; n];
    let sample: Vec<usize> = vec![0, 1, faults.len() / 2, faults.len() - 1];
    let mut exact_probs = Vec::new();
    for &i in &sample {
        let e = &faults[i];
        let exact = bdd_detection_probability(&net, &e.fault, &probs);
        let mc = mc_detection_probability(&net, &e.fault, &probs, 0xACE1, 100_000);
        println!(
            " {:<28}  {:>10.6}            {:.6} ± {:.6}",
            e.label, exact, mc.value, mc.half_width
        );
        exact_probs.push(exact);
    }

    // Full-list exact probabilities -> test length at scale.
    let all: Vec<f64> = faults
        .iter()
        .map(|e| bdd_detection_probability(&net, &e.fault, &probs))
        .collect();
    let hardest = all.iter().cloned().fold(f64::INFINITY, f64::min);
    let n_patterns = test_length(&all, 0.999);
    println!(
        "\nhardest fault detection probability: {hardest:.6}; \
         random test length for 99.9% confidence: {n_patterns}"
    );

    // BDD-extracted deterministic patterns, validated by simulation and
    // cross-checked against PODEM on a sample.
    let sim = FaultSimulator::new(&net);
    let mut checked = 0;
    for &i in &sample {
        let e = &faults[i];
        let bdd_pat = bdd_test_pattern(&net, &e.fault).expect("chain has no redundancy");
        let out = sim.run_patterns(std::slice::from_ref(e), std::slice::from_ref(&bdd_pat));
        assert_eq!(out.coverage(), 1.0, "{} BDD pattern invalid", e.label);
        let podem = generate_test(&net, &e.fault, 0);
        assert!(
            matches!(podem, AtpgOutcome::Test(_)),
            "{} PODEM disagrees",
            e.label
        );
        checked += 1;
    }
    println!(
        "BDD and PODEM test engines agree on {checked}/{} sampled faults",
        sample.len()
    );
}
