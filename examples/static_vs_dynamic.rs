//! Static vs. dynamic: the paper's Figs. 1 and 2, reproduced at switch
//! level.
//!
//! * Fig. 1 — a stuck-open pull-down transistor turns a *static* CMOS NOR
//!   into a sequential element: for `A=1, B=0` the output remembers its
//!   previous value `Z(t)`.
//! * The same fault class in a *domino* CMOS NOR stays purely
//!   combinational (the paper's section-3 theorem).
//! * Fig. 2 — a stuck-closed pull-up turns a static inverter into a
//!   ratioed pull-down inverter: still logically correct if the
//!   resistance ratio is favourable, but slower — a performance
//!   degradation, quantified by the lumped-RC model.
//!
//! Run with: `cargo run --example static_vs_dynamic`

use dynmos::logic::{parse_expr, VarTable};
use dynmos::switch::gates::{domino_gate, static_nor2};
use dynmos::switch::{contention, FaultSet, Logic, RcParams, Sim, SwitchFault};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    fig1_static_nor_becomes_sequential();
    domino_nor_stays_combinational()?;
    fig2_performance_degradation();
    Ok(())
}

/// The paper's Fig. 1 truth table, measured.
fn fig1_static_nor_becomes_sequential() {
    println!("== Fig. 1: faulty static CMOS NOR ==");
    println!(" A B | Z(good) | Z(t+D) faulty (prev=0) | (prev=1)");
    let nor = static_nor2();
    for (a, b) in [(0u8, 0u8), (0, 1), (1, 0), (1, 1)] {
        let good = {
            let mut sim = Sim::new(&nor.circuit);
            sim.set_input(nor.a, Logic::from_bool(a == 1));
            sim.set_input(nor.b, Logic::from_bool(b == 1));
            sim.settle();
            sim.level(nor.z)
        };
        let faulty = |prev: Logic| {
            let faults = FaultSet::single(SwitchFault::StuckOpen(nor.pulldown_a));
            let mut sim = Sim::with_faults(&nor.circuit, faults);
            sim.preset_charge(nor.z, prev);
            sim.set_input(nor.a, Logic::from_bool(a == 1));
            sim.set_input(nor.b, Logic::from_bool(b == 1));
            sim.settle();
            sim.level(nor.z)
        };
        let f0 = faulty(Logic::Zero);
        let f1 = faulty(Logic::One);
        let memory = if f0 != f1 {
            "  <-- Z(t): SEQUENTIAL"
        } else {
            ""
        };
        println!(" {a} {b} |    {good}    |          {f0}           |    {f1}{memory}");
    }
    println!();
}

/// The same stuck-open fault in a domino NOR-equivalent: combinational.
fn domino_nor_stays_combinational() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Same fault class in domino CMOS: combinational ==");
    let mut vars = VarTable::new();
    let t = parse_expr("a+b", &mut vars)?; // domino computes z = a+b
    let gate = domino_gate(&t, 2)?;
    let faults = FaultSet::single(SwitchFault::StuckOpen(gate.sn.transistors[0]));
    println!(" a b | z(good) | z(faulty, prev z=0) | (prev z=1)");
    for w in 0..4u64 {
        let good = {
            let mut sim = Sim::new(&gate.circuit);
            gate.evaluate(&mut sim, w)
        };
        let with_history = |prev: Logic| {
            let mut sim = Sim::with_faults(&gate.circuit, faults.clone());
            sim.preset_charge(gate.z, prev);
            gate.evaluate(&mut sim, w)
        };
        let f0 = with_history(Logic::Zero);
        let f1 = with_history(Logic::One);
        assert_eq!(f0, f1, "domino gate must not remember");
        println!(
            " {} {} |    {good}    |          {f0}          |    {f1}",
            w & 1,
            (w >> 1) & 1
        );
    }
    println!(" -> output never depends on history: fault is s0-a, purely combinational\n");
    Ok(())
}

/// The paper's Fig. 2: delay vs. resistance ratio for a stuck-closed
/// pull-up.
fn fig2_performance_degradation() {
    println!("== Fig. 2: performance degradation, T1 stuck-closed inverter ==");
    let params = RcParams::typical();
    let r2 = 10_000.0; // pull-down on-resistance
    let good = contention(f64::INFINITY, r2, 1.0, params);
    println!(
        " fault-free high->low delay: {:.2} ns",
        good.settle_time * 1e9
    );
    println!(" R(T1)/R(T2) | V_final | level | delay (ns) | slowdown");
    for ratio in [10.0, 6.0, 4.0, 3.0, 2.5, 2.0, 1.5, 1.0] {
        let out = contention(ratio * r2, r2, 1.0, params);
        let delay = if out.settle_time.is_finite() {
            format!("{:8.2}", out.settle_time * 1e9)
        } else {
            "     inf".to_owned()
        };
        let slowdown = if out.settle_time.is_finite() {
            format!("{:5.1}x", out.settle_time / good.settle_time)
        } else {
            " NEVER".to_owned()
        };
        println!(
            "   {ratio:5.1}     |  {:.3}  |   {}   | {delay}  | {slowdown}",
            out.v_final, out.final_level
        );
    }
    println!(" -> logically correct only above the ratio threshold, and always slower:");
    println!("    the faulty gate needs at-speed testing (section 4 of the paper)");
}
