//! At-speed random self-test (the paper's section 4).
//!
//! Shows why the paper prefers on-chip self-test for dynamic logic:
//!
//! * a BILBO register generates patterns and compacts responses at system
//!   speed,
//! * weighted pattern generation realizes PROTEST's optimized input
//!   probabilities with AND/OR trees over LFSR stages,
//! * an at-speed-only fault (CMOS-3 case b) escapes a slow external
//!   tester but not the at-speed self-test.
//!
//! Run with: `cargo run --example selftest_demo`

use dynmos::logic::Bexpr;
use dynmos::netlist::generate::{domino_wide_and, single_cell_network};
use dynmos::netlist::{GateRef, NetworkFault};
use dynmos::protest::{network_fault_list, optimize_input_probabilities, FaultEntry};
use dynmos::selftest::{Bilbo, BilboMode, SelfTestSession};

fn main() {
    // A BILBO in its four modes.
    println!("== BILBO register walkthrough ==");
    let mut reg = Bilbo::new(8, 0xB5);
    reg.set_mode(BilboMode::Normal);
    println!("normal:     in=0x3C -> out={:#04x}", reg.clock(0x3C));
    reg.set_mode(BilboMode::PatternGen);
    print!("patterns:   ");
    for _ in 0..5 {
        print!("{:#04x} ", reg.clock(0));
    }
    println!();
    reg.set_mode(BilboMode::Signature);
    for i in 0..16u64 {
        reg.clock(i * 29 % 256);
    }
    println!("signature:  {:#06x}", reg.signature());

    // The at-speed contrast on a wide domino AND.
    let n = 10;
    let net = single_cell_network(domino_wide_and(n));
    let faults = network_fault_list(&net);

    // PROTEST-optimized weights realized in hardware.
    let report = optimize_input_probabilities(&net, &faults, 0.999, 8);
    println!("\n== weighted self-test on a {n}-input domino AND ==");
    println!(
        "PROTEST-optimized probabilities (realized by AND/OR weight trees): {:?}",
        report
            .probabilities
            .iter()
            .map(|p| (p * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // A CMOS-3-style at-speed-only fault on the gate.
    let timing_fault = FaultEntry {
        label: "g0/CMOS-3 (precharge short, resistive case)".into(),
        fault: NetworkFault::GateFunction(GateRef(0), Bexpr::FALSE),
        at_speed_only: true,
    };

    let budget = 512;
    let self_test = SelfTestSession::new(&net, 0xACE1).with_weights(&report.probabilities);
    let external = SelfTestSession::new(&net, 0xACE1)
        .with_weights(&report.probabilities)
        .external_tester();

    let on_chip = self_test.run(Some(&timing_fault), budget);
    let slow = external.run(Some(&timing_fault), budget);
    println!(
        "at-speed self-test ({} patterns): detected = {} (signatures {:#06x} vs {:#06x})",
        budget,
        on_chip.detected(),
        on_chip.golden_signature,
        on_chip.observed_signature
    );
    println!(
        "slow external test ({} patterns): detected = {}  <- the timing fault escapes",
        budget,
        slow.detected()
    );
    assert!(on_chip.detected() && !slow.detected());

    // Functional faults are caught either way.
    let mut caught = 0;
    for e in &faults {
        if self_test.run(Some(e), budget).detected() {
            caught += 1;
        }
    }
    println!(
        "functional fault classes caught by the weighted self-test: {caught}/{}",
        faults.len()
    );
}
