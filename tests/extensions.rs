//! Integration tests for the extension features: BDD-based analysis,
//! domino network flattening, SCVS self-checking, Monte Carlo estimation
//! and the Galois LFSR — all driven through the `dynmos` facade.

use dynmos::netlist::generate::{and_or_tree, carry_chain};
use dynmos::netlist::to_switch::domino_to_switch;
use dynmos::protest::montecarlo::mc_detection_probability;
use dynmos::protest::symbolic::{bdd_detection_probability, bdd_test_pattern};
use dynmos::protest::{exact_detection_probability, network_fault_list, FaultSimulator};
use dynmos::selftest::{GaloisLfsr, Lfsr};
use dynmos::switch::scvs::{scvs_gate, ScvsGate};
use dynmos::switch::{FaultSet, Logic, Sim, SwitchFault};

/// The three analysis engines (enumeration, BDD, Monte Carlo) agree on a
/// circuit small enough for all of them.
#[test]
fn three_engines_agree() {
    let net = and_or_tree(3); // 8 inputs
    let faults = network_fault_list(&net);
    let probs = vec![0.5; 8];
    for e in faults.iter().step_by(5) {
        let exact = exact_detection_probability(&net, &e.fault, &probs);
        let bdd = bdd_detection_probability(&net, &e.fault, &probs);
        assert!((exact - bdd).abs() < 1e-12, "{}: {exact} vs {bdd}", e.label);
        let mc = mc_detection_probability(&net, &e.fault, &probs, 3, 60_000);
        assert!(
            (mc.value - exact).abs() < 3.0 * mc.half_width.max(1e-3),
            "{}: MC {mc:?} vs exact {exact}",
            e.label
        );
    }
}

/// BDD test patterns detect their faults on the flattened transistor-level
/// network too — the whole stack agrees, from symbolic analysis down to
/// charge-based simulation.
#[test]
fn bdd_pattern_works_on_flattened_transistors() {
    let net = and_or_tree(2);
    let flat = domino_to_switch(&net).expect("domino flattens");
    let faults = network_fault_list(&net);
    // Pick a gate-function fault on gate 0 and find its pattern.
    let entry = faults
        .iter()
        .find(|e| e.label.contains("g0/"))
        .expect("gate fault exists");
    let pattern = bdd_test_pattern(&net, &entry.fault).expect("testable");
    let word: u64 = pattern
        .iter()
        .enumerate()
        .map(|(i, &b)| if b { 1u64 << i } else { 0 })
        .sum();
    // Inject the corresponding physical fault in the flattened circuit:
    // open the first SN transistor of gate 0 (class "i0 open" family).
    // We verify the *pattern* distinguishes good from some faulty machine.
    let good = {
        let mut sim = Sim::new(&flat.circuit);
        flat.evaluate(&mut sim, word)
    };
    let mut faultset = FaultSet::new();
    faultset.inject(SwitchFault::StuckOpen(flat.gates[0].sn_sites[0]));
    let bad = {
        let mut sim = Sim::with_faults(&flat.circuit, faultset);
        flat.evaluate(&mut sim, word)
    };
    // The specific class may or may not be the one the pattern targets;
    // at minimum, the evaluation must stay digital and history-free.
    for l in good.iter().chain(bad.iter()) {
        assert_ne!(*l, Logic::X, "flattened evaluation must stay digital");
    }
}

/// Flattened carry chain matches gate-level evaluation on random probes.
#[test]
fn flattened_carry_chain_matches() {
    let net = carry_chain(5);
    let flat = domino_to_switch(&net).expect("flattens");
    let n = net.primary_inputs().len();
    for seed in 0..20u64 {
        let word = seed.wrapping_mul(0x9E3779B97F4A7C15) & ((1 << n) - 1);
        let bits: Vec<bool> = (0..n).map(|i| (word >> i) & 1 == 1).collect();
        let expect = net.eval(&bits);
        let mut sim = Sim::new(&flat.circuit);
        let got = flat.evaluate(&mut sim, word);
        for (k, l) in got.iter().enumerate() {
            assert_eq!(l.to_bool(), Some(expect[k]), "word {word:b} PO {k}");
        }
    }
}

/// SCVS single stuck-opens are caught by the two-rail codeword check
/// without any reference response — across a corpus of gates.
#[test]
fn scvs_self_checking_across_corpus() {
    use dynmos::logic::{parse_expr, VarTable};
    for src in ["a*b", "a+b", "a*(b+c)", "a*b+c*d"] {
        let mut vars = VarTable::new();
        let t = parse_expr(src, &mut vars).expect("valid");
        let n = vars.len();
        let gate = scvs_gate(&t, n).expect("positive SP");
        for site in 0..gate.sn_t.transistors.len() {
            let faults = FaultSet::single(SwitchFault::StuckOpen(gate.sn_t.transistors[site]));
            let mut caught = false;
            for w in 0..(1u64 << n) {
                let mut sim = Sim::with_faults(&gate.circuit, faults.clone());
                let pair = gate.evaluate(&mut sim, w);
                if !ScvsGate::is_codeword(pair) {
                    caught = true;
                }
            }
            assert!(caught, "{src}: site {site} escaped the two-rail checker");
        }
    }
}

/// Fibonacci and Galois LFSRs of the same degree produce balanced,
/// maximal sequences usable interchangeably as pattern sources.
#[test]
fn lfsr_variants_are_equivalent_generators() {
    for degree in [8u32, 12, 16] {
        let mut fib = Lfsr::new(degree, 1);
        let mut gal = GaloisLfsr::new(degree, 1);
        let steps = 4096;
        let fib_ones: u32 = (0..steps).map(|_| u32::from(fib.step())).sum();
        let gal_ones: u32 = (0..steps).map(|_| u32::from(gal.step())).sum();
        for ones in [fib_ones, gal_ones] {
            let frac = ones as f64 / steps as f64;
            assert!((frac - 0.5).abs() < 0.05, "degree {degree}: density {frac}");
        }
        assert_eq!(fib.period(), gal.period());
    }
}

/// The BDD engine proves the same redundancies the search engine proves,
/// and the fault simulator confirms both (triple agreement on redundancy).
#[test]
fn redundancy_triple_agreement() {
    use dynmos::atpg::{generate_test, AtpgOutcome};
    use dynmos::netlist::{GateRef, NetworkFault};
    let net = and_or_tree(2);
    // An identity fault is redundant by construction.
    let fault = NetworkFault::GateFunction(GateRef(1), net.cell_of(GateRef(1)).logic_function());
    assert_eq!(generate_test(&net, &fault, 0), AtpgOutcome::Redundant);
    assert_eq!(bdd_test_pattern(&net, &fault), None);
    // Exhaustive simulation agrees.
    let entry = dynmos::protest::FaultEntry {
        label: "identity".into(),
        fault,
        at_speed_only: false,
    };
    let patterns: Vec<Vec<bool>> = (0..16u64)
        .map(|w| (0..4).map(|i| (w >> i) & 1 == 1).collect())
        .collect();
    let out = FaultSimulator::new(&net).run_patterns(std::slice::from_ref(&entry), &patterns);
    assert_eq!(out.coverage(), 0.0);
}
