//! Cross-crate integration tests: the full pipelines of the paper, wired
//! end to end through the `dynmos` facade.

use dynmos::atpg::{apply_twice, generate_test_set};
use dynmos::logic::{min_dnf_string, parse_expr, TruthTable, VarTable};
use dynmos::model::{classify, validate_cell, FaultLibrary, PhysicalFault};
use dynmos::netlist::generate::{c17_dynamic_nmos, carry_chain, single_cell_network};
use dynmos::netlist::{parse_cell, Technology};
use dynmos::protest::{
    detection_probabilities, network_fault_list, optimize_input_probabilities, test_length,
    FaultSimulator, PatternSource,
};
use dynmos::selftest::SelfTestSession;
use dynmos::switch::gates::{domino_gate, static_nor2};
use dynmos::switch::{FaultSet, Logic, Sim, SwitchFault};

/// The full paper story on the Fig. 9 gate: description text -> cell ->
/// library -> network fault list -> ATPG -> apply twice -> 100% coverage.
#[test]
fn fig9_end_to_end() {
    let cell = parse_cell(
        "fig9",
        "TECHNOLOGY domino-CMOS;
         INPUT a,b,c,d,e;
         OUTPUT u;
         x1 := a*(b+c);
         x2 := d*e;
         u := x1+x2;",
    )
    .expect("the paper's own example parses");
    assert_eq!(cell.technology(), Technology::DominoCmos);

    let lib = FaultLibrary::generate(&cell);
    assert_eq!(lib.classes().len(), 10);

    let net = single_cell_network(cell);
    let faults = network_fault_list(&net);
    let report = generate_test_set(&net, &faults, 0);
    assert!(report.redundant.is_empty() && report.aborted.is_empty());

    let doubled = apply_twice(&report.tests);
    let outcome = FaultSimulator::new(&net).run_patterns(&faults, &doubled);
    assert_eq!(outcome.coverage(), 1.0);
}

/// Classification (symbolic) and switch-level simulation (electrical)
/// agree on every fault of a mixed-technology corpus.
#[test]
fn classification_agrees_with_switch_level() {
    for text in [
        "TECHNOLOGY domino-CMOS; INPUT a,b,c; OUTPUT z; z := a*(b+c);",
        "TECHNOLOGY dynamic-nMOS; INPUT a,b,c; OUTPUT z; z := a*b+c;",
    ] {
        let cell = parse_cell("cut", text).expect("valid");
        let v = validate_cell(&cell);
        assert!(v.all_combinational(), "{text}");
        assert!(v.all_match(), "{text}");
    }
}

/// The same physical defect class (stuck-open) is sequential in static
/// CMOS and combinational in domino CMOS — the paper's core contrast.
#[test]
fn static_sequential_dynamic_combinational() {
    // Static: Fig. 1 memory row exists.
    let nor = static_nor2();
    let faults = FaultSet::single(SwitchFault::StuckOpen(nor.pulldown_a));
    let mut outputs = Vec::new();
    for prev in [Logic::Zero, Logic::One] {
        let mut sim = Sim::with_faults(&nor.circuit, faults.clone());
        sim.preset_charge(nor.z, prev);
        sim.set_input(nor.a, Logic::One);
        sim.set_input(nor.b, Logic::Zero);
        sim.settle();
        outputs.push(sim.level(nor.z));
    }
    assert_ne!(outputs[0], outputs[1], "static NOR must remember");

    // Dynamic: same fault kind, no memory on any word.
    let mut vars = VarTable::new();
    let t = parse_expr("a+b", &mut vars).expect("valid");
    let gate = domino_gate(&t, 2).expect("positive SP");
    let dfaults = FaultSet::single(SwitchFault::StuckOpen(gate.sn.transistors[0]));
    for w in 0..4u64 {
        let mut with_history = Vec::new();
        for prev in [Logic::Zero, Logic::One] {
            let mut sim = Sim::with_faults(&gate.circuit, dfaults.clone());
            sim.preset_charge(gate.z, prev);
            with_history.push(gate.evaluate(&mut sim, w));
        }
        assert_eq!(with_history[0], with_history[1], "domino at word {w}");
    }
}

/// PROTEST length prediction is validated by actual fault simulation:
/// running the predicted number of patterns detects all faults with high
/// empirical frequency.
#[test]
fn protest_length_prediction_holds_empirically() {
    let net = c17_dynamic_nmos();
    let faults = network_fault_list(&net);
    let probs = vec![0.5; 5];
    let det = detection_probabilities(&net, &faults, &probs);
    let n = test_length(&det, 0.99);
    let sim = FaultSimulator::new(&net);
    let mut successes = 0;
    let trials = 20;
    for seed in 0..trials {
        let mut src = PatternSource::uniform(seed, 5);
        let out = sim.run_random(&faults, &mut src, n);
        if out.coverage() >= 1.0 {
            successes += 1;
        }
    }
    // Demanded confidence 0.99; allow slack for the small trial count.
    assert!(
        successes >= trials * 9 / 10,
        "only {successes}/{trials} runs reached full coverage within {n} patterns"
    );
}

/// Optimized probabilities from PROTEST plug into the self-test hardware
/// and reduce detection latency on a skewed circuit.
#[test]
fn protest_weights_drive_selftest_hardware() {
    use dynmos::netlist::generate::domino_wide_and;
    let n = 8;
    let net = single_cell_network(domino_wide_and(n));
    let faults = network_fault_list(&net);
    let report = optimize_input_probabilities(&net, &faults, 0.999, 6);
    let session = SelfTestSession::new(&net, 0xACE1).with_weights(&report.probabilities);
    let mut caught = 0;
    for e in &faults {
        if session.run(Some(e), 256).detected() {
            caught += 1;
        }
    }
    assert_eq!(caught, faults.len(), "weighted self-test must catch all");
}

/// The library's minimal DNFs are logically equivalent to direct
/// classification, across a random domino corpus.
#[test]
fn library_functions_equal_classified_functions() {
    use dynmos::netlist::generate::random_domino_cell;
    for seed in 0..5 {
        let cell = random_domino_cell(seed, 4, 7);
        let lib = FaultLibrary::generate(&cell);
        for class in lib.classes() {
            for &fault in &class.faults {
                let effect = classify(&cell, fault);
                let direct = TruthTable::from_expr(&effect.function, cell.input_count());
                assert_eq!(
                    direct, class.table,
                    "seed {seed}, fault {fault:?} table mismatch"
                );
            }
        }
    }
}

/// Both dynamic nMOS precharge faults collapse to s0-z (the paper's
/// "very interesting fact") — confirmed symbolically and electrically.
#[test]
fn nmos_precharge_collapse() {
    let cell = parse_cell(
        "g",
        "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a*b;",
    )
    .expect("valid");
    let lib = FaultLibrary::generate(&cell);
    let open_class = lib.class_of(PhysicalFault::PrechargeOpen).expect("classed");
    let closed_class = lib
        .class_of(PhysicalFault::PrechargeClosed)
        .expect("classed");
    assert_eq!(open_class.id, closed_class.id);
    let vars = lib.vars().clone();
    assert_eq!(min_dnf_string(&open_class.table, &vars), "0");
}

/// Carry chain: ATPG test set stays compact as the chain grows, and the
/// doubled set always reaches full coverage.
#[test]
fn carry_chain_scales() {
    for bits in [2usize, 4, 6] {
        let net = carry_chain(bits);
        let faults = network_fault_list(&net);
        let report = generate_test_set(&net, &faults, 0);
        assert!(report.aborted.is_empty(), "{bits} bits aborted");
        let outcome = FaultSimulator::new(&net).run_patterns(&faults, &apply_twice(&report.tests));
        let undetected: Vec<_> = outcome
            .escapes()
            .iter()
            .map(|&i| faults[i].label.clone())
            .filter(|l| !report.redundant.contains(l))
            .collect();
        assert!(undetected.is_empty(), "{bits} bits: {undetected:?}");
    }
}
