//! End-to-end tests of `faultlib serve`: submit → interrupt → resume →
//! complete over the JSON-lines protocol, under a chaos plan injected
//! through `DYNMOS_FAULT_PLAN`, plus load-shedding and status-line
//! checks on the spawned binary.

use std::io::Write;
use std::process::{Command, Stdio};

/// Runs `faultlib serve` with the given extra args/env, feeds it
/// `input`, and returns (stdout, stderr, success).
fn serve(args: &[&str], env: &[(&str, &str)], input: &str) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_faultlib"));
    cmd.arg("serve").args(args);
    // A hermetic environment: the knobs under test are set explicitly.
    cmd.env_remove("DYNMOS_FAULT_PLAN");
    cmd.env_remove("DYNMOS_BUDGET_MS");
    cmd.env_remove("DYNMOS_TESTABILITY");
    cmd.env("DYNMOS_THREADS", "2");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.stdin(Stdio::piped());
    cmd.stdout(Stdio::piped());
    cmd.stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn faultlib serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("collect output");
    (
        String::from_utf8(out.stdout).expect("stdout utf8"),
        String::from_utf8(out.stderr).expect("stderr utf8"),
        out.status.success(),
    )
}

/// A small two-input cell: three inputs keeps every kernel exact and
/// fast.
const CELL: &str = "TECHNOLOGY domino-CMOS; INPUT a,b,c; OUTPUT z; z := a*b + c;";

fn submit_line(kind: &str, extra: &str) -> String {
    format!(r#"{{"op":"submit","kind":"{kind}","format":"cell","netlist":"{CELL}"{extra}}}"#)
}

/// Extracts the `"result"` object (as raw text) from each job record
/// line in a session transcript, keyed by record order.
fn result_payloads(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| l.contains(r#""status":"#))
        .map(|l| {
            let at = l.find(r#""result":"#).expect("record carries a result");
            l[at..].trim_end_matches('}').to_owned()
        })
        .collect()
}

/// The tentpole, end to end: the same session run clean and under a
/// kill/expire chaos plan (injected via `DYNMOS_FAULT_PLAN`) must
/// produce identical result payloads — interrupted jobs resume from
/// checkpoints and complete bit-identical.
#[test]
fn chaos_session_results_match_clean_session() {
    let session = format!(
        "{}\n{}\n{}\n{}\n{}\n",
        submit_line("fsim", r#","patterns":3000,"seed":7"#),
        submit_line("mc-detect", r#","samples":3000,"seed":7"#),
        submit_line("atpg", r#","max_backtracks":50"#),
        submit_line(
            "testability",
            r#","seed":7,"mode":"bdd","tighten_samples":64"#
        ),
        r#"{"op":"run"}"#
    );
    let (clean, clean_err, ok) = serve(&["--leg-patterns", "512"], &[], &session);
    assert!(ok, "clean session failed: {clean_err}");
    let (chaos, chaos_err, ok) = serve(
        &["--leg-patterns", "512", "--retries", "10"],
        &[("DYNMOS_FAULT_PLAN", "kill:0.4,expire:0.3,seed:7")],
        &session,
    );
    assert!(ok, "chaos session failed: {chaos_err}");
    let clean_results = result_payloads(&clean);
    let chaos_results = result_payloads(&chaos);
    assert_eq!(clean_results.len(), 4, "four records expected: {clean}");
    assert_eq!(
        clean_results, chaos_results,
        "chaos must not change any result payload"
    );
    for line in chaos.lines().filter(|l| l.contains(r#""status":"#)) {
        assert!(
            line.contains(r#""status":"completed""#),
            "chaos job did not complete: {line}"
        );
    }
    // The injection must actually have fired: at a 40% kill rate over
    // many legs, at least one job in the chaos session retried.
    assert!(
        chaos
            .lines()
            .filter(|l| l.contains(r#""status":"#))
            .any(|l| !l.contains(r#""retries":0"#)),
        "chaos plan never fired: {chaos}"
    );
    assert!(
        clean_err.contains("status=completed"),
        "missing status line: {clean_err}"
    );
}

/// A one-slot queue sheds the second submission with a structured
/// rejection, and the session keeps serving afterwards.
#[test]
fn overfull_queue_sheds_and_recovers() {
    let session = format!(
        "{}\n{}\n{}\n{}\n{}\n",
        submit_line("fsim", r#","patterns":64"#),
        submit_line("fsim", r#","patterns":64"#),
        r#"{"op":"run"}"#,
        submit_line("fsim", r#","patterns":64"#),
        r#"{"op":"quit"}"#
    );
    let (stdout, stderr, ok) = serve(&["--queue", "1"], &[], &session);
    assert!(ok, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(
        lines[0].contains(r#""ok":true"#),
        "first admit: {}",
        lines[0]
    );
    assert!(
        lines[1].contains(r#""shed":true"#) && lines[1].contains("queue full"),
        "second submit must shed: {}",
        lines[1]
    );
    assert!(
        lines[1].contains(r#""capacity":1"#) && lines[1].contains(r#""pending":1"#),
        "rejection must be structured: {}",
        lines[1]
    );
    // After the drain, the queue has room again.
    let resubmit = lines
        .iter()
        .find(|l| l.contains(r#""id":2"#))
        .expect("post-drain submit admitted");
    assert!(resubmit.contains(r#""ok":true"#));
    assert!(stderr.contains("status=completed"), "{stderr}");
}

/// Protocol robustness: malformed lines and unknown ops get structured
/// errors without ending the session.
#[test]
fn bad_lines_get_errors_and_session_survives() {
    let session = format!(
        "{}\n{}\n{}\n{}\n",
        "this is not json", r#"{"op":"frobnicate"}"#, r#"{"op":"stats"}"#, r#"{"op":"quit"}"#
    );
    let (stdout, stderr, ok) = serve(&[], &[], &session);
    assert!(ok, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines[0].contains(r#""ok":false"#) && lines[0].contains("bad request"));
    assert!(lines[1].contains("unknown op"));
    assert!(lines[2].contains(r#""op":"stats""#) && lines[2].contains(r#""cache""#));
    assert!(lines[3].contains(r#""op":"quit""#));
    assert!(stderr.contains("status=completed"), "{stderr}");
}

/// A scratch journal directory unique to the calling test.
fn journal_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dynmos-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The final `results` line of a session transcript.
fn results_line(stdout: &str) -> &str {
    stdout
        .lines()
        .rev()
        .find(|l| l.contains(r#""op":"results""#))
        .expect("session printed a results line")
}

/// The crash-durability tentpole, end to end with injected aborts: a
/// journaled serve session repeatedly killed by `crash:` chaos faults
/// (deterministic `process::abort` before/inside/after journal writes,
/// torn lines included) is restarted against the same journal until it
/// survives — and its `results` payload must be byte-identical to a
/// session that was never killed.
#[test]
fn crash_chaos_session_results_match_clean_session() {
    let submits = format!(
        "{}\n{}\n{}\n{}\n",
        submit_line("fsim", r#","patterns":3000,"seed":7"#),
        submit_line("mc-detect", r#","samples":3000,"seed":7"#),
        submit_line("atpg", r#","max_backtracks":50"#),
        submit_line(
            "testability",
            r#","seed":7,"mode":"bdd","tighten_samples":64"#
        ),
    );
    let full_session = format!(
        "{submits}{}\n{}\n{}\n",
        r#"{"op":"run"}"#, r#"{"op":"results"}"#, r#"{"op":"quit"}"#
    );

    // Reference: the same jobs in one clean, journal-free session.
    let (clean, clean_err, ok) = serve(&["--leg-patterns", "512"], &[], &full_session);
    assert!(ok, "clean session failed: {clean_err}");
    let reference = results_line(&clean).to_owned();

    // Admit the jobs durably (no chaos yet), then run them under the
    // crash plan, restarting against the same journal after every
    // abort. The crash schedule re-rolls each generation, so progress
    // is guaranteed; the restart bound is pure paranoia.
    let dir = journal_dir("crash-chaos");
    let dir_s = dir.to_str().unwrap();
    let (_, stderr, ok) = serve(
        &["--journal", dir_s, "--leg-patterns", "512"],
        &[],
        &format!("{submits}{}\n", r#"{"op":"quit"}"#),
    );
    assert!(ok, "admission session failed: {stderr}");

    let drain = format!(
        "{}\n{}\n{}\n",
        r#"{"op":"run"}"#, r#"{"op":"results"}"#, r#"{"op":"quit"}"#
    );
    let mut crashes = 0;
    let mut survivor = None;
    for _restart in 0..80 {
        let (stdout, stderr, ok) = serve(
            &["--journal", dir_s, "--leg-patterns", "512"],
            &[("DYNMOS_FAULT_PLAN", "crash:0.3,seed:1")],
            &drain,
        );
        if ok {
            survivor = Some((stdout, stderr));
            break;
        }
        crashes += 1;
    }
    let (stdout, _) = survivor.expect("no session survived 80 restarts");
    assert!(crashes >= 1, "crash plan never fired — vacuous test");
    assert_eq!(
        results_line(&stdout),
        reference,
        "recovered results differ from the never-killed session (after {crashes} crashes)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same contract under a real `SIGKILL` mid-job: no injection, no
/// cooperation — the process is killed from outside while draining a
/// long job, restarted against its journal, and must finish with the
/// records a never-killed session produces.
#[test]
fn sigkill_mid_job_recovers_byte_identical_results() {
    use std::time::Duration;
    // A long job (biased weights defeat the early full-coverage exit)
    // plus a quick one, sliced into many legs so checkpoints are dense.
    let submits = format!(
        "{}\n{}\n",
        submit_line(
            "fsim",
            r#","patterns":40000000,"seed":7,"probs":[0.0000152587890625,0.0000152587890625,0.0000152587890625]"#
        ),
        submit_line("fsim", r#","patterns":256,"seed":9"#),
    );
    let drain = format!(
        "{}\n{}\n{}\n",
        r#"{"op":"run"}"#, r#"{"op":"results"}"#, r#"{"op":"quit"}"#
    );
    let full_session = format!("{submits}{drain}");
    fn args(dir: Option<&str>) -> Vec<&str> {
        let mut a = vec!["--leg-patterns", "65536"];
        if let Some(d) = dir {
            a.extend_from_slice(&["--journal", d]);
        }
        a
    }

    let (clean, clean_err, ok) = serve(&args(None), &[], &full_session);
    assert!(ok, "clean session failed: {clean_err}");
    let reference = results_line(&clean).to_owned();

    let dir = journal_dir("sigkill");
    let dir_s = dir.to_str().unwrap();
    // Session 1: submit and start draining, then SIGKILL it mid-job.
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_faultlib"));
    cmd.arg("serve").args(args(Some(dir_s)));
    cmd.env_remove("DYNMOS_FAULT_PLAN");
    cmd.env_remove("DYNMOS_BUDGET_MS");
    cmd.env_remove("DYNMOS_TESTABILITY");
    cmd.env("DYNMOS_THREADS", "2");
    cmd.stdin(Stdio::piped());
    cmd.stdout(Stdio::piped());
    cmd.stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn faultlib serve");
    let mut stdin = child.stdin.take().expect("stdin piped");
    stdin
        .write_all(format!("{submits}{}\n", r#"{"op":"run"}"#).as_bytes())
        .expect("write requests");
    // Leave stdin open so the session cannot exit cleanly on EOF;
    // give the drain a moment to get into the long job, then kill -9.
    std::thread::sleep(Duration::from_millis(200));
    child.kill().expect("SIGKILL the serve session");
    let out = child.wait_with_output().expect("collect killed session");
    drop(stdin);
    assert!(!out.status.success(), "session survived the kill");

    // Session 2: restart against the journal and finish the work.
    let (stdout, stderr, ok) = serve(&args(Some(dir_s)), &[], &drain);
    assert!(ok, "recovery session failed: {stderr}");
    assert_eq!(
        results_line(&stdout),
        reference,
        "post-kill results differ from the never-killed session"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A garbage `DYNMOS_FAULT_PLAN` is refused at startup with a clear
/// message and a named status token — not a panic backtrace from the
/// first probe site it happens to reach.
#[test]
fn garbage_fault_plan_fails_loudly_at_startup() {
    // No input: the refusal happens before the request loop starts
    // (writing to the dead process would just hit a broken pipe).
    let (_, stderr, ok) = serve(&[], &[("DYNMOS_FAULT_PLAN", "panic=0.05;;nope")], "");
    assert!(!ok, "garbage plan accepted");
    assert!(
        stderr.contains("DYNMOS_FAULT_PLAN invalid"),
        "no clear message: {stderr}"
    );
    assert!(
        stderr
            .lines()
            .any(|l| l == "status=failed reason=env:DYNMOS_FAULT_PLAN"),
        "no status token: {stderr}"
    );
    assert!(
        !stderr.contains("panicked at"),
        "refusal must not be a panic backtrace: {stderr}"
    );
}

/// The classic (non-serve) CLI prints a machine-readable status line on
/// its success and failure paths.
#[test]
fn classic_cli_prints_status_lines() {
    let run = |input: &str, args: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_faultlib"));
        cmd.args(args);
        cmd.env_remove("DYNMOS_FAULT_PLAN");
        cmd.env_remove("DYNMOS_BUDGET_MS");
        cmd.env_remove("DYNMOS_TESTABILITY");
        cmd.stdin(Stdio::piped());
        cmd.stdout(Stdio::piped());
        cmd.stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("spawn faultlib");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        (String::from_utf8(out.stderr).unwrap(), out.status)
    };
    let (stderr, status) = run(CELL, &[]);
    assert!(status.success());
    assert!(
        stderr.lines().any(|l| l == "status=completed"),
        "success path: {stderr}"
    );
    let (stderr, status) = run("INPUT ;;; garbage", &[]);
    assert!(!status.success());
    assert!(
        stderr.lines().any(|l| l == "status=failed reason=parse"),
        "parse-failure path: {stderr}"
    );
    let (stderr, status) = run("", &["--no-such-flag-as-a-file"]);
    assert!(!status.success());
    assert!(
        stderr.lines().any(|l| l == "status=failed reason=io"),
        "io-failure path: {stderr}"
    );
}
