//! End-to-end tests of `faultlib serve`: submit → interrupt → resume →
//! complete over the JSON-lines protocol, under a chaos plan injected
//! through `DYNMOS_FAULT_PLAN`, plus load-shedding and status-line
//! checks on the spawned binary.

use std::io::Write;
use std::process::{Command, Stdio};

/// Runs `faultlib serve` with the given extra args/env, feeds it
/// `input`, and returns (stdout, stderr, success).
fn serve(args: &[&str], env: &[(&str, &str)], input: &str) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_faultlib"));
    cmd.arg("serve").args(args);
    // A hermetic environment: the knobs under test are set explicitly.
    cmd.env_remove("DYNMOS_FAULT_PLAN");
    cmd.env_remove("DYNMOS_BUDGET_MS");
    cmd.env("DYNMOS_THREADS", "2");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.stdin(Stdio::piped());
    cmd.stdout(Stdio::piped());
    cmd.stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn faultlib serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("collect output");
    (
        String::from_utf8(out.stdout).expect("stdout utf8"),
        String::from_utf8(out.stderr).expect("stderr utf8"),
        out.status.success(),
    )
}

/// A small two-input cell: three inputs keeps every kernel exact and
/// fast.
const CELL: &str = "TECHNOLOGY domino-CMOS; INPUT a,b,c; OUTPUT z; z := a*b + c;";

fn submit_line(kind: &str, extra: &str) -> String {
    format!(r#"{{"op":"submit","kind":"{kind}","format":"cell","netlist":"{CELL}"{extra}}}"#)
}

/// Extracts the `"result"` object (as raw text) from each job record
/// line in a session transcript, keyed by record order.
fn result_payloads(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| l.contains(r#""status":"#))
        .map(|l| {
            let at = l.find(r#""result":"#).expect("record carries a result");
            l[at..].trim_end_matches('}').to_owned()
        })
        .collect()
}

/// The tentpole, end to end: the same session run clean and under a
/// kill/expire chaos plan (injected via `DYNMOS_FAULT_PLAN`) must
/// produce identical result payloads — interrupted jobs resume from
/// checkpoints and complete bit-identical.
#[test]
fn chaos_session_results_match_clean_session() {
    let session = format!(
        "{}\n{}\n{}\n{}\n",
        submit_line("fsim", r#","patterns":3000,"seed":7"#),
        submit_line("mc-detect", r#","samples":3000,"seed":7"#),
        submit_line("atpg", r#","max_backtracks":50"#),
        r#"{"op":"run"}"#
    );
    let (clean, clean_err, ok) = serve(&["--leg-patterns", "512"], &[], &session);
    assert!(ok, "clean session failed: {clean_err}");
    let (chaos, chaos_err, ok) = serve(
        &["--leg-patterns", "512", "--retries", "10"],
        &[("DYNMOS_FAULT_PLAN", "kill:0.4,expire:0.3,seed:7")],
        &session,
    );
    assert!(ok, "chaos session failed: {chaos_err}");
    let clean_results = result_payloads(&clean);
    let chaos_results = result_payloads(&chaos);
    assert_eq!(clean_results.len(), 3, "three records expected: {clean}");
    assert_eq!(
        clean_results, chaos_results,
        "chaos must not change any result payload"
    );
    for line in chaos.lines().filter(|l| l.contains(r#""status":"#)) {
        assert!(
            line.contains(r#""status":"completed""#),
            "chaos job did not complete: {line}"
        );
    }
    // The injection must actually have fired: at a 40% kill rate over
    // many legs, at least one job in the chaos session retried.
    assert!(
        chaos
            .lines()
            .filter(|l| l.contains(r#""status":"#))
            .any(|l| !l.contains(r#""retries":0"#)),
        "chaos plan never fired: {chaos}"
    );
    assert!(
        clean_err.contains("status=completed"),
        "missing status line: {clean_err}"
    );
}

/// A one-slot queue sheds the second submission with a structured
/// rejection, and the session keeps serving afterwards.
#[test]
fn overfull_queue_sheds_and_recovers() {
    let session = format!(
        "{}\n{}\n{}\n{}\n{}\n",
        submit_line("fsim", r#","patterns":64"#),
        submit_line("fsim", r#","patterns":64"#),
        r#"{"op":"run"}"#,
        submit_line("fsim", r#","patterns":64"#),
        r#"{"op":"quit"}"#
    );
    let (stdout, stderr, ok) = serve(&["--queue", "1"], &[], &session);
    assert!(ok, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(
        lines[0].contains(r#""ok":true"#),
        "first admit: {}",
        lines[0]
    );
    assert!(
        lines[1].contains(r#""shed":true"#) && lines[1].contains("queue full"),
        "second submit must shed: {}",
        lines[1]
    );
    assert!(
        lines[1].contains(r#""capacity":1"#) && lines[1].contains(r#""pending":1"#),
        "rejection must be structured: {}",
        lines[1]
    );
    // After the drain, the queue has room again.
    let resubmit = lines
        .iter()
        .find(|l| l.contains(r#""id":2"#))
        .expect("post-drain submit admitted");
    assert!(resubmit.contains(r#""ok":true"#));
    assert!(stderr.contains("status=completed"), "{stderr}");
}

/// Protocol robustness: malformed lines and unknown ops get structured
/// errors without ending the session.
#[test]
fn bad_lines_get_errors_and_session_survives() {
    let session = format!(
        "{}\n{}\n{}\n{}\n",
        "this is not json", r#"{"op":"frobnicate"}"#, r#"{"op":"stats"}"#, r#"{"op":"quit"}"#
    );
    let (stdout, stderr, ok) = serve(&[], &[], &session);
    assert!(ok, "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines[0].contains(r#""ok":false"#) && lines[0].contains("bad request"));
    assert!(lines[1].contains("unknown op"));
    assert!(lines[2].contains(r#""op":"stats""#) && lines[2].contains(r#""cache""#));
    assert!(lines[3].contains(r#""op":"quit""#));
    assert!(stderr.contains("status=completed"), "{stderr}");
}

/// The classic (non-serve) CLI prints a machine-readable status line on
/// its success and failure paths.
#[test]
fn classic_cli_prints_status_lines() {
    let run = |input: &str, args: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_faultlib"));
        cmd.args(args);
        cmd.env_remove("DYNMOS_FAULT_PLAN");
        cmd.env_remove("DYNMOS_BUDGET_MS");
        cmd.stdin(Stdio::piped());
        cmd.stdout(Stdio::piped());
        cmd.stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("spawn faultlib");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        (String::from_utf8(out.stderr).unwrap(), out.status)
    };
    let (stderr, status) = run(CELL, &[]);
    assert!(status.success());
    assert!(
        stderr.lines().any(|l| l == "status=completed"),
        "success path: {stderr}"
    );
    let (stderr, status) = run("INPUT ;;; garbage", &[]);
    assert!(!status.success());
    assert!(
        stderr.lines().any(|l| l == "status=failed reason=parse"),
        "parse-failure path: {stderr}"
    );
    let (stderr, status) = run("", &["--no-such-flag-as-a-file"]);
    assert!(!status.success());
    assert!(
        stderr.lines().any(|l| l == "status=failed reason=io"),
        "io-failure path: {stderr}"
    );
}
