//! `faultlib` — the paper's library-generation workflow as a CLI.
//!
//! Reads a cell description in the paper's syntax (Fig. 9) from a file or
//! stdin and prints the generated fault library: all distinguishable
//! faulty functions in minimum disjunctive form, with fault-equivalence
//! classes collapsed, plus PROTEST-style detection statistics.
//!
//! ```sh
//! # From a file:
//! cargo run --bin faultlib -- cell.txt
//!
//! # From stdin:
//! echo 'TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := a*b;' \
//!     | cargo run --bin faultlib
//!
//! # With the extended fault universe (line opens + inverter faults):
//! cargo run --bin faultlib -- --full cell.txt
//! ```

use dynmos::model::{FaultLibrary, FaultUniverse};
use dynmos::netlist::generate::single_cell_network;
use dynmos::netlist::parse_cell;
use dynmos::protest::{detection_probabilities, network_fault_list, test_length};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut path: Option<String> = None;
    for a in &args {
        match a.as_str() {
            "--full" => full = true,
            "--help" | "-h" => {
                eprintln!("usage: faultlib [--full] [CELL_FILE]");
                eprintln!("  reads a cell description (paper syntax) from CELL_FILE or stdin");
                eprintln!("  --full  include line opens and inverter faults");
                return ExitCode::SUCCESS;
            }
            other => path = Some(other.to_owned()),
        }
    }

    let text = match &path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("faultlib: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("faultlib: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        }
    };

    let name = path
        .as_deref()
        .and_then(|p| p.rsplit('/').next())
        .and_then(|f| f.split('.').next())
        .unwrap_or("cell");

    let cell = match parse_cell(name, &text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("faultlib: {e}");
            return ExitCode::FAILURE;
        }
    };

    let universe = if full {
        FaultUniverse::full()
    } else {
        FaultUniverse::paper_table()
    };
    let lib = FaultLibrary::generate_with(&cell, universe);
    print!("{lib}");

    // PROTEST summary when the exact enumerator applies.
    if cell.input_count() <= 20 {
        let net = single_cell_network(cell);
        let faults = network_fault_list(&net);
        let probs = vec![0.5; net.primary_inputs().len()];
        let det = detection_probabilities(&net, &faults, &probs);
        let hardest = det.iter().cloned().fold(f64::INFINITY, f64::min);
        let n = test_length(&det, 0.999);
        println!();
        println!(
            "random test (uniform inputs): hardest detection probability {hardest:.6}, \
             length for 99.9% confidence: {n}"
        );
    }
    ExitCode::SUCCESS
}
