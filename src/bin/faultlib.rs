//! `faultlib` — the paper's library-generation workflow as a CLI, plus
//! `faultlib serve`, a JSON-lines front end to the supervised job
//! engine (`dynmos_protest::service`).
//!
//! Classic mode reads a cell description in the paper's syntax (Fig. 9)
//! from a file or stdin and prints the generated fault library: all
//! distinguishable faulty functions in minimum disjunctive form, with
//! fault-equivalence classes collapsed, plus PROTEST-style detection
//! statistics.
//!
//! ```sh
//! # From a file:
//! cargo run --bin faultlib -- cell.txt
//!
//! # From stdin:
//! echo 'TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := a*b;' \
//!     | cargo run --bin faultlib
//!
//! # With the extended fault universe (line opens + inverter faults):
//! cargo run --bin faultlib -- --full cell.txt
//!
//! # Bounded: stop the PROTEST statistics at a wall-clock budget
//! # (exit code 3 marks a partial result; the library itself is
//! # always complete):
//! cargo run --bin faultlib -- --budget-ms 50 cell.txt
//!
//! # Job service: one JSON request/response per line on stdin/stdout.
//! printf '%s\n%s\n' \
//!     '{"op":"submit","kind":"fsim","format":"bench","netlist":"...","patterns":4096}' \
//!     '{"op":"run"}' | cargo run --bin faultlib -- serve
//! ```
//!
//! Every exit path prints one machine-readable status line to stderr:
//! `status=completed`, `status=interrupted reason=<token>`, or
//! `status=failed reason=<token>` — so harnesses (and the CI
//! fault-injection leg) can classify outcomes without parsing prose.

use dynmos::atpg::register_atpg;
use dynmos::model::{FaultLibrary, FaultUniverse};
use dynmos::netlist::generate::single_cell_network;
use dynmos::netlist::parse_cell;
use dynmos::protest::{
    env_budget_ms, network_fault_list, optimize_input_probabilities_budgeted, tier_census,
    try_test_length, DetectionEngine, DetectionEstimate, EngineConfig, EstimateMethod, JobEngine,
    Json, LengthError, Parallelism, RunBudget, RunStatus, StopReason, TestabilityConfig,
};
use std::io::{BufRead, Read, Write};
use std::panic::catch_unwind;
use std::path::Path;
use std::process::ExitCode;

/// Exit code for a run whose PROTEST statistics were cut short by the
/// budget: the printed output is a valid partial result, not an error.
const EXIT_PARTIAL: u8 = 3;

/// Seed for the Monte-Carlo fallback when the cell's input space
/// exceeds the exact-enumeration cap.
const MC_SEED: u64 = 0x00DA_C086;

/// The machine-readable token for an interruption reason.
fn stop_token(reason: StopReason) -> &'static str {
    match reason {
        StopReason::Deadline => "deadline",
        StopReason::Cancelled => "cancelled",
        StopReason::PatternCap => "pattern-cap",
        StopReason::RowCap => "row-cap",
        StopReason::WorkerFailed => "worker-failed",
    }
}

/// Tier strength order for summarizing a run: exact < BDD <
/// Monte-Carlo < cutting; the weakest tier present names the run.
fn tier_rank(m: &EstimateMethod) -> u8 {
    match m {
        EstimateMethod::Exact => 0,
        EstimateMethod::Bdd => 1,
        EstimateMethod::MonteCarlo => 2,
        EstimateMethod::Cutting => 3,
    }
}

/// The one-line machine-readable exit status (stderr, every exit path).
fn status_line(line: &str) {
    eprintln!("status={line}");
}

fn fail(reason: &str, msg: &str) -> ExitCode {
    eprintln!("faultlib: {msg}");
    status_line(&format!("failed reason={reason}"));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    // Validate every DYNMOS_* knob in one shared startup pass: a typo
    // in any of them exits cleanly with a uniform `reason=env:<VAR>`
    // status instead of a panic backtrace from deep inside the first
    // code path that lazily consults it.
    if let Err(e) = dynmos::protest::env_contract::validate_all() {
        return fail(&format!("env:{}", e.var), &e.message);
    }
    // The engine catches and retries leg panics itself; anything that
    // unwinds out to here is unhandled, and must still produce the
    // machine-readable status line (the default hook has already
    // printed the panic message).
    match catch_unwind(real_main) {
        Ok(code) => code,
        Err(_) => {
            status_line("failed reason=panic");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return serve(&args[1..]);
    }
    classic(&args)
}

/// The original library-generation workflow.
fn classic(args: &[String]) -> ExitCode {
    let mut full = false;
    let mut optimize = false;
    let mut path: Option<String> = None;
    let mut budget_ms: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => full = true,
            "--optimize" => optimize = true,
            "--budget-ms" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<u64>()) {
                    Some(Ok(ms)) => budget_ms = Some(ms),
                    _ => return fail("args", "--budget-ms needs a millisecond count"),
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: faultlib [--full] [--optimize] [--budget-ms MS] [CELL_FILE]");
                eprintln!("       faultlib serve [--queue N] [--retries N] [--leg-ms MS]");
                eprintln!("                      [--leg-patterns N] [--journal DIR]");
                eprintln!("  reads a cell description (paper syntax) from CELL_FILE or stdin");
                eprintln!("  --full       include line opens and inverter faults");
                eprintln!("  --optimize   also optimize per-input signal probabilities");
                eprintln!("               (reports the engine tier census per fault)");
                eprintln!("  --budget-ms  wall-clock budget for the PROTEST statistics;");
                eprintln!("               a partial result exits with code {EXIT_PARTIAL}");
                eprintln!("               (DYNMOS_BUDGET_MS is the env fallback)");
                eprintln!("  serve        JSON-lines job service on stdin/stdout");
                eprintln!("  --journal    write-ahead journal directory: every admission,");
                eprintln!("               checkpointed leg, and result is committed before");
                eprintln!("               the client sees it, and a restarted serve against");
                eprintln!("               the same DIR resumes interrupted jobs and replays");
                eprintln!("               finished ones (op \"results\") byte-identically");
                status_line("completed");
                return ExitCode::SUCCESS;
            }
            other => path = Some(other.to_owned()),
        }
        i += 1;
    }
    let budget_ms = budget_ms.or_else(env_budget_ms);

    let text = match &path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => return fail("io", &format!("cannot read {p}: {e}")),
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                return fail("io", &format!("cannot read stdin: {e}"));
            }
            buf
        }
    };

    let name = path
        .as_deref()
        .and_then(|p| p.rsplit('/').next())
        .and_then(|f| f.split('.').next())
        .unwrap_or("cell");

    let cell = match parse_cell(name, &text) {
        Ok(c) => c,
        Err(e) => return fail("parse", &e.to_string()),
    };

    let universe = if full {
        FaultUniverse::full()
    } else {
        FaultUniverse::paper_table()
    };
    let lib = FaultLibrary::generate_with(&cell, universe);
    print!("{lib}");

    // PROTEST summary: the tiered engine — exact enumeration up to
    // 2^20 rows, BDD beyond, certified cutting bounds past the node
    // budget (`DYNMOS_TESTABILITY` overrides the policy).
    let mut run_budget = RunBudget::unlimited().with_max_exact_rows(1 << 20);
    if let Some(ms) = budget_ms {
        run_budget.deadline =
            Some(std::time::Instant::now() + std::time::Duration::from_millis(ms));
    }
    let net = single_cell_network(cell);
    let faults = network_fault_list(&net);
    let probs = vec![0.5; net.primary_inputs().len()];
    let config = TestabilityConfig::from_env().with_seed(MC_SEED);
    let mut engine =
        DetectionEngine::new(&net, &faults, config).with_parallelism(Parallelism::default());
    // Streamed so an interrupt still knows which tier served each
    // finished fault — the census lands in the status line.
    let mut est: Vec<DetectionEstimate> = Vec::new();
    let status = engine.estimates_from(0, &probs, &run_budget, &mut |_, e| est.push(e));
    let census = tier_census(est.iter().map(|e| &e.method));
    if let RunStatus::Interrupted(reason) = status {
        eprintln!(
            "faultlib: PROTEST statistics interrupted ({reason}) after {}/{} faults; \
             the fault library above is complete",
            est.len(),
            faults.len()
        );
        status_line(&format!(
            "interrupted reason={} tiers={census}",
            stop_token(reason)
        ));
        return ExitCode::from(EXIT_PARTIAL);
    }
    let values: Vec<f64> = est.iter().map(|e| e.value).collect();
    let hardest = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let method = match est.iter().map(|e| e.method).max_by_key(tier_rank) {
        None | Some(EstimateMethod::Exact) => "exact".to_owned(),
        Some(_) => format!("tiers {census}"),
    };
    println!();
    match try_test_length(&values, 0.999) {
        Ok(u64::MAX) => {
            println!(
                "random test (uniform inputs, {method}): hardest detection probability \
                 {hardest:.6}, length for 99.9% confidence: unbounded \
                 (some fault was never detected)"
            );
        }
        Ok(n) => {
            println!(
                "random test (uniform inputs, {method}): hardest detection probability \
                 {hardest:.6}, length for 99.9% confidence: {n}"
            );
        }
        Err(LengthError::Interrupted(reason)) => {
            eprintln!(
                "faultlib: test-length search interrupted ({reason}); \
                 detection statistics above are complete"
            );
            status_line(&format!(
                "interrupted reason={} tiers={census}",
                stop_token(reason)
            ));
            return ExitCode::from(EXIT_PARTIAL);
        }
        Err(e) => return fail("length", &format!("test-length: {e}")),
    }
    if optimize {
        let run = optimize_input_probabilities_budgeted(
            &net,
            &faults,
            0.999,
            4,
            Parallelism::default(),
            &run_budget,
        );
        let census = tier_census(&run.methods);
        let fmt_len = |n: u64| {
            if n == u64::MAX {
                "unbounded".to_owned()
            } else {
                n.to_string()
            }
        };
        let r = &run.report;
        let shown: Vec<String> = r.probabilities.iter().map(|p| format!("{p:.4}")).collect();
        println!("optimized input probabilities (tiers {census}):");
        println!("  [{}]", shown.join(", "));
        println!(
            "  test length {} -> {} ({} sweep{})",
            fmt_len(r.uniform_length),
            fmt_len(r.optimized_length),
            r.sweeps,
            if r.sweeps == 1 { "" } else { "s" }
        );
        if let RunStatus::Interrupted(reason) = run.status {
            eprintln!(
                "faultlib: optimization interrupted ({reason}); \
                 the probabilities above are the best candidate seen"
            );
            status_line(&format!(
                "interrupted reason={} tiers={census}",
                stop_token(reason)
            ));
            return ExitCode::from(EXIT_PARTIAL);
        }
    }
    status_line("completed");
    ExitCode::SUCCESS
}

/// `faultlib serve` — a JSON-lines session against the job engine.
///
/// One request object per input line; one response object per line on
/// stdout (a `run` additionally prints one record line per job it
/// drains). Supported ops: `submit`, `run`, `results`, `stats`,
/// `quit`. Malformed lines answer `{"ok":false,"error":...}` and the
/// session continues.
///
/// With `--journal DIR` the engine write-ahead-journals every
/// admission, checkpointed leg, and terminal record to
/// `DIR/journal.jsonl` before acknowledging it, and replays the
/// journal at startup: a serve killed at any instant (`kill -9`
/// included) restarts against the same directory with its finished
/// records intact (`results` returns them byte-identically) and its
/// interrupted jobs requeued from their last committed checkpoint.
fn serve(args: &[String]) -> ExitCode {
    let mut config = EngineConfig::from_env();
    let mut journal_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match flag {
            "--queue" | "--retries" | "--leg-ms" | "--leg-patterns" => {
                let Some(raw) = value(i) else {
                    return fail("args", &format!("{flag} needs a value"));
                };
                let Ok(n) = raw.parse::<u64>() else {
                    return fail("args", &format!("{flag} needs an integer, got {raw:?}"));
                };
                match flag {
                    "--queue" => config.queue_capacity = n as usize,
                    "--retries" => config.max_retries = n as u32,
                    "--leg-ms" => config.leg_ms = Some(n),
                    "--leg-patterns" => config.leg_patterns = Some(n),
                    _ => unreachable!(),
                }
                i += 1;
            }
            "--journal" => {
                let Some(dir) = value(i) else {
                    return fail("args", "--journal needs a directory");
                };
                journal_dir = Some(dir.clone());
                i += 1;
            }
            other => return fail("args", &format!("unknown serve flag {other:?}")),
        }
        i += 1;
    }

    let mut engine = JobEngine::new(config);
    register_atpg(&mut engine);
    if let Some(dir) = &journal_dir {
        // Attach after kind registration: recovery rebuilds kernels
        // through the same factories as live submissions.
        match engine.attach_journal(Path::new(dir)) {
            // The summary goes to stderr: stdout stays strictly
            // request/response so sessions are byte-comparable.
            Ok(summary) => eprintln!("faultlib: journal {summary}"),
            Err(e) => return fail("journal", &format!("cannot attach journal {dir}: {e}")),
        }
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut emit = |line: &Json| {
        // A broken pipe just ends the session; the status line still
        // goes to stderr.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    };
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("faultlib: cannot read stdin: {e}");
                status_line("failed reason=io");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                emit(&Json::Obj(vec![
                    ("ok".into(), Json::Bool(false)),
                    ("error".into(), Json::str(format!("bad request: {e}"))),
                ]));
                continue;
            }
        };
        match request.get("op").and_then(Json::as_str) {
            Some("submit") => {
                let verdict = engine.submit_json(&request);
                emit(&verdict);
            }
            Some("run") => {
                let records = engine.drain();
                for record in &records {
                    emit(&record.to_json());
                }
                emit(&Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("op".into(), Json::str("run")),
                    ("completed".into(), Json::num(records.len() as u64)),
                ]));
            }
            Some("results") => emit(&engine.results_json()),
            Some("stats") => emit(&engine.stats_json()),
            Some("quit") => {
                emit(&Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("op".into(), Json::str("quit")),
                ]));
                status_line("completed");
                return ExitCode::SUCCESS;
            }
            other => {
                let msg = match other {
                    Some(op) => format!("unknown op {op:?} (submit|run|results|stats|quit)"),
                    None => "missing \"op\"".to_owned(),
                };
                emit(&Json::Obj(vec![
                    ("ok".into(), Json::Bool(false)),
                    ("error".into(), Json::str(msg)),
                ]));
            }
        }
    }
    status_line("completed");
    ExitCode::SUCCESS
}
