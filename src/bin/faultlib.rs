//! `faultlib` — the paper's library-generation workflow as a CLI.
//!
//! Reads a cell description in the paper's syntax (Fig. 9) from a file or
//! stdin and prints the generated fault library: all distinguishable
//! faulty functions in minimum disjunctive form, with fault-equivalence
//! classes collapsed, plus PROTEST-style detection statistics.
//!
//! ```sh
//! # From a file:
//! cargo run --bin faultlib -- cell.txt
//!
//! # From stdin:
//! echo 'TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := a*b;' \
//!     | cargo run --bin faultlib
//!
//! # With the extended fault universe (line opens + inverter faults):
//! cargo run --bin faultlib -- --full cell.txt
//!
//! # Bounded: stop the PROTEST statistics at a wall-clock budget
//! # (exit code 3 marks a partial result; the library itself is
//! # always complete):
//! cargo run --bin faultlib -- --budget-ms 50 cell.txt
//! ```

use dynmos::model::{FaultLibrary, FaultUniverse};
use dynmos::netlist::generate::single_cell_network;
use dynmos::netlist::parse_cell;
use dynmos::protest::{
    detection_probability_estimates, env_budget_ms, network_fault_list, try_test_length,
    EstimateMethod, LengthError, Parallelism, RunBudget,
};
use std::io::Read;
use std::process::ExitCode;

/// Exit code for a run whose PROTEST statistics were cut short by the
/// budget: the printed output is a valid partial result, not an error.
const EXIT_PARTIAL: u8 = 3;

/// Seed for the Monte-Carlo fallback when the cell's input space
/// exceeds the exact-enumeration cap.
const MC_SEED: u64 = 0x00DA_C086;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut path: Option<String> = None;
    let mut budget_ms: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => full = true,
            "--budget-ms" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<u64>()) {
                    Some(Ok(ms)) => budget_ms = Some(ms),
                    _ => {
                        eprintln!("faultlib: --budget-ms needs a millisecond count");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: faultlib [--full] [--budget-ms MS] [CELL_FILE]");
                eprintln!("  reads a cell description (paper syntax) from CELL_FILE or stdin");
                eprintln!("  --full       include line opens and inverter faults");
                eprintln!("  --budget-ms  wall-clock budget for the PROTEST statistics;");
                eprintln!("               a partial result exits with code {EXIT_PARTIAL}");
                eprintln!("               (DYNMOS_BUDGET_MS is the env fallback)");
                return ExitCode::SUCCESS;
            }
            other => path = Some(other.to_owned()),
        }
        i += 1;
    }
    let budget_ms = budget_ms.or_else(env_budget_ms);

    let text = match &path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("faultlib: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("faultlib: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        }
    };

    let name = path
        .as_deref()
        .and_then(|p| p.rsplit('/').next())
        .and_then(|f| f.split('.').next())
        .unwrap_or("cell");

    let cell = match parse_cell(name, &text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("faultlib: {e}");
            return ExitCode::FAILURE;
        }
    };

    let universe = if full {
        FaultUniverse::full()
    } else {
        FaultUniverse::paper_table()
    };
    let lib = FaultLibrary::generate_with(&cell, universe);
    print!("{lib}");

    // PROTEST summary: exact enumeration up to 2^20 rows, Monte-Carlo
    // estimation beyond — no input-count gate needed any more.
    let mut run_budget = RunBudget::unlimited().with_max_exact_rows(1 << 20);
    if let Some(ms) = budget_ms {
        run_budget.deadline =
            Some(std::time::Instant::now() + std::time::Duration::from_millis(ms));
    }
    let net = single_cell_network(cell);
    let faults = network_fault_list(&net);
    let probs = vec![0.5; net.primary_inputs().len()];
    let est = match detection_probability_estimates(
        &net,
        &faults,
        &probs,
        MC_SEED,
        Parallelism::default(),
        &run_budget,
    ) {
        Ok(est) => est,
        Err(reason) => {
            eprintln!(
                "faultlib: PROTEST statistics interrupted ({reason}); \
                 the fault library above is complete, detection statistics were skipped"
            );
            return ExitCode::from(EXIT_PARTIAL);
        }
    };
    let values: Vec<f64> = est.iter().map(|e| e.value).collect();
    let hardest = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let method = if est.iter().any(|e| e.method == EstimateMethod::MonteCarlo) {
        "Monte-Carlo estimate"
    } else {
        "exact"
    };
    println!();
    match try_test_length(&values, 0.999) {
        Ok(u64::MAX) => {
            println!(
                "random test (uniform inputs, {method}): hardest detection probability \
                 {hardest:.6}, length for 99.9% confidence: unbounded \
                 (some fault was never detected)"
            );
        }
        Ok(n) => {
            println!(
                "random test (uniform inputs, {method}): hardest detection probability \
                 {hardest:.6}, length for 99.9% confidence: {n}"
            );
        }
        Err(LengthError::Interrupted(reason)) => {
            eprintln!(
                "faultlib: test-length search interrupted ({reason}); \
                 detection statistics above are complete"
            );
            return ExitCode::from(EXIT_PARTIAL);
        }
        Err(e) => {
            eprintln!("faultlib: test-length: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
