#![forbid(unsafe_code)]
//! # dynmos — Fault Modeling for Dynamic MOS Circuits
//!
//! A full reproduction of **Wunderlich & Rosenstiel, "On Fault Modeling
//! for Dynamic MOS Circuits", 23rd Design Automation Conference (1986)**.
//!
//! The paper's result: in dynamic nMOS and domino CMOS, *every* fault of
//! the common physical fault model (open line, transistor stuck-open,
//! transistor stuck-closed) leaves a gate **combinational** — unlike
//! static CMOS, where stuck-open faults create sequential behaviour and
//! break every classical test tool. Each fault maps to a stuck-at, a
//! faulty combinational function, or a pure performance degradation; fault
//! libraries can be generated automatically per cell; and probabilistic
//! testability analysis (the PROTEST tool) plus random self-test close the
//! loop.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`logic`] — Boolean substrate (expressions, truth tables, minimal
//!   DNF, signal probabilities),
//! * [`switch`] — switch-level simulator with charge states, fault
//!   injection and RC timing,
//! * [`netlist`] — technology-tagged cells (the paper's description
//!   language) and gate-level networks,
//! * [`model`] — **the paper's contribution**: the fault model, the
//!   section-3 classification theorems and the fault library generator,
//! * [`protest`] — PROTEST: signal/detection probabilities, test lengths,
//!   input-probability optimization, pattern-parallel fault simulation,
//! * [`atpg`] — PODEM-style deterministic TPG and the apply-twice
//!   strategy,
//! * [`selftest`] — LFSR/MISR/BILBO, weighted generators, at-speed
//!   self-test sessions.
//!
//! # Quickstart
//!
//! ```
//! use dynmos::model::FaultLibrary;
//! use dynmos::netlist::parse_cell;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Fig. 9 gate, in the paper's own description language.
//! let cell = parse_cell(
//!     "fig9",
//!     "TECHNOLOGY domino-CMOS;
//!      INPUT a,b,c,d,e;
//!      OUTPUT u;
//!      x1 := a*(b+c);
//!      x2 := d*e;
//!      u := x1+x2;",
//! )?;
//! let lib = FaultLibrary::generate(&cell);
//! assert_eq!(lib.classes().len(), 10); // the paper's ten fault classes
//! println!("{lib}");
//! # Ok(())
//! # }
//! ```

pub use dynmos_atpg as atpg;
pub use dynmos_core as model;
pub use dynmos_logic as logic;
pub use dynmos_netlist as netlist;
pub use dynmos_protest as protest;
pub use dynmos_selftest as selftest;
pub use dynmos_switch as switch;
