//! Property-based tests for the ATPG engine.

use dynmos_atpg::{
    apply_twice, generate_test, generate_test_set, generate_test_set_par, AtpgOutcome,
};
use dynmos_netlist::generate::{random_domino_network, ripple_adder};
use dynmos_netlist::NetworkFault;
use dynmos_protest::{network_fault_list, stuck_fault_list, FaultSimulator, Parallelism};
use proptest::prelude::*;

/// The thread-sharded fault-dropping pass must generate the same test
/// set, redundancy list, and abort list as the serial one.
#[test]
fn parallel_dropping_is_identical_to_serial() {
    // 226 stuck-at faults: enough to cross the parallel dropping
    // threshold, so the sharded path really runs.
    let net = ripple_adder(16);
    let faults = stuck_fault_list(&net);
    let serial = generate_test_set_par(&net, &faults, 0, Parallelism::Serial);
    for threads in [2usize, 4, 8] {
        let par = generate_test_set_par(&net, &faults, 0, Parallelism::Fixed(threads));
        assert_eq!(par.tests, serial.tests, "threads={threads}");
        assert_eq!(par.redundant, serial.redundant, "threads={threads}");
        assert_eq!(par.aborted, serial.aborted, "threads={threads}");
    }
    // And the set is valid: it detects every irredundant fault.
    let out = FaultSimulator::new(&net).run_patterns(&faults, &serial.tests);
    for (i, entry) in faults.iter().enumerate() {
        let detected = out.detected_at[i].is_some();
        let redundant = serial.redundant.contains(&entry.label);
        assert!(detected ^ redundant, "{}", entry.label);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every test PODEM returns actually detects its target fault.
    #[test]
    fn generated_tests_are_valid(seed in 0u64..400) {
        let net = random_domino_network(seed, 3, 4);
        let faults = network_fault_list(&net);
        let sim = FaultSimulator::new(&net);
        for entry in &faults {
            match generate_test(&net, &entry.fault, 0) {
                AtpgOutcome::Test(t) => {
                    let out = sim.run_patterns(
                        std::slice::from_ref(entry),
                        std::slice::from_ref(&t),
                    );
                    prop_assert_eq!(out.coverage(), 1.0, "{} test invalid", entry.label);
                }
                AtpgOutcome::Redundant => {
                    // Cross-check redundancy exhaustively.
                    let n = net.primary_inputs().len();
                    for w in 0..(1u64 << n) {
                        let bits: Vec<bool> = (0..n).map(|i| (w >> i) & 1 == 1).collect();
                        let out = sim.run_patterns(
                            std::slice::from_ref(entry),
                            std::slice::from_ref(&bits),
                        );
                        prop_assert_eq!(
                            out.coverage(), 0.0,
                            "{} claimed redundant but {:?} detects it", entry.label, bits
                        );
                    }
                }
                AtpgOutcome::Aborted => prop_assert!(false, "unlimited budget aborted"),
            }
        }
    }

    /// The dropped test set covers exactly what per-fault ATPG covers.
    #[test]
    fn test_set_coverage_equals_per_fault_coverage(seed in 0u64..400) {
        let net = random_domino_network(seed, 3, 4);
        let faults = network_fault_list(&net);
        let report = generate_test_set(&net, &faults, 0);
        prop_assert!(report.aborted.is_empty());
        let out = FaultSimulator::new(&net).run_patterns(&faults, &report.tests);
        for (i, entry) in faults.iter().enumerate() {
            let detected = out.detected_at[i].is_some();
            let redundant = report.redundant.contains(&entry.label);
            prop_assert!(detected ^ redundant, "{}", entry.label);
        }
    }

    /// apply_twice exactly duplicates the sequence.
    #[test]
    fn apply_twice_structure(tests in prop::collection::vec(
        prop::collection::vec(any::<bool>(), 3), 0..6)) {
        let doubled = apply_twice(&tests);
        prop_assert_eq!(doubled.len(), tests.len() * 2);
        prop_assert_eq!(&doubled[..tests.len()], &tests[..]);
        prop_assert_eq!(&doubled[tests.len()..], &tests[..]);
    }

    /// A self-equal gate-function fault is always proven redundant.
    #[test]
    fn identity_fault_is_redundant(seed in 0u64..400, pick in any::<prop::sample::Index>()) {
        let net = random_domino_network(seed, 3, 4);
        let g = dynmos_netlist::GateRef(pick.index(net.gates().len()) as u32);
        let fault = NetworkFault::GateFunction(g, net.cell_of(g).logic_function());
        prop_assert_eq!(generate_test(&net, &fault, 0), AtpgOutcome::Redundant);
    }
}
