//! PODEM-style deterministic test generation.
//!
//! Classic PODEM [Goel & Rosales, 18th DAC] searches the primary-input
//! space directly (no internal-line assignments), backtracking when the
//! fault effect can no longer reach an output. Our faults are richer than
//! stuck-at — a gate may compute an arbitrary faulty function — so the
//! implementation simulates *both* machines (good and faulty) under the
//! partial assignment in Kleene logic and prunes when every primary
//! output is definite and equal in both.
//!
//! For the paper-scale circuits the search is exact: exhausting it proves
//! the fault redundant (the identification PROTEST needs to exclude
//! "non detectable" faults).

use crate::tri::{eval_tri, Tri};
use dynmos_netlist::{Network, NetworkFault, PackedEvaluator};
use dynmos_protest::{
    env_budget_ms, plan_shards, run_sharded, FaultEntry, Json, Parallelism, RunBudget, RunStatus,
    ShardPlan, StopReason,
};

/// Result of a single-fault ATPG run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtpgOutcome {
    /// A test was found.
    Test(Vec<bool>),
    /// The search space was exhausted: the fault is redundant
    /// (undetectable by any input pattern).
    Redundant,
    /// The backtrack budget ran out before a verdict.
    Aborted,
}

impl AtpgOutcome {
    /// The test pattern, if one was found.
    pub fn test(&self) -> Option<&[bool]> {
        match self {
            AtpgOutcome::Test(t) => Some(t),
            _ => None,
        }
    }
}

/// Per-gate functions of one machine, precomputed once per search (the
/// inner simulation runs at every search node and must not rebuild or
/// clone expressions).
struct Machine {
    /// Function per gate, in gate-index order.
    functions: Vec<dynmos_logic::Bexpr>,
    /// Net forced to a constant, if the fault is a stuck net.
    stuck: Option<(dynmos_netlist::NetId, bool)>,
}

impl Machine {
    fn new(net: &Network, fault: Option<&NetworkFault>) -> Self {
        let functions = (0..net.gates().len())
            .map(|gi| match fault {
                Some(NetworkFault::GateFunction(fg, f)) if fg.index() == gi => f.clone(),
                _ => net
                    .cell_of(dynmos_netlist::GateRef(gi as u32))
                    .logic_function(),
            })
            .collect();
        let stuck = match fault {
            Some(NetworkFault::NetStuck(netid, v)) => Some((*netid, *v)),
            _ => None,
        };
        Self { functions, stuck }
    }
}

/// Three-valued simulation of the network under a partial PI assignment.
fn simulate_tri(net: &Network, pi: &[Tri], machine: &Machine) -> Vec<Tri> {
    let mut values = vec![Tri::X; net.net_count()];
    for (p, &v) in net.primary_inputs().iter().zip(pi) {
        values[p.index()] = v;
    }
    if let Some((netid, sv)) = machine.stuck {
        if net.driver(netid).is_none() {
            values[netid.index()] = Tri::from_bool(sv);
        }
    }
    for &g in net.topo_order() {
        let inst = &net.gates()[g.index()];
        let out = eval_tri(&machine.functions[g.index()], &|v| {
            values[inst.inputs[v.index()].index()]
        });
        values[inst.output.index()] = out;
        if let Some((netid, sv)) = machine.stuck {
            if netid == inst.output {
                values[netid.index()] = Tri::from_bool(sv);
            }
        }
    }
    values
}

/// Generates a test pattern for `fault` on `net` by PODEM-style
/// branch-and-bound, or proves it redundant.
///
/// `max_backtracks` bounds the search; `0` means unlimited (safe for the
/// paper-scale circuits, exponential in the worst case).
///
/// # Example
///
/// ```
/// use dynmos_atpg::{generate_test, AtpgOutcome};
/// use dynmos_netlist::generate::{fig9_cell, single_cell_network};
/// use dynmos_protest::network_fault_list;
///
/// let net = single_cell_network(fig9_cell());
/// let faults = network_fault_list(&net);
/// for entry in &faults {
///     let outcome = generate_test(&net, &entry.fault, 0);
///     assert!(matches!(outcome, AtpgOutcome::Test(_)), "{}", entry.label);
/// }
/// ```
pub fn generate_test(net: &Network, fault: &NetworkFault, max_backtracks: u64) -> AtpgOutcome {
    let n = net.primary_inputs().len();
    let mut pi = vec![Tri::X; n];
    let mut backtracks = 0u64;
    // Order PIs: those in the structural cone of the fault first —
    // activating assignments are found with fewer decisions.
    let order = pi_order(net, fault);
    let good = Machine::new(net, None);
    let bad = Machine::new(net, Some(fault));
    // Only primary outputs in the fault's fanout cone can ever differ;
    // everything else is the same function in both machines. Restricting
    // the difference check to these makes the no-difference pruning sharp
    // (an X elsewhere is noise, not an opportunity).
    let observable = observable_outputs(net, fault);
    let site = fault_site(net, fault);
    match search(
        net,
        &good,
        &bad,
        site,
        &observable,
        &mut pi,
        &order,
        0,
        &mut backtracks,
        max_backtracks,
    ) {
        SearchResult::Found(test) => AtpgOutcome::Test(test),
        SearchResult::Exhausted => AtpgOutcome::Redundant,
        SearchResult::Aborted => AtpgOutcome::Aborted,
    }
}

enum SearchResult {
    Found(Vec<bool>),
    Exhausted,
    Aborted,
}

#[allow(clippy::too_many_arguments)]
fn search(
    net: &Network,
    good_machine: &Machine,
    bad_machine: &Machine,
    site: dynmos_netlist::NetId,
    observable: &[dynmos_netlist::NetId],
    pi: &mut Vec<Tri>,
    order: &[usize],
    depth: usize,
    backtracks: &mut u64,
    max_backtracks: u64,
) -> SearchResult {
    let good = simulate_tri(net, pi, good_machine);
    let bad = simulate_tri(net, pi, bad_machine);
    // Definite difference at an output: a test is found. (Kleene-definite
    // values hold for every extension of the partial assignment.)
    for &po in observable {
        if let (Some(gv), Some(bv)) = (good[po.index()].to_bool(), bad[po.index()].to_bool()) {
            if gv != bv {
                let test = pi.iter().map(|t| t.to_bool().unwrap_or(false)).collect();
                return SearchResult::Found(test);
            }
        }
    }
    // Forward "maybe-differs" propagation — PODEM's D-frontier/X-path
    // check generalized to arbitrary faulty functions. A net can still
    // expose the fault under SOME extension only if it is the fault site
    // (not yet definitely equal in both machines) or a gate output that
    // is not definitely equal and has a maybe-differing input. If no
    // observable output remains maybe-differing, prune: this catches both
    // "fault cannot be activated" (site forced equal) and reconvergent
    // masking (the difference is definitely absorbed on every path).
    let mut maybe = vec![false; net.net_count()];
    let both_definite_equal = |i: usize| -> bool { good[i].is_known() && good[i] == bad[i] };
    maybe[site.index()] = !both_definite_equal(site.index());
    for &g in net.topo_order() {
        let inst = &net.gates()[g.index()];
        let o = inst.output.index();
        if o == site.index() {
            continue; // site handling above
        }
        if both_definite_equal(o) {
            continue;
        }
        if inst.inputs.iter().any(|i| maybe[i.index()]) {
            maybe[o] = true;
        }
    }
    if !observable.iter().any(|po| maybe[po.index()]) {
        return SearchResult::Exhausted;
    }
    // Pick the next unassigned PI in cone-first order.
    let next = order.iter().copied().find(|&i| pi[i] == Tri::X);
    let Some(var) = next else {
        // Fully assigned and no difference: prune.
        return SearchResult::Exhausted;
    };
    let _ = depth;
    for value in [Tri::One, Tri::Zero] {
        pi[var] = value;
        match search(
            net,
            good_machine,
            bad_machine,
            site,
            observable,
            pi,
            order,
            depth + 1,
            backtracks,
            max_backtracks,
        ) {
            SearchResult::Found(t) => return SearchResult::Found(t),
            SearchResult::Aborted => {
                pi[var] = Tri::X;
                return SearchResult::Aborted;
            }
            SearchResult::Exhausted => {
                *backtracks += 1;
                if max_backtracks != 0 && *backtracks > max_backtracks {
                    pi[var] = Tri::X;
                    return SearchResult::Aborted;
                }
            }
        }
    }
    pi[var] = Tri::X;
    SearchResult::Exhausted
}

/// The net at which the two machines first diverge: the stuck net, or the
/// faulty gate's output.
fn fault_site(net: &Network, fault: &NetworkFault) -> dynmos_netlist::NetId {
    match fault {
        NetworkFault::NetStuck(netid, _) => *netid,
        NetworkFault::GateFunction(g, _) => net.gates()[g.index()].output,
    }
}

/// Primary outputs reachable from the fault site — the only ones the two
/// machines can disagree on.
fn observable_outputs(net: &Network, fault: &NetworkFault) -> Vec<dynmos_netlist::NetId> {
    let site: dynmos_netlist::NetId = match fault {
        NetworkFault::NetStuck(netid, _) => *netid,
        NetworkFault::GateFunction(g, _) => net.gates()[g.index()].output,
    };
    // Forward reachability over consumer arcs.
    let mut reach = vec![false; net.net_count()];
    reach[site.index()] = true;
    for &g in net.topo_order() {
        let inst = &net.gates()[g.index()];
        if inst.inputs.iter().any(|i| reach[i.index()]) {
            reach[inst.output.index()] = true;
        }
    }
    net.primary_outputs()
        .iter()
        .copied()
        .filter(|po| reach[po.index()])
        .collect()
}

/// PI decision order: inputs in the faulty gate's cone first, *sorted by
/// distance to the fault site* (closest first), then the rest.
///
/// Distance ordering matters enormously on deep circuits: assigning the
/// fault site's immediate side-inputs first lets Kleene controlling
/// values (a 0 into an AND, a 1 into an OR/majority) determine internal
/// nets without justifying the whole transitive cone, which turns the
/// search on chain structures from exponential to near-linear.
fn pi_order(net: &Network, fault: &NetworkFault) -> Vec<usize> {
    let n = net.primary_inputs().len();
    // BFS backward from the fault site: distance 0 at its input nets,
    // +1 per driving gate crossed.
    const FAR: usize = usize::MAX;
    let mut dist = vec![FAR; net.net_count()];
    let mut queue: std::collections::VecDeque<(dynmos_netlist::NetId, usize)> = match fault {
        NetworkFault::NetStuck(netid, _) => [(*netid, 0)].into(),
        NetworkFault::GateFunction(g, _) => net.gates()[g.index()]
            .inputs
            .iter()
            .map(|&i| (i, 0))
            .collect(),
    };
    while let Some((netid, d)) = queue.pop_front() {
        if dist[netid.index()] <= d {
            continue;
        }
        dist[netid.index()] = d;
        if let Some(drv) = net.driver(netid) {
            for &i in &net.gates()[drv.index()].inputs {
                queue.push_back((i, d + 1));
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| dist[net.primary_inputs()[i].index()]);
    order
}

/// Report from whole-list test generation.
#[derive(Debug, Clone)]
pub struct TestSetReport {
    /// The generated (compacted-by-dropping) test set.
    pub tests: Vec<Vec<bool>>,
    /// Labels of faults proven redundant.
    pub redundant: Vec<String>,
    /// Labels of faults aborted on budget.
    pub aborted: Vec<String>,
}

impl TestSetReport {
    /// Fault coverage over the non-redundant universe: 1.0 when no aborts.
    pub fn coverage_of_irredundant(&self, total_faults: usize) -> f64 {
        let irredundant = total_faults - self.redundant.len();
        if irredundant == 0 {
            return 1.0;
        }
        (irredundant - self.aborted.len()) as f64 / irredundant as f64
    }
}

/// Generates a deterministic test set covering every detectable fault in
/// `faults`, using fault dropping (each new test is fault-simulated and
/// all newly covered faults are skipped).
///
/// # Example
///
/// ```
/// use dynmos_atpg::generate_test_set;
/// use dynmos_netlist::generate::c17_dynamic_nmos;
/// use dynmos_protest::network_fault_list;
///
/// let net = c17_dynamic_nmos();
/// let faults = network_fault_list(&net);
/// let report = generate_test_set(&net, &faults, 0);
/// assert!(report.aborted.is_empty());
/// assert!(report.tests.len() < faults.len()); // dropping compacts
/// ```
pub fn generate_test_set(
    net: &Network,
    faults: &[FaultEntry],
    max_backtracks: u64,
) -> TestSetReport {
    generate_test_set_par(net, faults, max_backtracks, Parallelism::default())
}

/// Only shard the dropping pass when enough uncovered faults remain to
/// pay for a per-worker evaluator allocation.
const PARALLEL_DROP_MIN: usize = 128;

/// [`generate_test_set`] with an explicit thread policy for the
/// fault-dropping pass: after each generated test, the still-uncovered
/// faults are diffed against it in fault shards, each worker on its own
/// evaluator ([`dynmos_protest::parallel`]). Covered-set updates are
/// order-independent, so the generated test set is identical at any
/// thread count.
///
/// Each drop pass diffs **one** pattern, so the two-axis planner
/// ([`plan_shards`]) has no pattern axis to cut here: late-stage passes,
/// where the uncovered list has shrunk below the thread count, plan onto
/// the inline serial path — per-pass spawn overhead would dwarf the
/// handful of cone replays left.
pub fn generate_test_set_par(
    net: &Network,
    faults: &[FaultEntry],
    max_backtracks: u64,
    parallelism: Parallelism,
) -> TestSetReport {
    if let Some(ms) = env_budget_ms() {
        // The CI knob: run the generation as an interrupt/resume loop
        // with a per-leg deadline. The fault walk is serial and
        // restarts exactly where it stopped, so the report is
        // identical to the uninterrupted run's.
        let leg = || RunBudget::deadline_in(std::time::Duration::from_millis(ms));
        let mut run =
            generate_test_set_budgeted(net, faults, max_backtracks, parallelism, &leg(), None);
        while let Some(cp) = run.checkpoint.take() {
            run = generate_test_set_budgeted(
                net,
                faults,
                max_backtracks,
                parallelism,
                &leg(),
                Some(cp),
            );
        }
        return run.report;
    }
    generate_test_set_budgeted(
        net,
        faults,
        max_backtracks,
        parallelism,
        &RunBudget::unlimited(),
        None,
    )
    .report
}

/// Resumable state of an interrupted [`generate_test_set_budgeted`]
/// run: the next fault to target plus everything accumulated so far.
#[derive(Debug, Clone)]
pub struct AtpgCheckpoint {
    next_fault: usize,
    covered: Vec<bool>,
    tests: Vec<Vec<bool>>,
    redundant: Vec<String>,
    aborted: Vec<String>,
}

impl AtpgCheckpoint {
    /// How many fault-list entries the run has walked past.
    pub fn faults_done(&self) -> usize {
        self.next_fault
    }

    /// The checkpoint as a JSON object. Tests serialize as `'0'`/`'1'`
    /// bit strings (the same encoding the service's `atpg` output
    /// uses), coverage flags as booleans — everything round-trips
    /// exactly through [`AtpgCheckpoint::from_json`], so a resumed
    /// walk's report is unchanged.
    pub fn to_json(&self) -> Json {
        let bits = |t: &Vec<bool>| {
            Json::str(
                t.iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect::<String>(),
            )
        };
        let labels = |ls: &[String]| Json::Arr(ls.iter().map(|l| Json::str(l.clone())).collect());
        Json::Obj(vec![
            ("kind".into(), Json::str("atpg")),
            ("next_fault".into(), Json::num(self.next_fault as u64)),
            (
                "covered".into(),
                Json::Arr(self.covered.iter().map(|&c| Json::Bool(c)).collect()),
            ),
            (
                "tests".into(),
                Json::Arr(self.tests.iter().map(bits).collect()),
            ),
            ("redundant".into(), labels(&self.redundant)),
            ("aborted".into(), labels(&self.aborted)),
        ])
    }

    /// Rebuilds a checkpoint from [`AtpgCheckpoint::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message for missing/mistyped fields, a wrong `kind`,
    /// or a test string containing anything but `'0'`/`'1'`.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        if v.get("kind").and_then(Json::as_str) != Some("atpg") {
            return Err("not an atpg checkpoint".into());
        }
        let arr = |k: &str| {
            v.get(k)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("atpg checkpoint: bad or missing {k:?}"))
        };
        let labels = |k: &str| -> Result<Vec<String>, String> {
            arr(k)?
                .iter()
                .map(|l| {
                    l.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| format!("atpg checkpoint: bad label {l} in {k:?}"))
                })
                .collect()
        };
        let tests = arr("tests")?
            .iter()
            .map(|t| {
                t.as_str()
                    .ok_or_else(|| format!("atpg checkpoint: bad test {t}"))?
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(false),
                        '1' => Ok(true),
                        other => Err(format!("atpg checkpoint: bad test bit {other:?}")),
                    })
                    .collect()
            })
            .collect::<Result<Vec<Vec<bool>>, _>>()?;
        let covered = arr("covered")?
            .iter()
            .map(|c| {
                c.as_bool()
                    .ok_or_else(|| format!("atpg checkpoint: bad coverage flag {c}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            next_fault: v
                .get("next_fault")
                .and_then(Json::as_u64)
                .ok_or("atpg checkpoint: bad or missing \"next_fault\"")?
                as usize,
            covered,
            tests,
            redundant: labels("redundant")?,
            aborted: labels("aborted")?,
        })
    }
}

/// Outcome of a budgeted PODEM whole-list run: the (possibly partial)
/// report, whether it finished, and — when interrupted — the
/// checkpoint to resume from.
#[derive(Debug, Clone)]
pub struct AtpgRun {
    /// Tests, redundancies and aborts accumulated so far. Partial
    /// reports are valid prefixes of the complete run's.
    pub report: TestSetReport,
    /// [`RunStatus::Completed`], or why the walk stopped.
    pub status: RunStatus,
    /// Present exactly when interrupted; feed it back as `resume` to
    /// continue. The completed resumed run's report is identical to an
    /// uninterrupted run's.
    pub checkpoint: Option<AtpgCheckpoint>,
}

/// [`generate_test_set_par`] under a [`RunBudget`], optionally resuming
/// from a prior run's checkpoint. The budget is checked between target
/// faults (one PODEM search plus one dropping pass is the atom of
/// work), after at least one has been processed — forward progress, so
/// a resume loop under an always-expired budget still terminates. The
/// walk is deterministic, so interruption points never change the
/// final report.
///
/// # Panics
///
/// Panics if `resume` comes from a run over a different fault list.
pub fn generate_test_set_budgeted(
    net: &Network,
    faults: &[FaultEntry],
    max_backtracks: u64,
    parallelism: Parallelism,
    run_budget: &RunBudget,
    resume: Option<AtpgCheckpoint>,
) -> AtpgRun {
    // One compiled evaluator and one prepared fault apiece serve the
    // whole dropping loop; each new test diffs only the still-uncovered
    // faults, and only their fanout cones.
    let mut ev = PackedEvaluator::new(net);
    let prepared: Vec<_> = faults.iter().map(|e| net.prepare_fault(&e.fault)).collect();
    let n = net.primary_inputs().len();
    let threads = parallelism.resolve();
    let mut batch = vec![0u64; n];
    let (start, mut covered, mut tests, mut redundant, mut aborted) = match resume {
        Some(cp) => {
            assert_eq!(
                cp.covered.len(),
                faults.len(),
                "checkpoint fault count mismatch"
            );
            (
                cp.next_fault,
                cp.covered,
                cp.tests,
                cp.redundant,
                cp.aborted,
            )
        }
        None => (
            0,
            vec![false; faults.len()],
            Vec::new(),
            Vec::new(),
            Vec::new(),
        ),
    };
    let mut uncovered_count = covered.iter().filter(|&&c| !c).count();
    // Scratch for the sharded path, allocated once per call.
    let mut uncovered: Vec<usize> = Vec::new();
    let mut stop: Option<(usize, StopReason)> = None;
    for (i, entry) in faults.iter().enumerate().skip(start) {
        if i > start {
            if let Some(reason) = run_budget.stop_requested() {
                stop = Some((i, reason));
                break;
            }
        }
        if covered[i] {
            continue;
        }
        match generate_test(net, &entry.fault, max_backtracks) {
            AtpgOutcome::Test(t) => {
                // Drop everything this test covers (lane 0 of the batch).
                for (b, &bit) in batch.iter_mut().zip(&t) {
                    *b = bit as u64;
                }
                let plan = plan_shards(uncovered_count, 1, threads);
                if matches!(plan, ShardPlan::Faults(w) if w > 1)
                    && uncovered_count >= PARALLEL_DROP_MIN
                {
                    uncovered.clear();
                    uncovered.extend((0..faults.len()).filter(|&j| !covered[j]));
                    let batch = &batch;
                    let prepared = &prepared;
                    let uncovered = &uncovered;
                    let newly = run_sharded(uncovered.len(), plan.workers(), |range| {
                        let mut ev = PackedEvaluator::new(net);
                        ev.eval(batch);
                        uncovered[range]
                            .iter()
                            .copied()
                            .filter(|&j| ev.fault_diff64(&prepared[j]) & 1 == 1)
                            .collect::<Vec<usize>>()
                    });
                    for j in newly.into_iter().flatten() {
                        covered[j] = true;
                        uncovered_count -= 1;
                    }
                } else {
                    ev.eval(&batch);
                    for (j, p) in prepared.iter().enumerate() {
                        if !covered[j] && ev.fault_diff64(p) & 1 == 1 {
                            covered[j] = true;
                            uncovered_count -= 1;
                        }
                    }
                }
                assert!(covered[i], "generated test must cover its target");
                tests.push(t);
            }
            AtpgOutcome::Redundant => redundant.push(entry.label.clone()),
            AtpgOutcome::Aborted => aborted.push(entry.label.clone()),
        }
    }
    match stop {
        Some((next_fault, reason)) => AtpgRun {
            report: TestSetReport {
                tests: tests.clone(),
                redundant: redundant.clone(),
                aborted: aborted.clone(),
            },
            status: RunStatus::Interrupted(reason),
            checkpoint: Some(AtpgCheckpoint {
                next_fault,
                covered,
                tests,
                redundant,
                aborted,
            }),
        },
        None => AtpgRun {
            report: TestSetReport {
                tests,
                redundant,
                aborted,
            },
            status: RunStatus::Completed,
            checkpoint: None,
        },
    }
}

/// The paper's A1/A2 strategy: "these assumptions can be fulfilled by
/// applying the test set exactly twice." Returns the doubled sequence.
///
/// # Example
///
/// ```
/// use dynmos_atpg::apply_twice;
/// let set = vec![vec![true, false], vec![false, true]];
/// let doubled = apply_twice(&set);
/// assert_eq!(doubled.len(), 4);
/// assert_eq!(doubled[0], doubled[2]);
/// ```
pub fn apply_twice(tests: &[Vec<bool>]) -> Vec<Vec<bool>> {
    tests.iter().chain(tests.iter()).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmos_logic::Bexpr;
    use dynmos_netlist::generate::{
        and_or_tree, c17_dynamic_nmos, carry_chain, fig9_cell, single_cell_network,
    };
    use dynmos_netlist::GateRef;
    use dynmos_protest::network_fault_list;
    use dynmos_protest::FaultSimulator;

    #[test]
    fn finds_tests_for_all_fig9_classes() {
        let net = single_cell_network(fig9_cell());
        let faults = network_fault_list(&net);
        for entry in &faults {
            let out = generate_test(&net, &entry.fault, 0);
            let test = out
                .test()
                .unwrap_or_else(|| panic!("{} untested", entry.label));
            // Verify with the fault simulator.
            let sim = FaultSimulator::new(&net);
            let r = sim.run_patterns(
                std::slice::from_ref(entry),
                std::slice::from_ref(&test.to_vec()),
            );
            assert_eq!(r.coverage(), 1.0, "{} test invalid", entry.label);
        }
    }

    #[test]
    fn proves_redundant_fault() {
        // Inject a faulty function equal to the good one: undetectable.
        let net = and_or_tree(2);
        let good = net.cell_of(GateRef(0)).logic_function();
        let fault = NetworkFault::GateFunction(GateRef(0), good);
        assert_eq!(generate_test(&net, &fault, 0), AtpgOutcome::Redundant);
    }

    #[test]
    fn proves_masked_stuck_at_redundant() {
        // Classic redundancy: a gate whose output cannot affect any PO.
        // Build g0 = x0 & x1 feeding nothing marked as output; instead the
        // output is x2 alone through an OR with constant structure. Easier:
        // net output = (x0&x1) | x2 with fault "gate0 function = x0&x1&x2"
        // differs only when x0&x1=1,x2... choose genuinely masked case:
        // fault on g0 output only visible when x2=0; function replacing
        // g0 by g0 OR (x0&x1) == same -> redundant handled above. Here
        // test a *detectable* subtle fault instead to guard against false
        // redundancy claims.
        let net = and_or_tree(2);
        let faults = network_fault_list(&net);
        for e in &faults {
            assert!(
                matches!(generate_test(&net, &e.fault, 0), AtpgOutcome::Test(_)),
                "{} wrongly redundant",
                e.label
            );
        }
    }

    #[test]
    fn full_test_set_covers_c17() {
        let net = c17_dynamic_nmos();
        let faults = network_fault_list(&net);
        let report = generate_test_set(&net, &faults, 0);
        assert!(report.aborted.is_empty());
        assert!(report.redundant.is_empty(), "{:?}", report.redundant);
        // Validate 100% coverage by simulation.
        let sim = FaultSimulator::new(&net);
        let out = sim.run_patterns(&faults, &report.tests);
        assert_eq!(out.coverage(), 1.0);
    }

    #[test]
    fn test_set_is_compact() {
        let net = single_cell_network(fig9_cell());
        let faults = network_fault_list(&net);
        let report = generate_test_set(&net, &faults, 0);
        // 20 faults but far fewer tests thanks to dropping.
        assert!(report.tests.len() <= 10, "{} tests", report.tests.len());
    }

    #[test]
    fn carry_chain_test_set() {
        let net = carry_chain(4);
        let faults = network_fault_list(&net);
        let report = generate_test_set(&net, &faults, 0);
        assert!(report.aborted.is_empty());
        let sim = FaultSimulator::new(&net);
        let out = sim.run_patterns(&faults, &report.tests);
        assert_eq!(out.coverage(), 1.0, "escapes: {:?}", out.escapes());
    }

    #[test]
    fn aborts_respect_budget() {
        // A redundant fault with a tiny backtrack budget aborts instead of
        // claiming redundancy.
        let net = and_or_tree(3);
        let good = net.cell_of(GateRef(0)).logic_function();
        let fault = NetworkFault::GateFunction(GateRef(0), good);
        let out = generate_test(&net, &fault, 1);
        assert_eq!(out, AtpgOutcome::Aborted);
    }

    #[test]
    fn apply_twice_doubles_in_order() {
        let set = vec![vec![true], vec![false], vec![true]];
        let doubled = apply_twice(&set);
        assert_eq!(doubled.len(), 6);
        assert_eq!(&doubled[..3], &set[..]);
        assert_eq!(&doubled[3..], &set[..]);
    }

    #[test]
    fn constant_fault_functions() {
        // Gate function stuck to constants must be detectable on the tree.
        let net = and_or_tree(2);
        for c in [Bexpr::FALSE, Bexpr::TRUE] {
            let fault = NetworkFault::GateFunction(GateRef(2), c);
            assert!(matches!(
                generate_test(&net, &fault, 0),
                AtpgOutcome::Test(_)
            ));
        }
    }

    #[test]
    fn interrupted_generation_resumes_identically() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let net = c17_dynamic_nmos();
        let faults = network_fault_list(&net);
        let reference = generate_test_set(&net, &faults, 0);
        // A pre-raised cancel flag forces one fault of progress per
        // leg; lowering it mid-loop proves partial reports are valid
        // prefixes and the final report is identical.
        let flag = Arc::new(AtomicBool::new(true));
        let cancelled = RunBudget::unlimited().with_cancel(flag.clone());
        let mut run =
            generate_test_set_budgeted(&net, &faults, 0, Parallelism::Serial, &cancelled, None);
        let mut legs = 0usize;
        while let Some(cp) = run.checkpoint.take() {
            legs += 1;
            assert_eq!(
                run.status,
                RunStatus::Interrupted(StopReason::Cancelled),
                "leg {legs}"
            );
            assert!(run.report.tests.len() <= reference.tests.len());
            if legs == 3 {
                flag.store(false, Ordering::Relaxed);
            }
            run = generate_test_set_budgeted(
                &net,
                &faults,
                0,
                Parallelism::Serial,
                &cancelled,
                Some(cp),
            );
        }
        assert!(legs >= 3, "expected several interrupted legs, got {legs}");
        assert!(run.status.is_complete());
        assert_eq!(run.report.tests, reference.tests);
        assert_eq!(run.report.redundant, reference.redundant);
        assert_eq!(run.report.aborted, reference.aborted);
    }
}
