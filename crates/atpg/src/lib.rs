#![forbid(unsafe_code)]
//! Deterministic test pattern generation for dynamic MOS networks.
//!
//! The paper's point (section 3/4): because every fault of the physical
//! fault model stays *combinational* in dynamic MOS, "the classical test
//! tools … which work for ordinary pull down nMOS" apply — in particular
//! deterministic TPG à la PODEM \[13\]. And (section 4): "If a deterministic
//! test set is generated e.g. by PODEM, then these assumptions [A1, A2]
//! can be fulfilled by applying the test set exactly twice."
//!
//! * [`Tri`] — Kleene three-valued logic for partial-assignment
//!   simulation,
//! * [`generate_test`] — PODEM-style branch-and-bound over primary-input
//!   assignments with X-path pruning, for arbitrary faulty-function
//!   faults (our fault model is richer than plain stuck-at),
//! * [`generate_test_set`] — full test set with fault dropping via the
//!   `dynmos-protest` fault simulator; proves redundancy exactly for
//!   in-budget searches,
//! * [`apply_twice`] — the paper's A1/A2 strategy.

pub mod podem;
pub mod service;
pub mod tri;

pub use service::{register_atpg, AtpgJob};

pub use podem::{
    apply_twice, generate_test, generate_test_set, generate_test_set_budgeted,
    generate_test_set_par, AtpgCheckpoint, AtpgOutcome, AtpgRun, TestSetReport,
};
pub use tri::Tri;
