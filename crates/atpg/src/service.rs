//! PODEM as a supervised job: adapts [`generate_test_set_budgeted`] to
//! the `dynmos_protest::service` [`JobKernel`] contract, so the job
//! engine supervises deterministic ATPG with the same
//! retry/timeout/checkpoint machinery as the probabilistic kernels.
//!
//! The kernel commits its [`AtpgCheckpoint`] only on leg return, and
//! the fault walk is deterministic, so a run killed and resumed any
//! number of times produces the same test set as an uninterrupted one.

use crate::podem::{generate_test_set_budgeted, AtpgCheckpoint, TestSetReport};
use dynmos_netlist::Network;
use dynmos_protest::budget::{RunBudget, RunStatus};
use dynmos_protest::list::FaultEntry;
use dynmos_protest::parallel::Parallelism;
use dynmos_protest::service::jobs::param_u64;
use dynmos_protest::service::{JobContext, JobEngine, JobKernel, Json};
use std::sync::Arc;

/// Default PODEM backtrack budget when the request omits
/// `max_backtracks`.
const DEFAULT_BACKTRACKS: u64 = 50;

/// A supervised PODEM whole-list run.
pub struct AtpgJob {
    net: Arc<Network>,
    faults: Vec<FaultEntry>,
    parallelism: Parallelism,
    max_backtracks: u64,
    state: Option<AtpgCheckpoint>,
    started: bool,
    report: Option<TestSetReport>,
    complete: bool,
}

impl AtpgJob {
    /// Builds the job from a request (`max_backtracks`).
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` keeps the factory signature
    /// uniform.
    pub fn from_request(ctx: JobContext<'_>) -> Result<Self, String> {
        Ok(Self {
            max_backtracks: param_u64(ctx.params, "max_backtracks", DEFAULT_BACKTRACKS),
            net: ctx.net,
            faults: ctx.faults,
            parallelism: ctx.parallelism,
            state: None,
            started: false,
            report: None,
            complete: false,
        })
    }
}

impl JobKernel for AtpgJob {
    fn kind(&self) -> &'static str {
        "atpg"
    }

    fn run_leg(&mut self, budget: &RunBudget) -> RunStatus {
        let resume = match self.state.take() {
            Some(cp) => Some(cp),
            None if !self.started => {
                self.started = true;
                None
            }
            None => return RunStatus::Completed,
        };
        let run = generate_test_set_budgeted(
            &self.net,
            &self.faults,
            self.max_backtracks,
            self.parallelism,
            budget,
            resume,
        );
        self.state = run.checkpoint;
        self.complete = run.status.is_complete();
        self.report = Some(run.report);
        run.status
    }

    fn output(&self) -> Json {
        let mut members = vec![("kind".into(), Json::str("atpg"))];
        if let Some(r) = &self.report {
            members.push((
                "tests".into(),
                Json::Arr(
                    r.tests
                        .iter()
                        .map(|t| {
                            Json::str(
                                t.iter()
                                    .map(|&b| if b { '1' } else { '0' })
                                    .collect::<String>(),
                            )
                        })
                        .collect(),
                ),
            ));
            members.push(("test_count".into(), Json::num(r.tests.len() as u64)));
            members.push((
                "redundant".into(),
                Json::Arr(r.redundant.iter().map(|s| Json::str(s.clone())).collect()),
            ));
            members.push((
                "aborted".into(),
                Json::Arr(r.aborted.iter().map(|s| Json::str(s.clone())).collect()),
            ));
        }
        members.push(("complete".into(), Json::Bool(self.complete)));
        Json::Obj(members)
    }

    fn snapshot(&self) -> Json {
        Json::Obj(vec![
            ("started".into(), Json::Bool(self.started)),
            (
                "checkpoint".into(),
                self.state
                    .as_ref()
                    .map_or(Json::Null, AtpgCheckpoint::to_json),
            ),
        ])
    }

    fn restore(&mut self, snapshot: &Json) -> Result<(), String> {
        self.started = snapshot
            .get("started")
            .and_then(Json::as_bool)
            .ok_or("atpg snapshot: bad or missing \"started\"")?;
        self.state = match snapshot.get("checkpoint") {
            None | Some(Json::Null) => None,
            Some(cp) => Some(AtpgCheckpoint::from_json(cp)?),
        };
        Ok(())
    }
}

/// Registers the `atpg` job kind on an engine. The engine crate cannot
/// depend on this one (the dependency points the other way), so the
/// registration is explicit.
pub fn register_atpg(engine: &mut JobEngine) {
    engine.register_kind("atpg", |ctx| {
        AtpgJob::from_request(ctx).map(|k| Box::new(k) as Box<dyn JobKernel>)
    });
}
