//! Kleene three-valued logic for partial assignments.

use dynmos_logic::{Bexpr, VarId};
use std::fmt;

/// A three-valued (Kleene) logic value: `0`, `1` or unassigned `X`.
///
/// Used by the PODEM search to simulate the network under *partial*
/// primary-input assignments. Kleene evaluation is conservative: it may
/// report `X` where the value is actually determined (e.g. `a + /a`), but
/// never reports a wrong definite value — so pruning on definite values is
/// always sound.
///
/// # Example
///
/// ```
/// use dynmos_atpg::Tri;
/// assert_eq!(Tri::Zero.and(Tri::X), Tri::Zero); // controlling value
/// assert_eq!(Tri::One.and(Tri::X), Tri::X);
/// assert_eq!(Tri::One.or(Tri::X), Tri::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tri {
    /// Definite 0.
    Zero,
    /// Definite 1.
    One,
    /// Unassigned / unknown.
    #[default]
    X,
}

impl Tri {
    /// Converts a definite bool.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Tri::One
        } else {
            Tri::Zero
        }
    }

    /// `Some(bool)` when definite.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Tri::Zero => Some(false),
            Tri::One => Some(true),
            Tri::X => None,
        }
    }

    /// Kleene conjunction (0 is controlling).
    pub fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::Zero, _) | (_, Tri::Zero) => Tri::Zero,
            (Tri::One, Tri::One) => Tri::One,
            _ => Tri::X,
        }
    }

    /// Kleene disjunction (1 is controlling).
    pub fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::One, _) | (_, Tri::One) => Tri::One,
            (Tri::Zero, Tri::Zero) => Tri::Zero,
            _ => Tri::X,
        }
    }

    /// Kleene negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Tri {
        match self {
            Tri::Zero => Tri::One,
            Tri::One => Tri::Zero,
            Tri::X => Tri::X,
        }
    }

    /// `true` when definite.
    pub fn is_known(self) -> bool {
        self != Tri::X
    }
}

impl fmt::Display for Tri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Tri::Zero => '0',
            Tri::One => '1',
            Tri::X => 'X',
        };
        write!(f, "{c}")
    }
}

impl From<bool> for Tri {
    fn from(b: bool) -> Self {
        Tri::from_bool(b)
    }
}

/// Kleene evaluation of an expression under a three-valued assignment.
///
/// # Example
///
/// ```
/// use dynmos_atpg::{Tri, tri::eval_tri};
/// use dynmos_logic::{parse_expr, VarTable};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut vars = VarTable::new();
/// let e = parse_expr("a*b+c", &mut vars)?;
/// // c=1 forces the output regardless of a,b.
/// let out = eval_tri(&e, &|v| if v.index() == 2 { Tri::One } else { Tri::X });
/// assert_eq!(out, Tri::One);
/// # Ok(())
/// # }
/// ```
pub fn eval_tri(expr: &Bexpr, assign: &impl Fn(VarId) -> Tri) -> Tri {
    match expr {
        Bexpr::Const(b) => Tri::from_bool(*b),
        Bexpr::Var(v) => assign(*v),
        Bexpr::Not(e) => eval_tri(e, assign).not(),
        Bexpr::And(ts) => ts
            .iter()
            .fold(Tri::One, |acc, t| acc.and(eval_tri(t, assign))),
        Bexpr::Or(ts) => ts
            .iter()
            .fold(Tri::Zero, |acc, t| acc.or(eval_tri(t, assign))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmos_logic::{parse_expr, VarTable};

    #[test]
    fn controlling_values_dominate_x() {
        assert_eq!(Tri::Zero.and(Tri::X), Tri::Zero);
        assert_eq!(Tri::X.and(Tri::Zero), Tri::Zero);
        assert_eq!(Tri::One.or(Tri::X), Tri::One);
        assert_eq!(Tri::X.or(Tri::One), Tri::One);
    }

    #[test]
    fn x_propagates_without_controlling_value() {
        assert_eq!(Tri::One.and(Tri::X), Tri::X);
        assert_eq!(Tri::Zero.or(Tri::X), Tri::X);
        assert_eq!(Tri::X.not(), Tri::X);
    }

    #[test]
    fn definite_operations_match_bool() {
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(
                    Tri::from_bool(a).and(Tri::from_bool(b)),
                    Tri::from_bool(a && b)
                );
                assert_eq!(
                    Tri::from_bool(a).or(Tri::from_bool(b)),
                    Tri::from_bool(a || b)
                );
            }
        }
    }

    #[test]
    fn kleene_is_pessimistic_on_tautologies() {
        // a + /a is 1 for definite a but X under Kleene with a=X — the
        // documented pessimism.
        let mut vars = VarTable::new();
        let e = parse_expr("a+/a", &mut vars).unwrap();
        assert_eq!(eval_tri(&e, &|_| Tri::X), Tri::X);
        assert_eq!(eval_tri(&e, &|_| Tri::One), Tri::One);
    }

    #[test]
    fn eval_tri_matches_eval_word_on_full_assignments() {
        let mut vars = VarTable::new();
        let e = parse_expr("a*(b+/c)+d", &mut vars).unwrap();
        for w in 0..16u64 {
            let out = eval_tri(&e, &|v| Tri::from_bool((w >> v.index()) & 1 == 1));
            assert_eq!(out.to_bool(), Some(e.eval_word(w)), "w={w}");
        }
    }

    #[test]
    fn display_and_conversions() {
        assert_eq!(Tri::X.to_string(), "X");
        assert_eq!(Tri::from(true), Tri::One);
        assert_eq!(Tri::Zero.to_bool(), Some(false));
        assert_eq!(Tri::X.to_bool(), None);
        assert!(!Tri::X.is_known());
    }
}
