//! Property-based tests for the netlist substrate.

use dynmos_logic::{Bexpr, VarId};
use dynmos_netlist::generate::{random_domino_cell, random_domino_network, random_sp_expr};
use dynmos_netlist::to_switch::domino_to_switch;
use dynmos_netlist::{
    parse_bench, Cell, GateRef, Network, NetworkFault, PackedEvaluator, Technology, C17_BENCH,
};
use dynmos_switch::Sim;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every fault class of `net` the simulator supports: PI-stuck,
/// net-stuck (gate outputs) and gate-function faults (constants, a
/// passthrough, and an input-stuck variant of the cell's own function).
fn every_fault(net: &Network) -> Vec<NetworkFault> {
    let mut faults = Vec::new();
    for &pi in net.primary_inputs() {
        faults.push(NetworkFault::NetStuck(pi, false));
        faults.push(NetworkFault::NetStuck(pi, true));
    }
    for (gi, inst) in net.gates().iter().enumerate() {
        let g = GateRef(gi as u32);
        faults.push(NetworkFault::NetStuck(inst.output, false));
        faults.push(NetworkFault::NetStuck(inst.output, true));
        faults.push(NetworkFault::GateFunction(g, Bexpr::FALSE));
        faults.push(NetworkFault::GateFunction(g, Bexpr::TRUE));
        faults.push(NetworkFault::GateFunction(g, Bexpr::var(VarId(0))));
        // The paper's s1-i0 class: input 0 of the cell stuck at 1.
        let f = net.cell_of(g).logic_function().substitute(VarId(0), true);
        faults.push(NetworkFault::GateFunction(g, f));
    }
    faults
}

fn lanes_for(lane_seed: u64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| {
            lane_seed
                .rotate_left(11 * i as u32)
                .wrapping_mul(0x9E3779B97F4A7C15)
        })
        .collect()
}

/// Acceptance gate for the compiled evaluator: across well over 100
/// random domino networks, the compiled path is bit-exact with the
/// legacy interpreter for the good machine and for every fault class,
/// both through the all-nets shim and the cone-incremental diff.
#[test]
fn differential_compiled_vs_interpreter_over_100_networks() {
    for seed in 0..120u64 {
        let net = random_domino_network(seed, 4, 6);
        let n = net.primary_inputs().len();
        let lanes = lanes_for(seed.wrapping_mul(0xD1B5_4A32_D192_ED03), n);
        let good_ref = net.eval_packed_all_reference(&lanes, None);
        let mut ev = PackedEvaluator::new(&net);
        assert_eq!(ev.eval(&lanes), &good_ref[..], "good machine, seed {seed}");
        let good_po: Vec<u64> = net
            .primary_outputs()
            .iter()
            .map(|po| good_ref[po.index()])
            .collect();
        for fault in every_fault(&net) {
            let bad_ref = net.eval_packed_all_reference(&lanes, Some(&fault));
            let prepared = net.prepare_fault(&fault);
            // Full faulty machine via the shim path.
            assert_eq!(
                net.eval_packed_all(&lanes, Some(&fault)),
                bad_ref,
                "all nets, seed {seed}, {fault:?}"
            );
            // Cone-incremental diff vs full PO comparison.
            let expect = net
                .primary_outputs()
                .iter()
                .zip(&good_po)
                .fold(0u64, |acc, (po, g)| acc | (g ^ bad_ref[po.index()]));
            assert_eq!(
                ev.fault_diff64(&prepared),
                expect,
                "diff, seed {seed}, {fault:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Packed evaluation agrees with scalar evaluation on random networks
    /// and random input lanes.
    #[test]
    fn packed_eval_matches_scalar(seed in 0u64..1000, lane_seed in any::<u64>()) {
        let net = random_domino_network(seed, 4, 5);
        let n = net.primary_inputs().len();
        let lanes: Vec<u64> = (0..n)
            .map(|i| lane_seed.rotate_left(7 * i as u32).wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let packed = net.eval_packed(&lanes);
        for lane in 0..64 {
            let bits: Vec<bool> = (0..n).map(|i| (lanes[i] >> lane) & 1 == 1).collect();
            let scalar = net.eval(&bits);
            for (k, po) in packed.iter().enumerate() {
                prop_assert_eq!((po >> lane) & 1 == 1, scalar[k], "lane {} PO {}", lane, k);
            }
        }
    }

    /// The global output function from back-substitution agrees with
    /// direct network evaluation.
    #[test]
    fn output_function_matches_eval(seed in 0u64..1000) {
        let net = random_domino_network(seed, 3, 4);
        let n = net.primary_inputs().len();
        prop_assume!(n <= 10);
        for &po in net.primary_outputs() {
            let f = net.output_function(po);
            for w in 0..(1u64 << n) {
                let bits: Vec<bool> = (0..n).map(|i| (w >> i) & 1 == 1).collect();
                let idx = net
                    .primary_outputs()
                    .iter()
                    .position(|&p| p == po)
                    .expect("po exists");
                prop_assert_eq!(f.eval_word(w), net.eval(&bits)[idx], "word {}", w);
            }
        }
    }

    /// Flattening a domino network to transistors preserves its function.
    #[test]
    fn flattened_network_matches_gate_level(seed in 0u64..300) {
        let net = random_domino_network(seed, 3, 4);
        let n = net.primary_inputs().len();
        prop_assume!(n <= 8);
        let flat = domino_to_switch(&net).expect("domino nets flatten");
        for w in 0..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (w >> i) & 1 == 1).collect();
            let expect = net.eval(&bits);
            let mut sim = Sim::new(&flat.circuit);
            let got = flat.evaluate(&mut sim, w);
            for (k, l) in got.iter().enumerate() {
                prop_assert_eq!(l.to_bool(), Some(expect[k]), "word {} PO {}", w, k);
            }
        }
    }

    /// Random cells: switch count equals the literal count of the
    /// generated expression, and the logic function is monotone (domino
    /// transmission functions are positive).
    #[test]
    fn random_cells_are_monotone(seed in 0u64..1000) {
        let cell = random_domino_cell(seed, 4, 6);
        prop_assert_eq!(cell.switch_count(), 6);
        let f = cell.logic_function();
        // Monotonicity: flipping any input 0->1 never flips output 1->0.
        for w in 0..16u64 {
            for bit in 0..4 {
                if (w >> bit) & 1 == 0 {
                    let up = w | (1 << bit);
                    prop_assert!(
                        !f.eval_word(w) || f.eval_word(up),
                        "non-monotone at {} bit {}", w, bit
                    );
                }
            }
        }
    }

    /// random_sp_expr stays within the requested variable range.
    #[test]
    fn sp_expr_respects_bounds(seed in any::<u64>(), nvars in 1usize..6, lits in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_sp_expr(&mut rng, nvars, lits);
        for v in e.support() {
            prop_assert!(v.index() < nvars);
        }
    }

    /// The compiled evaluator agrees with the legacy interpreter on the
    /// good machine for arbitrary input lanes.
    #[test]
    fn compiled_good_machine_matches_interpreter(seed in 0u64..1000, lane_seed in any::<u64>()) {
        let net = random_domino_network(seed, 4, 6);
        let lanes = lanes_for(lane_seed, net.primary_inputs().len());
        let reference = net.eval_packed_all_reference(&lanes, None);
        let mut ev = PackedEvaluator::new(&net);
        prop_assert_eq!(ev.eval(&lanes), &reference[..]);
    }

    /// Cone-incremental faulty evaluation agrees with full faulty
    /// re-simulation for a randomly chosen fault of any class.
    #[test]
    fn cone_incremental_matches_full_faulty(
        seed in 0u64..1000,
        lane_seed in any::<u64>(),
        pick in any::<prop::sample::Index>(),
    ) {
        let net = random_domino_network(seed, 4, 6);
        let lanes = lanes_for(lane_seed, net.primary_inputs().len());
        let faults = every_fault(&net);
        let fault = &faults[pick.index(faults.len())];
        let bad = net.eval_packed_all_reference(&lanes, Some(fault));
        let good = net.eval_packed_all_reference(&lanes, None);
        let expect = net
            .primary_outputs()
            .iter()
            .fold(0u64, |acc, po| acc | (good[po.index()] ^ bad[po.index()]));
        let mut ev = PackedEvaluator::new(&net);
        ev.eval(&lanes);
        let prepared = net.prepare_fault(fault);
        prop_assert_eq!(ev.fault_diff64(&prepared), expect, "{:?}", fault);
        prop_assert_eq!(ev.eval_faulty_all(&prepared), &bad[..], "{:?}", fault);
    }

    /// Cell compilation is stable: compiling the same description twice
    /// yields identical cells.
    #[test]
    fn compilation_is_deterministic(seed in 0u64..1000) {
        let a = random_domino_cell(seed, 3, 5);
        let b = random_domino_cell(seed, 3, 5);
        prop_assert_eq!(a.transmission(), b.transmission());
        prop_assert_eq!(a.technology(), Technology::DominoCmos);
        let _ : &Cell = &a;
    }

    /// `parse_bench` never panics: arbitrary byte soup is either a
    /// network or a structured parse error, never an abort.
    #[test]
    fn parse_bench_never_panics_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_bench(&text);
    }

    /// Mutated well-formed netlists (truncations and single-byte edits
    /// of the c17 fixture) also parse or error, never panic — this
    /// hits the "almost valid" surface byte soup rarely reaches.
    #[test]
    fn parse_bench_never_panics_on_mutated_fixture(cut in 0usize..400, pos in 0usize..400, byte in any::<u8>()) {
        let mut text = C17_BENCH.as_bytes().to_vec();
        text.truncate(cut.min(text.len()));
        if !text.is_empty() {
            let at = pos % text.len();
            text[at] = byte;
        }
        let text = String::from_utf8_lossy(&text);
        let _ = parse_bench(&text);
    }
}
