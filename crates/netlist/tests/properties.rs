//! Property-based tests for the netlist substrate.

use dynmos_netlist::generate::{random_domino_cell, random_domino_network, random_sp_expr};
use dynmos_netlist::to_switch::domino_to_switch;
use dynmos_netlist::{Cell, Technology};
use dynmos_switch::Sim;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Packed evaluation agrees with scalar evaluation on random networks
    /// and random input lanes.
    #[test]
    fn packed_eval_matches_scalar(seed in 0u64..1000, lane_seed in any::<u64>()) {
        let net = random_domino_network(seed, 4, 5);
        let n = net.primary_inputs().len();
        let lanes: Vec<u64> = (0..n)
            .map(|i| lane_seed.rotate_left(7 * i as u32).wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let packed = net.eval_packed(&lanes);
        for lane in 0..64 {
            let bits: Vec<bool> = (0..n).map(|i| (lanes[i] >> lane) & 1 == 1).collect();
            let scalar = net.eval(&bits);
            for (k, po) in packed.iter().enumerate() {
                prop_assert_eq!((po >> lane) & 1 == 1, scalar[k], "lane {} PO {}", lane, k);
            }
        }
    }

    /// The global output function from back-substitution agrees with
    /// direct network evaluation.
    #[test]
    fn output_function_matches_eval(seed in 0u64..1000) {
        let net = random_domino_network(seed, 3, 4);
        let n = net.primary_inputs().len();
        prop_assume!(n <= 10);
        for &po in net.primary_outputs() {
            let f = net.output_function(po);
            for w in 0..(1u64 << n) {
                let bits: Vec<bool> = (0..n).map(|i| (w >> i) & 1 == 1).collect();
                let idx = net
                    .primary_outputs()
                    .iter()
                    .position(|&p| p == po)
                    .expect("po exists");
                prop_assert_eq!(f.eval_word(w), net.eval(&bits)[idx], "word {}", w);
            }
        }
    }

    /// Flattening a domino network to transistors preserves its function.
    #[test]
    fn flattened_network_matches_gate_level(seed in 0u64..300) {
        let net = random_domino_network(seed, 3, 4);
        let n = net.primary_inputs().len();
        prop_assume!(n <= 8);
        let flat = domino_to_switch(&net).expect("domino nets flatten");
        for w in 0..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (w >> i) & 1 == 1).collect();
            let expect = net.eval(&bits);
            let mut sim = Sim::new(&flat.circuit);
            let got = flat.evaluate(&mut sim, w);
            for (k, l) in got.iter().enumerate() {
                prop_assert_eq!(l.to_bool(), Some(expect[k]), "word {} PO {}", w, k);
            }
        }
    }

    /// Random cells: switch count equals the literal count of the
    /// generated expression, and the logic function is monotone (domino
    /// transmission functions are positive).
    #[test]
    fn random_cells_are_monotone(seed in 0u64..1000) {
        let cell = random_domino_cell(seed, 4, 6);
        prop_assert_eq!(cell.switch_count(), 6);
        let f = cell.logic_function();
        // Monotonicity: flipping any input 0->1 never flips output 1->0.
        for w in 0..16u64 {
            for bit in 0..4 {
                if (w >> bit) & 1 == 0 {
                    let up = w | (1 << bit);
                    prop_assert!(
                        !f.eval_word(w) || f.eval_word(up),
                        "non-monotone at {} bit {}", w, bit
                    );
                }
            }
        }
    }

    /// random_sp_expr stays within the requested variable range.
    #[test]
    fn sp_expr_respects_bounds(seed in any::<u64>(), nvars in 1usize..6, lits in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_sp_expr(&mut rng, nvars, lits);
        for v in e.support() {
            prop_assert!(v.index() < nvars);
        }
    }

    /// Cell compilation is stable: compiling the same description twice
    /// yields identical cells.
    #[test]
    fn compilation_is_deterministic(seed in 0u64..1000) {
        let a = random_domino_cell(seed, 3, 5);
        let b = random_domino_cell(seed, 3, 5);
        prop_assert_eq!(a.transmission(), b.transmission());
        prop_assert_eq!(a.technology(), Technology::DominoCmos);
        let _ : &Cell = &a;
    }
}
