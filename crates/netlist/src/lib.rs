#![forbid(unsafe_code)]
//! Gate-level substrate: technology-tagged cells and networks.
//!
//! The paper's PROTEST tool consumes "a circuit description and a
//! functional description of the used cells" (Fig. 8). A cell description
//! looks like (Fig. 9):
//!
//! ```text
//! TECHNOLOGY domino-CMOS;
//! INPUT a,b,c,d,e;
//! OUTPUT u;
//! x1 := a*(b+c);
//! x2 := d*e;
//! u  := x1+x2;
//! ```
//!
//! This crate provides:
//!
//! * [`Technology`] — the five technology-dependent parameters of the
//!   paper's cell description (nMOS pull-down, static CMOS, bipolar,
//!   dynamic nMOS, domino CMOS),
//! * [`CellDescription`] / [`parse_cell`] — the description language,
//! * [`Cell`] — a compiled cell: flattened transmission function plus the
//!   technology-determined logic function of the output,
//! * [`Network`] — combinational networks of cell instances with
//!   single-clock (domino) or two-phase (dynamic nMOS) clocking
//!   discipline checks and packed 64-lane evaluation,
//! * [`compile`] — the compiled evaluation subsystem: per-network
//!   instruction tapes, reusable [`PackedEvaluator`] buffers (up to
//!   `width × 64` patterns per pass) and fault-cone incremental faulty
//!   simulation,
//! * [`generate`] — a seeded circuit corpus (adders, multipliers, trees,
//!   comparators, random cells) from paper scale up to ISCAS-85-class
//!   sizes, standing in for the unspecified 1986 benchmark set,
//! * [`bench_format`] — a parser for the ISCAS `.bench` netlist text
//!   format, so real benchmark circuits can be loaded directly.

pub mod bench_format;
pub mod cell;
pub mod compile;
pub mod generate;
pub mod network;
pub mod parse;
pub mod tech;
pub mod to_switch;

pub use bench_format::{parse_bench, ParseBenchError, C17_BENCH};
pub use cell::{Cell, CellDescription, CompileCellError};
pub use compile::{CompiledNetwork, PackedEvaluator, PreparedFault};
pub use network::{GateRef, NetId, Network, NetworkBuilder, NetworkError, NetworkFault, Phase};
pub use parse::{parse_cell, ParseCellError};
pub use tech::Technology;
pub use to_switch::{domino_to_switch, SwitchRealization, ToSwitchError};
