//! Seeded circuit corpus.
//!
//! The paper evaluates on circuits of its era without naming them; the
//! statistical experiments (PROTEST test lengths, fault coverage curves,
//! A1/A2 charge coverage) need a reproducible corpus. Everything here is
//! deterministic in its parameters and seed.

use crate::cell::Cell;
use crate::network::{NetId, Network, NetworkBuilder, Phase};
use crate::parse::parse_cell;
use crate::tech::Technology;
use dynmos_logic::Bexpr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the domino AND2 cell.
pub fn domino_and2() -> Cell {
    parse_cell(
        "and2",
        "TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := a*b;",
    )
    .expect("static cell text is valid")
}

/// Builds the domino OR2 cell.
pub fn domino_or2() -> Cell {
    parse_cell(
        "or2",
        "TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := a+b;",
    )
    .expect("static cell text is valid")
}

/// Builds the domino 3-input majority cell `maj = a*b + a*c + b*c` — the
/// carry function of a full adder (monotone, hence domino-friendly).
pub fn domino_maj3() -> Cell {
    parse_cell(
        "maj3",
        "TECHNOLOGY domino-CMOS; INPUT a,b,c; OUTPUT z; z := a*b+a*c+b*c;",
    )
    .expect("static cell text is valid")
}

/// Builds a domino wide-AND cell over `n` inputs — the PROTEST showcase:
/// under uniform random patterns its output stuck-at-0 fault has detection
/// probability `2^-n`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 16`.
pub fn domino_wide_and(n: usize) -> Cell {
    assert!((1..=16).contains(&n), "wide AND supports 1..=16 inputs");
    let names: Vec<String> = (0..n).map(|i| format!("i{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let expr = Bexpr::and(
        (0..n)
            .map(|i| Bexpr::var(dynmos_logic::VarId(i as u32)))
            .collect(),
    );
    Cell::from_transmission("wide_and", Technology::DominoCmos, &refs, expr)
}

/// Builds the dynamic nMOS NAND2 cell (`z = /(a*b)`).
pub fn dynamic_nand2() -> Cell {
    parse_cell(
        "nand2",
        "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a*b;",
    )
    .expect("static cell text is valid")
}

/// Builds the dynamic nMOS NOR2 cell (`z = /(a+b)`).
pub fn dynamic_nor2() -> Cell {
    parse_cell(
        "nor2",
        "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a+b;",
    )
    .expect("static cell text is valid")
}

/// Builds the bipolar XOR2 cell (direct function, stuck-at fault model).
pub fn bipolar_xor2() -> Cell {
    parse_cell(
        "xor2",
        "TECHNOLOGY bipolar; INPUT a,b; OUTPUT z; z := a*/b+/a*b;",
    )
    .expect("static cell text is valid")
}

/// An alternating AND/OR tree of domino cells with `2^levels` distinct
/// primary inputs; level 1 is AND.
///
/// # Panics
///
/// Panics if `levels == 0` or the tree would need more than 2^16 inputs.
pub fn and_or_tree(levels: usize) -> Network {
    assert!((1..=16).contains(&levels), "levels must be in 1..=16");
    let mut b = NetworkBuilder::new();
    let and_c = b.add_cell(domino_and2());
    let or_c = b.add_cell(domino_or2());
    let n_leaves = 1usize << levels;
    let mut frontier: Vec<_> = (0..n_leaves).map(|i| b.input(&format!("x{i}"))).collect();
    let mut level = 1;
    while frontier.len() > 1 {
        let cell = if level % 2 == 1 { and_c } else { or_c };
        let mut next = Vec::with_capacity(frontier.len() / 2);
        for (k, pair) in frontier.chunks(2).enumerate() {
            let name = format!("t{level}_{k}");
            let (_, out) = b.gate(cell, &[pair[0], pair[1]], &name, Phase::Phi1);
            next.push(out);
        }
        frontier = next;
        level += 1;
    }
    b.mark_output(frontier[0]);
    b.finish().expect("tree construction is well-formed")
}

/// A domino ripple carry chain: `c[i+1] = maj(a[i], b[i], c[i])` with
/// `c[0]` a primary input; all carries are primary outputs.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn carry_chain(bits: usize) -> Network {
    assert!(bits >= 1, "need at least one bit");
    let mut b = NetworkBuilder::new();
    let maj = b.add_cell(domino_maj3());
    let mut carry = b.input("c0");
    for i in 0..bits {
        let a = b.input(&format!("a{i}"));
        let bb = b.input(&format!("b{i}"));
        let (_, c_next) = b.gate(maj, &[a, bb, carry], &format!("c{}", i + 1), Phase::Phi1);
        b.mark_output(c_next);
        carry = c_next;
    }
    b.finish().expect("carry chain is well-formed")
}

/// A monotone domino magnitude comparator: output `gt = 1` iff `A > B`,
/// taking dual-rail `B` (primary inputs `a0..`, `nb0..` where `nbI` is the
/// externally supplied complement of `bI` — domino logic is inversion-free,
/// so complemented operands enter as separate rails).
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn comparator(bits: usize) -> Network {
    assert!(bits >= 1, "need at least one bit");
    let mut b = NetworkBuilder::new();
    let and_c = b.add_cell(domino_and2());
    let or_c = b.add_cell(domino_or2());
    let a: Vec<_> = (0..bits).map(|i| b.input(&format!("a{i}"))).collect();
    let nb: Vec<_> = (0..bits).map(|i| b.input(&format!("nb{i}"))).collect();
    // gt_i (A > B considering bits i..): gt = (a_i & nb_i) | (eq_i & gt_{i-1})
    // Monotone form without eq: unrolled prefix — gt = OR over i of
    // (a_i & nb_i & AND_{j>i}( (a_j&nb_j) | ... )) is messy; use the
    // textbook iterative form with eq_i = (a_i&nb_i)|(na_i&b_i)… which
    // needs more rails. Keep it monotone and simple:
    // gt_{i+1} = (a_i * nb_i) + gt_i * (a_i + nb_i)
    // — correct for dual-rail inputs: if a_i=1,b_i=0 win; if bits equal
    // (a_i+nb_i covers 11 and 00? a=1,b=1: nb=0, a+nb=1; a=0,b=0: nb=1 ->1;
    // a=0,b=1: nb=0, a+nb=0 kills gt. Exactly "not (a<b at this bit)".
    let mut gt = b.input("gt_in"); // seed (tie-breaker below LSB), usually 0
    for i in 0..bits {
        let (_, win) = b.gate(and_c, &[a[i], nb[i]], &format!("win{i}"), Phase::Phi1);
        let (_, keep) = b.gate(or_c, &[a[i], nb[i]], &format!("keep{i}"), Phase::Phi1);
        let (_, carry) = b.gate(and_c, &[gt, keep], &format!("carry{i}"), Phase::Phi1);
        let (_, gt_next) = b.gate(or_c, &[win, carry], &format!("gt{}", i + 1), Phase::Phi1);
        gt = gt_next;
    }
    b.mark_output(gt);
    b.finish().expect("comparator is well-formed")
}

/// The ISCAS-85 c17 topology in dynamic nMOS NAND2 cells, with a bipartite
/// two-phase assignment (the network is 2-colorable, so Fig. 7's
/// discipline holds — verified by `check_clocking` in tests).
pub fn c17_dynamic_nmos() -> Network {
    let mut b = NetworkBuilder::new();
    let nand = b.add_cell(dynamic_nand2());
    let i1 = b.input("i1");
    let i2 = b.input("i2");
    let i3 = b.input("i3");
    let i4 = b.input("i4");
    let i5 = b.input("i5");
    // Phases from 2-coloring of the gate-arc graph:
    // edges {1,5},{2,3},{2,4},{3,5},{3,6},{4,6} =>
    // n2=Φ1, n3=Φ2, n4=Φ2, n5=Φ1, n1=Φ2, n6=Φ1.
    let (_, n1) = b.gate(nand, &[i1, i3], "n1", Phase::Phi2);
    let (_, n2) = b.gate(nand, &[i3, i4], "n2", Phase::Phi1);
    let (_, n3) = b.gate(nand, &[i2, n2], "n3", Phase::Phi2);
    let (_, n4) = b.gate(nand, &[n2, i5], "n4", Phase::Phi2);
    let (_, n5) = b.gate(nand, &[n1, n3], "n5", Phase::Phi1);
    let (_, n6) = b.gate(nand, &[n3, n4], "n6", Phase::Phi1);
    b.mark_output(n5);
    b.mark_output(n6);
    b.finish().expect("c17 is well-formed")
}

/// A balanced XOR (parity) tree of bipolar cells over `2^levels` inputs.
///
/// # Panics
///
/// Panics if `levels` is 0 or greater than 16.
pub fn parity_tree(levels: usize) -> Network {
    assert!((1..=16).contains(&levels), "levels must be in 1..=16");
    let mut b = NetworkBuilder::new();
    let xor_c = b.add_cell(bipolar_xor2());
    let n_leaves = 1usize << levels;
    let mut frontier: Vec<_> = (0..n_leaves).map(|i| b.input(&format!("x{i}"))).collect();
    let mut level = 1;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len() / 2);
        for (k, pair) in frontier.chunks(2).enumerate() {
            let (_, out) = b.gate(
                xor_c,
                &[pair[0], pair[1]],
                &format!("p{level}_{k}"),
                Phase::Phi1,
            );
            next.push(out);
        }
        frontier = next;
        level += 1;
    }
    b.mark_output(frontier[0]);
    b.finish().expect("parity tree is well-formed")
}

/// A single-gate network wrapping one cell (its inputs become primary
/// inputs) — the unit under test for cell-level experiments.
pub fn single_cell_network(cell: Cell) -> Network {
    let mut b = NetworkBuilder::new();
    let ins: Vec<_> = (0..cell.input_count())
        .map(|i| b.input(&format!("pi{i}")))
        .collect();
    let c = b.add_cell(cell);
    let (_, z) = b.gate(c, &ins, "z", Phase::Phi1);
    b.mark_output(z);
    b.finish().expect("single-cell network is well-formed")
}

/// A random positive series-parallel expression over `nvars` variables
/// with exactly `literals` literal occurrences.
///
/// Every variable index used is `< nvars`; the expression alternates
/// And/Or shapes driven by `rng`.
///
/// # Panics
///
/// Panics if `literals == 0` or `nvars == 0`.
pub fn random_sp_expr(rng: &mut StdRng, nvars: usize, literals: usize) -> Bexpr {
    assert!(literals >= 1 && nvars >= 1);
    if literals == 1 {
        return Bexpr::var(dynmos_logic::VarId(rng.gen_range(0..nvars) as u32));
    }
    let left = rng.gen_range(1..literals);
    let right = literals - left;
    let a = random_sp_expr(rng, nvars, left);
    let b = random_sp_expr(rng, nvars, right);
    if rng.gen_bool(0.5) {
        Bexpr::and(vec![a, b])
    } else {
        Bexpr::or(vec![a, b])
    }
}

/// A seeded random domino cell with `nvars` inputs and `literals` switch
/// transistors — the unit of the fault-class and library benchmarks.
pub fn random_domino_cell(seed: u64, nvars: usize, literals: usize) -> Cell {
    let mut rng = StdRng::seed_from_u64(seed);
    let expr = random_sp_expr(&mut rng, nvars, literals);
    let names: Vec<String> = (0..nvars).map(|i| format!("i{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Cell::from_transmission(
        &format!("rand{seed}_{nvars}x{literals}"),
        Technology::DominoCmos,
        &refs,
        expr,
    )
}

/// A seeded random multi-level domino network: `n_pis` inputs, `n_gates`
/// random 2-4 input cells wired to random earlier nets; the last gate and
/// any undriven-by-consumers nets become primary outputs.
pub fn random_domino_network(seed: u64, n_pis: usize, n_gates: usize) -> Network {
    assert!(n_pis >= 2 && n_gates >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();
    let mut nets: Vec<_> = (0..n_pis).map(|i| b.input(&format!("x{i}"))).collect();
    let mut consumed = vec![false; nets.len()];
    for g in 0..n_gates {
        let arity = rng.gen_range(2..=3.min(nets.len()));
        let lits = rng.gen_range(arity..=arity + 2);
        let cell = {
            let expr = random_sp_expr(&mut rng, arity, lits);
            let names: Vec<String> = (0..arity).map(|i| format!("i{i}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            Cell::from_transmission(&format!("rc{g}"), Technology::DominoCmos, &refs, expr)
        };
        let c = b.add_cell(cell);
        // Choose distinct input nets.
        let mut chosen = Vec::with_capacity(arity);
        while chosen.len() < arity {
            let pick = rng.gen_range(0..nets.len());
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        let input_nets: Vec<_> = chosen.iter().map(|&i| nets[i]).collect();
        for &i in &chosen {
            consumed[i] = true;
        }
        let (_, out) = b.gate(c, &input_nets, &format!("g{g}"), Phase::Phi1);
        nets.push(out);
        consumed.push(false);
    }
    // Outputs: all nets no one consumed (at least the last gate's output).
    for (i, &net) in nets.iter().enumerate() {
        if !consumed[i] && i >= n_pis {
            b.mark_output(net);
        }
    }
    b.finish().expect("random network is well-formed")
}

/// Assigns two-phase clocks to a gate list by bipartite coloring of the
/// gate-to-gate arcs; returns `None` if the underlying graph has an odd
/// cycle (no legal two-phase assignment exists).
pub fn bipartite_phases(net: &Network) -> Option<Vec<Phase>> {
    let n = net.gates().len();
    let mut color: Vec<Option<Phase>> = vec![None; n];
    // Undirected adjacency over gate-to-gate arcs.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gi, inst) in net.gates().iter().enumerate() {
        for &input in &inst.inputs {
            if let Some(d) = net.driver(input) {
                adj[gi].push(d.index());
                adj[d.index()].push(gi);
            }
        }
    }
    for start in 0..n {
        if color[start].is_some() {
            continue;
        }
        color[start] = Some(Phase::Phi1);
        let mut queue = vec![start];
        while let Some(g) = queue.pop() {
            let c = color[g].expect("colored before push");
            for &nb in &adj[g] {
                match color[nb] {
                    None => {
                        color[nb] = Some(c.other());
                        queue.push(nb);
                    }
                    Some(existing) if existing == c => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(color.into_iter().map(|c| c.expect("all colored")).collect())
}

/// Builds the bipolar AND2 cell (direct function, stuck-at model).
pub fn bipolar_and2() -> Cell {
    parse_cell("and2", "TECHNOLOGY bipolar; INPUT a,b; OUTPUT z; z := a*b;")
        .expect("static cell text is valid")
}

/// Builds the bipolar OR2 cell (direct function, stuck-at model).
pub fn bipolar_or2() -> Cell {
    parse_cell("or2", "TECHNOLOGY bipolar; INPUT a,b; OUTPUT z; z := a+b;")
        .expect("static cell text is valid")
}

/// A ripple-carry adder over two `bits`-wide operands plus a carry-in,
/// in bipolar XOR/AND/OR cells — 5 gates per bit, so `bits = 80` is an
/// ISCAS-85-class (c880-scale) network of 400 gates whose per-fault
/// fanout cones are small relative to the network.
///
/// Primary inputs in declaration order: `cin`, then `a0, b0, a1, b1, …`;
/// primary outputs: `s0 … s{bits-1}`, then `cout`.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_adder(bits: usize) -> Network {
    assert!(bits >= 1, "need at least one bit");
    let mut b = NetworkBuilder::new();
    let xor_c = b.add_cell(bipolar_xor2());
    let and_c = b.add_cell(bipolar_and2());
    let or_c = b.add_cell(bipolar_or2());
    let mut carry = b.input("cin");
    let mut sums = Vec::with_capacity(bits);
    for i in 0..bits {
        let a = b.input(&format!("a{i}"));
        let bb = b.input(&format!("b{i}"));
        let (_, axb) = b.gate(xor_c, &[a, bb], &format!("axb{i}"), Phase::Phi1);
        let (_, sum) = b.gate(xor_c, &[axb, carry], &format!("s{i}"), Phase::Phi1);
        let (_, gen) = b.gate(and_c, &[a, bb], &format!("gen{i}"), Phase::Phi1);
        let (_, prop) = b.gate(and_c, &[axb, carry], &format!("prop{i}"), Phase::Phi1);
        let (_, cout) = b.gate(or_c, &[gen, prop], &format!("c{}", i + 1), Phase::Phi1);
        sums.push(sum);
        carry = cout;
    }
    for s in sums {
        b.mark_output(s);
    }
    b.mark_output(carry);
    b.finish().expect("ripple adder is well-formed")
}

/// The [`ripple_adder`] netlist as ISCAS `.bench` text — a generated
/// fixture for [`crate::bench_format::parse_bench`] at arbitrary scale.
pub fn ripple_adder_bench_text(bits: usize) -> String {
    assert!(bits >= 1, "need at least one bit");
    let mut out = String::new();
    out.push_str(&format!("# {bits}-bit ripple-carry adder\n"));
    out.push_str("INPUT(cin)\n");
    for i in 0..bits {
        out.push_str(&format!("INPUT(a{i})\nINPUT(b{i})\n"));
    }
    for i in 0..bits {
        out.push_str(&format!("OUTPUT(s{i})\n"));
    }
    out.push_str(&format!("OUTPUT(c{bits})\n"));
    let mut carry = "cin".to_owned();
    for i in 0..bits {
        out.push_str(&format!("axb{i} = XOR(a{i}, b{i})\n"));
        out.push_str(&format!("s{i} = XOR(axb{i}, {carry})\n"));
        out.push_str(&format!("gen{i} = AND(a{i}, b{i})\n"));
        out.push_str(&format!("prop{i} = AND(axb{i}, {carry})\n"));
        out.push_str(&format!("c{} = OR(gen{i}, prop{i})\n", i + 1));
        carry = format!("c{}", i + 1);
    }
    out
}

/// An unsigned `bits × bits` array multiplier (the c6288 topology at
/// parameterized width): `bits²` partial-product AND gates reduced by
/// rows of ripple-carry adders. `bits = 10` is a 520-gate network.
///
/// Primary inputs in declaration order: `a0…a{bits-1}`, `b0…b{bits-1}`;
/// primary outputs: product bits `p0 … p{2·bits-1}`.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn array_multiplier(bits: usize) -> Network {
    assert!(bits >= 2, "need at least two bits");
    let mut b = NetworkBuilder::new();
    let xor_c = b.add_cell(bipolar_xor2());
    let and_c = b.add_cell(bipolar_and2());
    let or_c = b.add_cell(bipolar_or2());
    let a: Vec<_> = (0..bits).map(|i| b.input(&format!("a{i}"))).collect();
    let bi: Vec<_> = (0..bits).map(|i| b.input(&format!("b{i}"))).collect();
    // Partial products.
    let pp: Vec<Vec<NetId>> = (0..bits)
        .map(|i| {
            (0..bits)
                .map(|j| {
                    let (_, n) = b.gate(and_c, &[a[j], bi[i]], &format!("pp{i}_{j}"), Phase::Phi1);
                    n
                })
                .collect()
        })
        .collect();
    // Row-wise reduction: `acc` holds the running sum of rows 0..=i,
    // aligned at bit i; each row adds the next partial-product vector
    // with a chain of half/full adders.
    let half = |b: &mut NetworkBuilder, x: NetId, y: NetId, tag: &str| -> (NetId, NetId) {
        let (_, s) = b.gate(xor_c, &[x, y], &format!("hs{tag}"), Phase::Phi1);
        let (_, c) = b.gate(and_c, &[x, y], &format!("hc{tag}"), Phase::Phi1);
        (s, c)
    };
    let full =
        |b: &mut NetworkBuilder, x: NetId, y: NetId, z: NetId, tag: &str| -> (NetId, NetId) {
            let (_, xy) = b.gate(xor_c, &[x, y], &format!("fx{tag}"), Phase::Phi1);
            let (_, s) = b.gate(xor_c, &[xy, z], &format!("fs{tag}"), Phase::Phi1);
            let (_, g) = b.gate(and_c, &[x, y], &format!("fg{tag}"), Phase::Phi1);
            let (_, p) = b.gate(and_c, &[xy, z], &format!("fp{tag}"), Phase::Phi1);
            let (_, c) = b.gate(or_c, &[g, p], &format!("fc{tag}"), Phase::Phi1);
            (s, c)
        };
    let mut product: Vec<NetId> = Vec::with_capacity(2 * bits);
    // acc[j] = bit (i + j) of the sum of rows 0..=i.
    let mut acc: Vec<NetId> = pp[0].clone();
    product.push(acc[0]);
    for (i, row) in pp.iter().enumerate().skip(1) {
        let mut next: Vec<NetId> = Vec::with_capacity(bits);
        let mut carry: Option<NetId> = None;
        for (j, &rbit) in row.iter().enumerate() {
            // Add row bit j to acc[j + 1] (the shifted previous sum); the
            // top previous bit beyond acc is zero.
            let prev = acc.get(j + 1).copied();
            let (s, c) = match (prev, carry) {
                (Some(pv), Some(cv)) => full(&mut b, rbit, pv, cv, &format!("{i}_{j}")),
                (Some(pv), None) => half(&mut b, rbit, pv, &format!("{i}_{j}")),
                (None, Some(cv)) => half(&mut b, rbit, cv, &format!("{i}_{j}")),
                (None, None) => {
                    next.push(rbit);
                    continue;
                }
            };
            next.push(s);
            carry = Some(c);
        }
        if let Some(cv) = carry {
            next.push(cv);
        }
        product.push(next[0]);
        acc = next;
    }
    for &bit in acc.iter().skip(1) {
        product.push(bit);
    }
    // Row 0 contributes `bits` bits and every later row one sum bit plus
    // a final carry: the reduction always yields exactly 2·bits bits.
    assert_eq!(product.len(), 2 * bits, "array reduction width");
    for p in &product {
        b.mark_output(*p);
    }
    b.finish().expect("array multiplier is well-formed")
}

/// The reference gate of the paper's Fig. 9: `u = a*(b+c) + d*e`, domino
/// CMOS.
pub fn fig9_cell() -> Cell {
    parse_cell(
        "fig9",
        "TECHNOLOGY domino-CMOS;
         INPUT a,b,c,d,e;
         OUTPUT u;
         x1 := a*(b+c);
         x2 := d*e;
         u := x1+x2;",
    )
    .expect("the paper's own example parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_or_tree_shape_and_function() {
        let net = and_or_tree(2); // 4 leaves: (x0&x1) | (x2&x3)
        assert_eq!(net.primary_inputs().len(), 4);
        assert_eq!(net.gates().len(), 3);
        assert_eq!(net.eval(&[true, true, false, false]), vec![true]);
        assert_eq!(net.eval(&[true, false, false, true]), vec![false]);
        assert_eq!(net.eval(&[false, false, true, true]), vec![true]);
    }

    #[test]
    fn carry_chain_is_majority_recurrence() {
        let net = carry_chain(3);
        // inputs: c0, a0, b0, a1, b1, a2, b2 (in declaration order)
        // All ones: all carries 1.
        let outs = net.eval(&[true, true, true, true, true, true, true]);
        assert_eq!(outs, vec![true, true, true]);
        // c0=0, a0=1,b0=1 -> c1=1; a1=0,b1=0 -> c2=0; a2=1,b2=0 -> c3=0.
        let outs = net.eval(&[false, true, true, false, false, true, false]);
        assert_eq!(outs, vec![true, false, false]);
    }

    #[test]
    fn comparator_computes_greater_than() {
        let bits = 3;
        let net = comparator(bits);
        // PIs in declaration order: a0..a2, nb0..nb2, gt_in.
        for a in 0..8u32 {
            for bv in 0..8u32 {
                let mut pi = Vec::new();
                for i in 0..bits {
                    pi.push((a >> i) & 1 == 1);
                }
                for i in 0..bits {
                    pi.push((bv >> i) & 1 == 0); // nb = !b
                }
                pi.push(false); // gt_in
                let out = net.eval(&pi)[0];
                assert_eq!(out, a > bv, "a={a} b={bv}");
            }
        }
    }

    #[test]
    fn c17_matches_nand_reference() {
        let net = c17_dynamic_nmos();
        assert!(net.check_clocking().is_ok());
        let nand = |x: bool, y: bool| !(x && y);
        for w in 0..32u32 {
            let i: Vec<bool> = (0..5).map(|k| (w >> k) & 1 == 1).collect();
            let n1 = nand(i[0], i[2]);
            let n2 = nand(i[2], i[3]);
            let n3 = nand(i[1], n2);
            let n4 = nand(n2, i[4]);
            let n5 = nand(n1, n3);
            let n6 = nand(n3, n4);
            assert_eq!(net.eval(&i), vec![n5, n6], "w={w:05b}");
        }
    }

    #[test]
    fn parity_tree_computes_parity() {
        let net = parity_tree(3);
        for w in 0..256u32 {
            let bits: Vec<bool> = (0..8).map(|k| (w >> k) & 1 == 1).collect();
            let parity = bits.iter().filter(|&&b| b).count() % 2 == 1;
            assert_eq!(net.eval(&bits), vec![parity], "w={w:08b}");
        }
    }

    #[test]
    fn wide_and_cell() {
        let cell = domino_wide_and(6);
        assert_eq!(cell.switch_count(), 6);
        let net = single_cell_network(cell);
        assert_eq!(net.eval(&[true; 6]), vec![true]);
        assert_eq!(
            net.eval(&[true, true, false, true, true, true]),
            vec![false]
        );
    }

    #[test]
    fn random_sp_expr_has_requested_literals() {
        let mut rng = StdRng::seed_from_u64(7);
        for lits in 1..20 {
            let e = random_sp_expr(&mut rng, 5, lits);
            fn count(e: &Bexpr) -> usize {
                match e {
                    Bexpr::Var(_) => 1,
                    Bexpr::And(ts) | Bexpr::Or(ts) => ts.iter().map(count).sum(),
                    _ => 0,
                }
            }
            assert_eq!(count(&e), lits);
        }
    }

    #[test]
    fn random_cells_are_seed_deterministic() {
        let a = random_domino_cell(42, 4, 7);
        let b = random_domino_cell(42, 4, 7);
        assert_eq!(a.transmission(), b.transmission());
        let c = random_domino_cell(43, 4, 7);
        // Overwhelmingly likely to differ; don't hard-require it, just
        // check it compiles and has the right size.
        assert_eq!(c.switch_count(), 7);
    }

    #[test]
    fn random_network_is_valid_and_deterministic() {
        let n1 = random_domino_network(9, 4, 10);
        let n2 = random_domino_network(9, 4, 10);
        assert_eq!(n1.gates().len(), 10);
        assert!(!n1.primary_outputs().is_empty());
        // Determinism: identical evaluation on a probe vector.
        let probe: Vec<bool> = (0..4).map(|i| i % 2 == 0).collect();
        assert_eq!(n1.eval(&probe), n2.eval(&probe));
    }

    #[test]
    fn bipartite_phases_two_colorable() {
        let net = c17_dynamic_nmos();
        let phases = bipartite_phases(&net).expect("c17 is 2-colorable");
        for (gi, inst) in net.gates().iter().enumerate() {
            for &input in &inst.inputs {
                if let Some(d) = net.driver(input) {
                    assert_ne!(phases[gi], phases[d.index()], "arc {d}->g{gi}");
                }
            }
        }
    }

    /// Packs an integer into the adder's PI order (cin, a0, b0, a1, b1…).
    fn adder_inputs(bits: usize, a: u64, b: u64, cin: bool) -> Vec<bool> {
        let mut pi = vec![cin];
        for i in 0..bits {
            pi.push((a >> i) & 1 == 1);
            pi.push((b >> i) & 1 == 1);
        }
        pi
    }

    fn bits_to_u64(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn ripple_adder_adds() {
        let bits = 6;
        let net = ripple_adder(bits);
        assert_eq!(net.gates().len(), 5 * bits);
        assert_eq!(net.primary_outputs().len(), bits + 1);
        for (a, b, cin) in [
            (0u64, 0u64, false),
            (63, 1, false),
            (21, 42, true),
            (63, 63, true),
        ] {
            let out = net.eval(&adder_inputs(bits, a, b, cin));
            let sum = bits_to_u64(&out);
            assert_eq!(sum, a + b + u64::from(cin), "a={a} b={b} cin={cin}");
        }
        // ISCAS-85-class scale: 80 bits = 400 gates.
        assert_eq!(ripple_adder(80).gates().len(), 400);
    }

    #[test]
    fn ripple_adder_bench_text_round_trips() {
        let bits = 8;
        let direct = ripple_adder(bits);
        let parsed = crate::bench_format::parse_bench(&ripple_adder_bench_text(bits))
            .expect("generated bench text parses");
        assert_eq!(parsed.gates().len(), direct.gates().len());
        for (a, b, cin) in [
            (0u64, 0, false),
            (255, 1, false),
            (170, 85, true),
            (200, 100, false),
        ] {
            let pi = adder_inputs(bits, a, b, cin);
            assert_eq!(parsed.eval(&pi), direct.eval(&pi), "a={a} b={b}");
        }
    }

    #[test]
    fn array_multiplier_multiplies() {
        for bits in [2usize, 3, 4, 5] {
            let net = array_multiplier(bits);
            assert_eq!(net.primary_outputs().len(), 2 * bits);
            for (a, b) in [
                (0u64, 0u64),
                (1, 1),
                (3, 3),
                ((1 << bits) - 1, (1 << bits) - 1),
                (2, 3),
            ] {
                let a = a & ((1 << bits) - 1);
                let b = b & ((1 << bits) - 1);
                let mut pi = Vec::new();
                for i in 0..bits {
                    pi.push((a >> i) & 1 == 1);
                }
                for i in 0..bits {
                    pi.push((b >> i) & 1 == 1);
                }
                let out = net.eval(&pi);
                assert_eq!(bits_to_u64(&out), a * b, "bits={bits} a={a} b={b}");
            }
        }
    }

    #[test]
    fn array_multiplier_reaches_iscas_scale() {
        // The c6288 topology: at 10 bits the network passes 500 gates
        // (520), and a typical fault cone is small relative to the whole.
        let net = array_multiplier(10);
        assert!(net.gates().len() >= 500, "{} gates", net.gates().len());
        let c = net.compiled();
        let mut cones: Vec<usize> = (0..net.gates().len())
            .map(|i| c.fanout_cone(crate::network::GateRef(i as u32)).len())
            .collect();
        cones.sort_unstable();
        // The median fault replays ~a quarter of the network, the best
        // quartile under a tenth — cone-incremental simulation pays here.
        assert!(cones[cones.len() / 2] < net.gates().len() / 3);
        assert!(cones[cones.len() / 4] < net.gates().len() / 8);
    }

    #[test]
    fn fig9_cell_parses() {
        let cell = fig9_cell();
        assert_eq!(cell.switch_count(), 5);
        assert_eq!(cell.technology(), Technology::DominoCmos);
    }
}
