//! The five cell technologies of the paper's functional library.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Cell implementation technology — the paper's "technology dependent
/// parameters" (section 5):
///
/// > nMOS pull-down network, static CMOS, bipolar, dynamic nMOS,
/// > domino CMOS
///
/// The technology determines two things downstream:
///
/// 1. how the cell's *logic function* relates to its switching-network
///    *transmission function* (`z = T` for domino, `z = /T` for the nMOS
///    families, direct function for bipolar), and
/// 2. which fault model the library generator applies (the paper's dynamic
///    fault classes for dynamic nMOS / domino CMOS, plain stuck-at for
///    bipolar and static CMOS — "for bipolar and static CMOS we use the
///    common stuck-at fault model").
///
/// # Example
///
/// ```
/// use dynmos_netlist::Technology;
/// let t: Technology = "domino-CMOS".parse()?;
/// assert_eq!(t, Technology::DominoCmos);
/// assert!(t.output_is_inverted() == false);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// Conventional static nMOS with a pull-down network and depletion
    /// load: `z = /T`.
    NmosPullDown,
    /// Static complementary CMOS: `z = /T` (pull-down network named).
    StaticCmos,
    /// Bipolar cell: the description gives the logic function directly.
    Bipolar,
    /// Dynamic (two-phase) nMOS, Fig. 6: `z = /T`.
    DynamicNmos,
    /// Domino CMOS, Fig. 4: `z = T`.
    DominoCmos,
}

impl Technology {
    /// All five technologies, in the paper's listing order.
    pub const ALL: [Technology; 5] = [
        Technology::NmosPullDown,
        Technology::StaticCmos,
        Technology::Bipolar,
        Technology::DynamicNmos,
        Technology::DominoCmos,
    ];

    /// `true` if the cell output is the *inverse* of the transmission
    /// function (`z = /T`); `false` if it is the transmission function
    /// itself or a direct function.
    pub fn output_is_inverted(self) -> bool {
        match self {
            Technology::NmosPullDown | Technology::StaticCmos | Technology::DynamicNmos => true,
            Technology::Bipolar | Technology::DominoCmos => false,
        }
    }

    /// `true` for the technologies the paper's *dynamic* fault model
    /// applies to; `false` where the common stuck-at model is used.
    pub fn uses_dynamic_fault_model(self) -> bool {
        matches!(self, Technology::DynamicNmos | Technology::DominoCmos)
    }

    /// `true` if a stuck-open transistor can create sequential behaviour —
    /// the static technologies of the paper's introduction.
    pub fn stuck_open_is_sequential(self) -> bool {
        matches!(self, Technology::StaticCmos | Technology::NmosPullDown)
    }

    /// The keyword used in cell descriptions.
    pub fn keyword(self) -> &'static str {
        match self {
            Technology::NmosPullDown => "nMOS-pull-down",
            Technology::StaticCmos => "static-CMOS",
            Technology::Bipolar => "bipolar",
            Technology::DynamicNmos => "dynamic-nMOS",
            Technology::DominoCmos => "domino-CMOS",
        }
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Error from parsing an unknown technology keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTechnologyError {
    found: String,
}

impl fmt::Display for ParseTechnologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown technology '{}' (expected one of: nMOS-pull-down, static-CMOS, bipolar, dynamic-nMOS, domino-CMOS)",
            self.found
        )
    }
}

impl Error for ParseTechnologyError {}

impl FromStr for Technology {
    type Err = ParseTechnologyError;

    /// Parses a technology keyword, case-insensitively and accepting both
    /// `-` and `_` separators.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s
            .chars()
            .map(|c| match c {
                '_' | ' ' => '-',
                c => c.to_ascii_lowercase(),
            })
            .collect();
        match norm.as_str() {
            "nmos-pull-down" | "nmos-pulldown" | "pull-down-nmos" => Ok(Technology::NmosPullDown),
            "static-cmos" | "cmos-static" => Ok(Technology::StaticCmos),
            "bipolar" => Ok(Technology::Bipolar),
            "dynamic-nmos" | "nmos-dynamic" => Ok(Technology::DynamicNmos),
            "domino-cmos" | "cmos-domino" | "domino" => Ok(Technology::DominoCmos),
            _ => Err(ParseTechnologyError { found: s.into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip() {
        for t in Technology::ALL {
            let parsed: Technology = t.keyword().parse().unwrap();
            assert_eq!(parsed, t);
        }
    }

    #[test]
    fn parse_is_case_and_separator_insensitive() {
        assert_eq!(
            "DOMINO_CMOS".parse::<Technology>().unwrap(),
            Technology::DominoCmos
        );
        assert_eq!(
            "Dynamic-nMOS".parse::<Technology>().unwrap(),
            Technology::DynamicNmos
        );
    }

    #[test]
    fn unknown_keyword_errors() {
        let e = "ecl".parse::<Technology>().unwrap_err();
        assert!(e.to_string().contains("unknown technology 'ecl'"));
    }

    #[test]
    fn inversion_polarity_per_paper() {
        // "the logical function of a domino gate is exactly the
        //  transmission function" / "the logical function of the [dynamic
        //  nMOS] gate is the inverse of the transmission function"
        assert!(!Technology::DominoCmos.output_is_inverted());
        assert!(Technology::DynamicNmos.output_is_inverted());
        assert!(Technology::NmosPullDown.output_is_inverted());
        assert!(Technology::StaticCmos.output_is_inverted());
        assert!(!Technology::Bipolar.output_is_inverted());
    }

    #[test]
    fn fault_model_selection_per_paper() {
        assert!(Technology::DominoCmos.uses_dynamic_fault_model());
        assert!(Technology::DynamicNmos.uses_dynamic_fault_model());
        assert!(!Technology::StaticCmos.uses_dynamic_fault_model());
        assert!(!Technology::Bipolar.uses_dynamic_fault_model());
    }

    #[test]
    fn sequential_hazard_only_for_static() {
        assert!(Technology::StaticCmos.stuck_open_is_sequential());
        assert!(!Technology::DominoCmos.stuck_open_is_sequential());
        assert!(!Technology::DynamicNmos.stuck_open_is_sequential());
    }
}
