//! Cell descriptions and compiled cells.

use crate::tech::Technology;
use dynmos_logic::{Bexpr, VarId, VarTable};
use std::error::Error;
use std::fmt;

/// A raw cell description, mirroring the paper's five description parts:
/// technology, input list, output name, switching-network assignments and
/// the output assignment.
///
/// Compile into a [`Cell`] with [`CellDescription::compile`], or go
/// straight from text with [`crate::parse_cell`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellDescription {
    /// Cell name (free-form; used in libraries and networks).
    pub name: String,
    /// Technology-dependent parameter.
    pub technology: Technology,
    /// Input names in declaration order.
    pub inputs: Vec<String>,
    /// Output name.
    pub output: String,
    /// Assignments `target := expr` in source order. The last targets the
    /// output; earlier ones define internal subnetworks (`x1`, `x2`, …).
    pub assignments: Vec<(String, String)>,
}

/// Error compiling a [`CellDescription`] into a [`Cell`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileCellError {
    /// An assignment expression failed to parse.
    Parse(String, dynmos_logic::ParseExprError),
    /// An expression referenced a name that is neither an input nor a
    /// previously assigned internal signal.
    UndefinedName(String),
    /// The output was never assigned.
    OutputUnassigned(String),
    /// An assignment target duplicates an input or an earlier target.
    DuplicateTarget(String),
    /// The cell has no inputs.
    NoInputs,
}

impl fmt::Display for CompileCellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileCellError::Parse(t, e) => write!(f, "in assignment to '{t}': {e}"),
            CompileCellError::UndefinedName(n) => write!(f, "undefined name '{n}'"),
            CompileCellError::OutputUnassigned(o) => write!(f, "output '{o}' never assigned"),
            CompileCellError::DuplicateTarget(t) => write!(f, "duplicate assignment target '{t}'"),
            CompileCellError::NoInputs => write!(f, "cell has no inputs"),
        }
    }
}

impl Error for CompileCellError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileCellError::Parse(_, e) => Some(e),
            _ => None,
        }
    }
}

/// A compiled cell: the flattened switching-network transmission function
/// over dense input variables `0..n`, plus technology metadata.
///
/// # Example
///
/// ```
/// use dynmos_netlist::{parse_cell, Technology};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cell = parse_cell(
///     "fig9",
///     "TECHNOLOGY domino-CMOS;
///      INPUT a,b,c,d,e;
///      OUTPUT u;
///      x1 := a*(b+c);
///      x2 := d*e;
///      u := x1+x2;",
/// )?;
/// assert_eq!(cell.technology(), Technology::DominoCmos);
/// assert_eq!(cell.input_count(), 5);
/// // Domino: logic function == transmission function.
/// assert!(cell.logic_function().eval_word(0b00011)); // a=1,b=1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    name: String,
    technology: Technology,
    input_names: Vec<String>,
    output_name: String,
    transmission: Bexpr,
}

impl CellDescription {
    /// Compiles the description: parses every assignment, substitutes
    /// internal signals in source order, and flattens to a single
    /// transmission function over the declared inputs.
    ///
    /// # Errors
    ///
    /// Returns [`CompileCellError`] on parse failures, undefined or
    /// duplicate names, a missing output assignment, or an empty input
    /// list.
    pub fn compile(&self) -> Result<Cell, CompileCellError> {
        if self.inputs.is_empty() {
            return Err(CompileCellError::NoInputs);
        }
        let mut vars = VarTable::new();
        for input in &self.inputs {
            let before = vars.len();
            vars.intern(input);
            if vars.len() == before {
                return Err(CompileCellError::DuplicateTarget(input.clone()));
            }
        }
        let n_inputs = vars.len();

        // Map from internal-signal VarId to its (already flattened) expr.
        let mut defined: Vec<Option<Bexpr>> = vec![None; n_inputs];
        let mut output_expr: Option<Bexpr> = None;

        for (target, src) in &self.assignments {
            let expr = dynmos_logic::parse_expr(src, &mut vars)
                .map_err(|e| CompileCellError::Parse(target.clone(), e))?;
            defined.resize(vars.len(), None);
            // Flatten: replace every defined internal signal by its expr.
            let flat = flatten(&expr, &defined, n_inputs, &vars)?;
            if *target == self.output {
                if output_expr.is_some() {
                    return Err(CompileCellError::DuplicateTarget(target.clone()));
                }
                output_expr = Some(flat);
            } else {
                let id = vars.intern(target);
                defined.resize(vars.len(), None);
                if id.index() < n_inputs {
                    return Err(CompileCellError::DuplicateTarget(target.clone()));
                }
                if defined[id.index()].is_some() {
                    return Err(CompileCellError::DuplicateTarget(target.clone()));
                }
                defined[id.index()] = Some(flat);
            }
        }

        let transmission =
            output_expr.ok_or_else(|| CompileCellError::OutputUnassigned(self.output.clone()))?;
        Ok(Cell {
            name: self.name.clone(),
            technology: self.technology,
            input_names: self.inputs.clone(),
            output_name: self.output.clone(),
            transmission,
        })
    }
}

/// Replaces defined internal signals by their expressions; errors on
/// references to undefined non-input names.
fn flatten(
    expr: &Bexpr,
    defined: &[Option<Bexpr>],
    n_inputs: usize,
    vars: &VarTable,
) -> Result<Bexpr, CompileCellError> {
    Ok(match expr {
        Bexpr::Const(b) => Bexpr::Const(*b),
        Bexpr::Var(v) => {
            if v.index() < n_inputs {
                Bexpr::Var(*v)
            } else {
                match defined.get(v.index()).and_then(Option::as_ref) {
                    Some(e) => e.clone(),
                    None => return Err(CompileCellError::UndefinedName(vars.name(*v).to_owned())),
                }
            }
        }
        Bexpr::Not(e) => Bexpr::not(flatten(e, defined, n_inputs, vars)?),
        Bexpr::And(ts) => Bexpr::and(
            ts.iter()
                .map(|t| flatten(t, defined, n_inputs, vars))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Bexpr::Or(ts) => Bexpr::or(
            ts.iter()
                .map(|t| flatten(t, defined, n_inputs, vars))
                .collect::<Result<Vec<_>, _>>()?,
        ),
    })
}

impl Cell {
    /// Constructs a cell directly from a transmission function over
    /// `input_names.len()` dense variables.
    ///
    /// # Panics
    ///
    /// Panics if `transmission` references a variable outside the inputs
    /// or `input_names` is empty.
    pub fn from_transmission(
        name: &str,
        technology: Technology,
        input_names: &[&str],
        transmission: Bexpr,
    ) -> Self {
        assert!(!input_names.is_empty(), "cell must have inputs");
        if let Some(max) = transmission.support().last() {
            assert!(
                max.index() < input_names.len(),
                "transmission references variable {max} beyond inputs"
            );
        }
        Self {
            name: name.to_owned(),
            technology,
            input_names: input_names.iter().map(|s| s.to_string()).collect(),
            output_name: "z".to_owned(),
            transmission,
        }
    }

    /// Cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Implementation technology.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// Number of inputs.
    pub fn input_count(&self) -> usize {
        self.input_names.len()
    }

    /// Input names in order (variable `i` is `input_names()[i]`).
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Output name.
    pub fn output_name(&self) -> &str {
        &self.output_name
    }

    /// The flattened transmission function `T(i0,…,in-1)` of the switching
    /// network.
    pub fn transmission(&self) -> &Bexpr {
        &self.transmission
    }

    /// The *logic function* of the output, per technology: `T` for domino
    /// CMOS and bipolar, `/T` for the nMOS families and static CMOS.
    pub fn logic_function(&self) -> Bexpr {
        if self.technology.output_is_inverted() {
            Bexpr::not(self.transmission.clone())
        } else {
            self.transmission.clone()
        }
    }

    /// A fresh [`VarTable`] with this cell's input names interned in order
    /// — for pretty-printing expressions over the cell's inputs.
    pub fn var_table(&self) -> VarTable {
        let mut t = VarTable::new();
        for n in &self.input_names {
            t.intern(n);
        }
        t
    }

    /// Number of literal occurrences in the transmission function — the
    /// number of switch transistors `n` in the paper's `SN` (each literal
    /// is one transistor).
    pub fn switch_count(&self) -> usize {
        count_literals(&self.transmission)
    }

    /// The literal sites of the transmission function in left-to-right
    /// order: `(site index, variable)` — the addresses of the paper's
    /// `nMOS-i` faults.
    pub fn literal_sites(&self) -> Vec<(usize, VarId)> {
        let mut out = Vec::new();
        collect_literals(&self.transmission, &mut out);
        out.into_iter().enumerate().collect()
    }
}

fn count_literals(e: &Bexpr) -> usize {
    match e {
        Bexpr::Const(_) => 0,
        Bexpr::Var(_) => 1,
        Bexpr::Not(inner) => count_literals(inner),
        Bexpr::And(ts) | Bexpr::Or(ts) => ts.iter().map(count_literals).sum(),
    }
}

fn collect_literals(e: &Bexpr, out: &mut Vec<VarId>) {
    match e {
        Bexpr::Const(_) => {}
        Bexpr::Var(v) => out.push(*v),
        Bexpr::Not(inner) => collect_literals(inner, out),
        Bexpr::And(ts) | Bexpr::Or(ts) => {
            for t in ts {
                collect_literals(t, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig9_description() -> CellDescription {
        CellDescription {
            name: "fig9".into(),
            technology: Technology::DominoCmos,
            inputs: vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
            output: "u".into(),
            assignments: vec![
                ("x1".into(), "a*(b+c)".into()),
                ("x2".into(), "d*e".into()),
                ("u".into(), "x1+x2".into()),
            ],
        }
    }

    #[test]
    fn fig9_compiles_to_expected_transmission() {
        let cell = fig9_description().compile().unwrap();
        let mut vars = VarTable::new();
        for n in ["a", "b", "c", "d", "e"] {
            vars.intern(n);
        }
        let direct = dynmos_logic::parse_expr("a*(b+c)+d*e", &mut vars).unwrap();
        for w in 0..32u64 {
            assert_eq!(cell.transmission().eval_word(w), direct.eval_word(w));
        }
        assert_eq!(cell.switch_count(), 5);
        assert_eq!(cell.input_count(), 5);
    }

    #[test]
    fn domino_logic_function_is_transmission() {
        let cell = fig9_description().compile().unwrap();
        let f = cell.logic_function();
        for w in 0..32u64 {
            assert_eq!(f.eval_word(w), cell.transmission().eval_word(w));
        }
    }

    #[test]
    fn dynamic_nmos_logic_function_is_inverse() {
        let mut d = fig9_description();
        d.technology = Technology::DynamicNmos;
        let cell = d.compile().unwrap();
        let f = cell.logic_function();
        for w in 0..32u64 {
            assert_eq!(f.eval_word(w), !cell.transmission().eval_word(w));
        }
    }

    #[test]
    fn out_of_order_internal_reference_errors() {
        let mut d = fig9_description();
        d.assignments = vec![
            ("u".into(), "x1+x2".into()),
            ("x1".into(), "a*(b+c)".into()),
            ("x2".into(), "d*e".into()),
        ];
        assert!(matches!(
            d.compile().unwrap_err(),
            CompileCellError::UndefinedName(_)
        ));
    }

    #[test]
    fn missing_output_assignment_errors() {
        let mut d = fig9_description();
        d.assignments.pop();
        assert!(matches!(
            d.compile().unwrap_err(),
            CompileCellError::OutputUnassigned(_)
        ));
    }

    #[test]
    fn duplicate_target_errors() {
        let mut d = fig9_description();
        d.assignments.insert(1, ("x1".into(), "d".into()));
        assert!(matches!(
            d.compile().unwrap_err(),
            CompileCellError::DuplicateTarget(_)
        ));
    }

    #[test]
    fn duplicate_input_errors() {
        let mut d = fig9_description();
        d.inputs.push("a".into());
        assert!(matches!(
            d.compile().unwrap_err(),
            CompileCellError::DuplicateTarget(_)
        ));
    }

    #[test]
    fn assignment_to_input_errors() {
        let mut d = fig9_description();
        d.assignments.insert(0, ("a".into(), "b*c".into()));
        assert!(matches!(
            d.compile().unwrap_err(),
            CompileCellError::DuplicateTarget(_)
        ));
    }

    #[test]
    fn empty_inputs_error() {
        let d = CellDescription {
            name: "x".into(),
            technology: Technology::Bipolar,
            inputs: vec![],
            output: "z".into(),
            assignments: vec![("z".into(), "1".into())],
        };
        assert_eq!(d.compile().unwrap_err(), CompileCellError::NoInputs);
    }

    #[test]
    fn parse_error_carries_target() {
        let mut d = fig9_description();
        d.assignments[0].1 = "a*+".into();
        let e = d.compile().unwrap_err();
        assert!(e.to_string().contains("x1"));
    }

    #[test]
    fn from_transmission_constructor() {
        let mut vars = VarTable::new();
        let t = dynmos_logic::parse_expr("a*b", &mut vars).unwrap();
        let cell = Cell::from_transmission("and2", Technology::DominoCmos, &["a", "b"], t);
        assert_eq!(cell.switch_count(), 2);
        assert_eq!(cell.name(), "and2");
        assert_eq!(cell.output_name(), "z");
    }

    #[test]
    #[should_panic(expected = "beyond inputs")]
    fn from_transmission_rejects_wide_expr() {
        let mut vars = VarTable::new();
        let t = dynmos_logic::parse_expr("a*b*c", &mut vars).unwrap();
        Cell::from_transmission("bad", Technology::DominoCmos, &["a", "b"], t);
    }

    #[test]
    fn literal_sites_enumerate_switch_transistors() {
        let cell = fig9_description().compile().unwrap();
        let sites = cell.literal_sites();
        assert_eq!(sites.len(), 5);
        let vt = cell.var_table();
        let names: Vec<String> = sites.iter().map(|(_, v)| vt.name(*v).to_owned()).collect();
        assert_eq!(names, ["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn var_table_matches_input_order() {
        let cell = fig9_description().compile().unwrap();
        let vt = cell.var_table();
        assert_eq!(vt.len(), 5);
        assert_eq!(vt.name(VarId(3)), "d");
    }
}
