//! Parser for the ISCAS `.bench` netlist format.
//!
//! The ISCAS-85/89 benchmark circuits — the standard corpus for fault
//! simulation and test generation since the paper's era — circulate as
//! plain-text `.bench` files:
//!
//! ```text
//! # c17
//! INPUT(G1)
//! INPUT(G2)
//! OUTPUT(G22)
//! G10 = NAND(G1, G3)
//! G22 = NAND(G10, G16)
//! ```
//!
//! [`parse_bench`] lowers such a description to a [`Network`] of
//! [`Technology::Bipolar`] cells (the direct-function technology, which
//! carries the classic stuck-at fault model the ISCAS tradition assumes).
//! Gate definitions may appear in any order — the parser topologically
//! sorts them — and each distinct `(gate type, fan-in)` pair becomes one
//! shared cell. Sequential elements (`DFF`) are rejected: this workspace
//! models combinational networks only.

use crate::cell::Cell;
use crate::network::{Network, NetworkBuilder, NetworkError, Phase};
use crate::tech::Technology;
use dynmos_logic::{Bexpr, VarId};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Error from [`parse_bench`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBenchError {
    /// A line could not be parsed.
    BadLine(String),
    /// Unknown gate type (or the sequential `DFF`, which is unsupported).
    BadGate(String),
    /// A gate reads a signal that is neither an input nor defined.
    Undefined(String),
    /// A signal is defined more than once (or collides with an input).
    Redefined(String),
    /// The gate defining this signal has an unsupported fan-in count.
    BadArity(String),
    /// An `OUTPUT` names an unknown signal.
    UnknownOutput(String),
    /// The definitions contain a combinational cycle through this signal.
    Cycle(String),
    /// The netlist has no primary inputs or no gates.
    Empty,
    /// The assembled network failed validation.
    Network(NetworkError),
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::BadLine(l) => write!(f, "cannot parse line '{l}'"),
            ParseBenchError::BadGate(g) => write!(f, "unsupported gate type '{g}'"),
            ParseBenchError::Undefined(s) => write!(f, "undefined signal '{s}'"),
            ParseBenchError::Redefined(s) => write!(f, "signal '{s}' defined twice"),
            ParseBenchError::BadArity(s) => write!(f, "bad fan-in count for '{s}'"),
            ParseBenchError::UnknownOutput(s) => write!(f, "OUTPUT names unknown signal '{s}'"),
            ParseBenchError::Cycle(s) => write!(f, "combinational cycle through '{s}'"),
            ParseBenchError::Empty => write!(f, "netlist has no inputs or no gates"),
            ParseBenchError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for ParseBenchError {}

impl From<NetworkError> for ParseBenchError {
    fn from(e: NetworkError) -> Self {
        ParseBenchError::Network(e)
    }
}

/// The gate vocabulary of the `.bench` format (combinational subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BenchGate {
    And,
    Nand,
    Or,
    Nor,
    Xor,
    Xnor,
    Not,
    Buf,
}

impl BenchGate {
    fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Some(BenchGate::And),
            "NAND" => Some(BenchGate::Nand),
            "OR" => Some(BenchGate::Or),
            "NOR" => Some(BenchGate::Nor),
            "XOR" => Some(BenchGate::Xor),
            "XNOR" => Some(BenchGate::Xnor),
            "NOT" => Some(BenchGate::Not),
            "BUF" | "BUFF" => Some(BenchGate::Buf),
            _ => None,
        }
    }

    /// The direct logic function over `n` dense variables, or `None`
    /// when the fan-in count is unsupported (NOT/BUF are unary,
    /// everything else needs at least two operands; XOR/XNOR fold
    /// pairwise). Folding the arity check into the constructor keeps
    /// the function structurally panic-free: a zero-arg `NOT()` line
    /// can only produce a parse error, never an index past an empty
    /// operand list.
    fn function(self, n: usize) -> Option<Bexpr> {
        let unary = matches!(self, BenchGate::Not | BenchGate::Buf);
        if (unary && n != 1) || (!unary && n < 2) {
            return None;
        }
        let vars: Vec<Bexpr> = (0..n).map(|i| Bexpr::var(VarId(i as u32))).collect();
        let parity = |negate: bool| {
            let mut acc = vars[0].clone();
            for v in &vars[1..] {
                acc = Bexpr::or(vec![
                    Bexpr::and(vec![acc.clone(), Bexpr::not(v.clone())]),
                    Bexpr::and(vec![Bexpr::not(acc), v.clone()]),
                ]);
            }
            if negate {
                Bexpr::not(acc)
            } else {
                acc
            }
        };
        Some(match self {
            BenchGate::And => Bexpr::and(vars),
            BenchGate::Nand => Bexpr::not(Bexpr::and(vars)),
            BenchGate::Or => Bexpr::or(vars),
            BenchGate::Nor => Bexpr::not(Bexpr::or(vars)),
            BenchGate::Xor => parity(false),
            BenchGate::Xnor => parity(true),
            BenchGate::Not => Bexpr::not(vars.into_iter().next()?),
            BenchGate::Buf => vars.into_iter().next()?,
        })
    }

    fn cell_name(self, n: usize) -> String {
        let base = match self {
            BenchGate::And => "and",
            BenchGate::Nand => "nand",
            BenchGate::Or => "or",
            BenchGate::Nor => "nor",
            BenchGate::Xor => "xor",
            BenchGate::Xnor => "xnor",
            BenchGate::Not => "not",
            BenchGate::Buf => "buf",
        };
        format!("{base}{n}")
    }
}

/// A parsed `sig = GATE(a, b, …)` line, with its logic function
/// already constructed (arity validated at parse time).
struct GateDef {
    output: String,
    gate: BenchGate,
    inputs: Vec<String>,
    function: Bexpr,
}

/// Parses a `.bench` netlist into a combinational [`Network`] of bipolar
/// (stuck-at-model) cells.
///
/// Accepts the standard surface: `#` comments, blank lines,
/// `INPUT(sig)` / `OUTPUT(sig)` declarations and `sig = GATE(a, …)`
/// definitions in any order. Gate types: `AND`, `NAND`, `OR`, `NOR`,
/// `XOR`, `XNOR`, `NOT`, `BUF`/`BUFF` at arbitrary fan-in (unary for
/// `NOT`/`BUF`).
///
/// # Example
///
/// ```
/// use dynmos_netlist::parse_bench;
///
/// let net = parse_bench(
///     "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n",
/// ).unwrap();
/// assert_eq!(net.eval(&[true, true]), vec![false]);
/// ```
pub fn parse_bench(text: &str) -> Result<Network, ParseBenchError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut defs: Vec<GateDef> = Vec::new();

    for raw in text.lines() {
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(sig) = section(line, "INPUT") {
            inputs.push(sig.to_owned());
            continue;
        }
        if let Some(sig) = section(line, "OUTPUT") {
            outputs.push(sig.to_owned());
            continue;
        }
        let Some((lhs, rhs)) = line.split_once('=') else {
            return Err(ParseBenchError::BadLine(line.to_owned()));
        };
        let output = lhs.trim().to_owned();
        let rhs = rhs.trim();
        let Some((gate_name, args)) = rhs.split_once('(') else {
            return Err(ParseBenchError::BadLine(line.to_owned()));
        };
        let Some(args) = args.trim().strip_suffix(')') else {
            return Err(ParseBenchError::BadLine(line.to_owned()));
        };
        let gate = BenchGate::parse(gate_name.trim())
            .ok_or_else(|| ParseBenchError::BadGate(gate_name.trim().to_owned()))?;
        let operands: Vec<String> = args
            .split(',')
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect();
        let Some(function) = gate.function(operands.len()) else {
            return Err(ParseBenchError::BadArity(output));
        };
        defs.push(GateDef {
            output,
            gate,
            inputs: operands,
            function,
        });
    }

    if inputs.is_empty() || defs.is_empty() {
        return Err(ParseBenchError::Empty);
    }

    // Signal table: inputs first, then gate outputs; everything a gate
    // reads must be one of the two.
    let mut defined: HashSet<&str> = HashSet::new();
    for sig in &inputs {
        if !defined.insert(sig) {
            return Err(ParseBenchError::Redefined(sig.clone()));
        }
    }
    for d in &defs {
        if !defined.insert(&d.output) {
            return Err(ParseBenchError::Redefined(d.output.clone()));
        }
    }
    for d in &defs {
        for i in &d.inputs {
            if !defined.contains(i.as_str()) {
                return Err(ParseBenchError::Undefined(i.clone()));
            }
        }
    }
    for o in &outputs {
        if !defined.contains(o.as_str()) {
            return Err(ParseBenchError::UnknownOutput(o.clone()));
        }
    }

    // Build, adding gates in dependency (Kahn) order since definitions
    // may reference signals defined later in the file.
    let mut b = NetworkBuilder::new();
    let mut cells: HashMap<(BenchGate, usize), usize> = HashMap::new();
    let mut nets: HashMap<String, crate::network::NetId> = HashMap::new();
    for sig in &inputs {
        nets.insert(sig.clone(), b.input(sig));
    }
    let mut remaining: Vec<usize> = (0..defs.len()).collect();
    while !remaining.is_empty() {
        let mut progressed = false;
        remaining.retain(|&di| {
            let d = &defs[di];
            if !d.inputs.iter().all(|i| nets.contains_key(i)) {
                return true; // still blocked
            }
            let cell_idx = *cells.entry((d.gate, d.inputs.len())).or_insert_with(|| {
                let names: Vec<String> = (0..d.inputs.len()).map(|i| format!("i{i}")).collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                b.add_cell(Cell::from_transmission(
                    &d.gate.cell_name(d.inputs.len()),
                    Technology::Bipolar,
                    &refs,
                    d.function.clone(),
                ))
            });
            let input_nets: Vec<_> = d.inputs.iter().map(|i| nets[i]).collect();
            let (_, out) = b.gate(cell_idx, &input_nets, &d.output, Phase::Phi1);
            nets.insert(d.output.clone(), out);
            progressed = true;
            false
        });
        if !progressed {
            let blocked = &defs[remaining[0]];
            return Err(ParseBenchError::Cycle(blocked.output.clone()));
        }
    }
    for o in &outputs {
        b.mark_output(nets[o]);
    }
    Ok(b.finish()?)
}

fn section<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?;
    let rest = rest.trim_start();
    rest.strip_prefix('(')?
        .trim_end()
        .strip_suffix(')')
        .map(str::trim)
}

/// The ISCAS-85 c17 benchmark, verbatim in `.bench` syntax — the
/// canonical parser fixture.
pub const C17_BENCH: &str = "\
# c17, ISCAS-85
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::c17_dynamic_nmos;

    #[test]
    fn c17_bench_matches_handbuilt_c17() {
        let parsed = parse_bench(C17_BENCH).expect("fixture parses");
        let reference = c17_dynamic_nmos();
        assert_eq!(parsed.primary_inputs().len(), 5);
        assert_eq!(parsed.primary_outputs().len(), 2);
        assert_eq!(parsed.gates().len(), 6);
        for w in 0..32u32 {
            let pi: Vec<bool> = (0..5).map(|k| (w >> k) & 1 == 1).collect();
            assert_eq!(parsed.eval(&pi), reference.eval(&pi), "w={w:05b}");
        }
    }

    #[test]
    fn definitions_may_appear_in_any_order() {
        let net =
            parse_bench("OUTPUT(z)\nz = AND(m, b)\nm = NOT(a)\nINPUT(a)\nINPUT(b)\n").unwrap();
        assert_eq!(net.eval(&[false, true]), vec![true]);
        assert_eq!(net.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn gate_vocabulary_evaluates_correctly() {
        let net = parse_bench(
            "INPUT(a)\nINPUT(b)\n\
             OUTPUT(o_and)\nOUTPUT(o_nand)\nOUTPUT(o_or)\nOUTPUT(o_nor)\n\
             OUTPUT(o_xor)\nOUTPUT(o_xnor)\nOUTPUT(o_not)\nOUTPUT(o_buf)\n\
             o_and = AND(a, b)\no_nand = NAND(a, b)\no_or = OR(a, b)\n\
             o_nor = NOR(a, b)\no_xor = XOR(a, b)\no_xnor = XNOR(a, b)\n\
             o_not = NOT(a)\no_buf = BUFF(b)\n",
        )
        .unwrap();
        for (a, bv) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = net.eval(&[a, bv]);
            assert_eq!(
                out,
                vec![
                    a && bv,
                    !(a && bv),
                    a || bv,
                    !(a || bv),
                    a ^ bv,
                    !(a ^ bv),
                    !a,
                    bv
                ],
                "a={a} b={bv}"
            );
        }
    }

    #[test]
    fn wide_fanin_and_parity_fold() {
        let net = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\nOUTPUT(p)\n\
             z = NAND(a, b, c, d)\np = XOR(a, b, c)\n",
        )
        .unwrap();
        assert_eq!(net.eval(&[true, true, true, true]), vec![false, true]);
        assert_eq!(net.eval(&[true, true, true, false]), vec![true, true]);
        assert_eq!(net.eval(&[true, true, false, false]), vec![true, false]);
    }

    #[test]
    fn shared_cells_per_type_and_arity() {
        let net = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(x)\nOUTPUT(y)\n\
             x = NAND(a, b)\ny = NAND(b, c)\n",
        )
        .unwrap();
        assert_eq!(net.cells().len(), 1, "both NAND2s share one cell");
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parse_bench("INPUT(a)\nz = DFF(a)\nOUTPUT(z)\n"),
            Err(ParseBenchError::BadGate(_))
        ));
        assert!(matches!(
            parse_bench("INPUT(a)\nOUTPUT(z)\nz = AND(a, q)\n"),
            Err(ParseBenchError::Undefined(_))
        ));
        assert!(matches!(
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(a)\na = AND(a, b)\n"),
            Err(ParseBenchError::Redefined(_))
        ));
        assert!(matches!(
            parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a, a)\n"),
            Err(ParseBenchError::BadArity(_))
        ));
        assert!(matches!(
            parse_bench("INPUT(a)\nOUTPUT(q)\nz = NOT(a)\n"),
            Err(ParseBenchError::UnknownOutput(_))
        ));
        assert!(matches!(
            parse_bench("INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = AND(a, x)\n"),
            Err(ParseBenchError::Cycle(_))
        ));
        assert!(matches!(
            parse_bench("# nothing\n"),
            Err(ParseBenchError::Empty)
        ));
        assert!(matches!(
            parse_bench("INPUT(a)\nOUTPUT(z)\nz AND a\n"),
            Err(ParseBenchError::BadLine(_))
        ));
    }

    #[test]
    fn zero_arg_gates_are_parse_errors_not_panics() {
        // `NOT()`/`BUFF()` once reached an `.expect("unary")` past the
        // empty operand list; arity now folds into function
        // construction, so they can only be parse errors.
        for line in ["z = NOT()", "z = BUFF()", "z = AND()", "z = XOR()"] {
            let text = format!("INPUT(a)\nOUTPUT(z)\n{line}\n");
            assert!(
                matches!(parse_bench(&text), Err(ParseBenchError::BadArity(_))),
                "{line}"
            );
        }
        // A lone operand is too few for the n-ary gates too.
        assert!(matches!(
            parse_bench("INPUT(a)\nOUTPUT(z)\nz = AND(a)\n"),
            Err(ParseBenchError::BadArity(_))
        ));
    }

    #[test]
    fn duplicate_definitions_are_rejected() {
        assert!(matches!(
            parse_bench("INPUT(a)\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n"),
            Err(ParseBenchError::Redefined(_))
        ));
        assert!(matches!(
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NOT(a)\nz = NOT(b)\n"),
            Err(ParseBenchError::Redefined(_))
        ));
    }

    #[test]
    fn weird_but_wellformed_surface_still_parses() {
        // Comment-only operands lists, stray spaces, and trailing
        // comments exercise the tokenizer's trim paths.
        let net =
            parse_bench("  INPUT( a ) # pi\nINPUT(b)\nOUTPUT( z )\nz =  NAND ( a ,  b )  # gate\n")
                .unwrap();
        assert_eq!(net.eval(&[true, true]), vec![false]);
    }
}
