//! Combinational networks of technology-tagged cells.
//!
//! Mirrors the paper's Figs. 5 and 7: a network of domino CMOS gates is
//! "controlled by a single clock"; dynamic nMOS gates need "at least two
//! non-overlapping clocks", alternating phases along every path.
//! [`Network::check_clocking`] enforces exactly these disciplines.

use crate::cell::Cell;
use crate::compile::{CompiledNetwork, PackedEvaluator, PreparedFault};
use crate::tech::Technology;
use dynmos_logic::{Bexpr, VarId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a net (signal) in a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

impl NetId {
    /// Index into net-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// Identifier of a gate instance in a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateRef(pub u32);

impl GateRef {
    /// Index into gate-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Clock phase of a dynamic gate (Fig. 7's `Φ1`/`Φ2`). Domino networks use
/// a single clock; by convention all their gates sit on `Phi1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// First phase.
    #[default]
    Phi1,
    /// Second (complementary) phase.
    Phi2,
}

impl Phase {
    /// The complementary phase.
    pub fn other(self) -> Phase {
        match self {
            Phase::Phi1 => Phase::Phi2,
            Phase::Phi2 => Phase::Phi1,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Phi1 => write!(f, "Φ1"),
            Phase::Phi2 => write!(f, "Φ2"),
        }
    }
}

/// One cell instance.
#[derive(Debug, Clone)]
pub struct GateInstance {
    /// Index into the network's cell list.
    pub cell: usize,
    /// Input nets, one per cell input, in cell-input order.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
    /// Clock phase.
    pub phase: Phase,
}

/// Errors from [`NetworkBuilder::finish`] or clocking checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A net is driven by more than one gate (or a gate drives a primary
    /// input).
    MultipleDrivers(String),
    /// A gate input net is neither a primary input nor any gate's output.
    Undriven(String),
    /// The gate/cell arities disagree.
    ArityMismatch {
        /// The offending gate.
        gate: GateRef,
        /// Inputs the cell wants.
        expected: usize,
        /// Inputs the instance got.
        got: usize,
    },
    /// The network contains a combinational cycle.
    Cycle,
    /// A dynamic nMOS gate is fed by a gate of the *same* phase — two-phase
    /// discipline violated (Fig. 7 requires alternation).
    ClockingViolation {
        /// The consuming gate.
        gate: GateRef,
        /// The offending driver gate.
        driver: GateRef,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::MultipleDrivers(n) => write!(f, "net '{n}' has multiple drivers"),
            NetworkError::Undriven(n) => write!(f, "net '{n}' is undriven"),
            NetworkError::ArityMismatch {
                gate,
                expected,
                got,
            } => write!(f, "{gate}: cell expects {expected} inputs, got {got}"),
            NetworkError::Cycle => write!(f, "network contains a combinational cycle"),
            NetworkError::ClockingViolation { gate, driver } => write!(
                f,
                "{gate} and its driver {driver} share a clock phase (two-phase discipline violated)"
            ),
        }
    }
}

impl Error for NetworkError {}

/// A fault at network level: either a net stuck at a constant or one gate
/// computing a faulty function (the form the paper's fault library emits).
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkFault {
    /// The net reads the constant regardless of its driver.
    NetStuck(NetId, bool),
    /// The gate computes `function` (over its cell-input variables) instead
    /// of its cell's logic function.
    GateFunction(GateRef, Bexpr),
}

/// A combinational network of cell instances.
///
/// # Example
///
/// ```
/// use dynmos_netlist::{parse_cell, NetworkBuilder, Phase};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let and2 = parse_cell("and2", "TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := a*b;")?;
/// let or2 = parse_cell("or2", "TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := a+b;")?;
/// let mut b = NetworkBuilder::new();
/// let x = b.input("x");
/// let y = b.input("y");
/// let w = b.input("w");
/// let c0 = b.add_cell(and2);
/// let c1 = b.add_cell(or2);
/// let (_, m) = b.gate(c0, &[x, y], "m", Phase::Phi1);
/// let (_, z) = b.gate(c1, &[m, w], "z", Phase::Phi1);
/// b.mark_output(z);
/// let net = b.finish()?;
/// assert_eq!(net.eval(&[true, true, false]), vec![true]); // (x&y)|w
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    cells: Vec<Cell>,
    gates: Vec<GateInstance>,
    net_names: Vec<String>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    /// Gates in topological order.
    topo: Vec<GateRef>,
    /// Driving gate per net (None for primary inputs).
    driver: Vec<Option<GateRef>>,
    /// Logic level per gate (PIs are level 0).
    levels: Vec<usize>,
    /// The compiled instruction tape and fault-cone data (built once at
    /// [`NetworkBuilder::finish`] time; see [`crate::compile`]).
    compiled: CompiledNetwork,
}

impl Network {
    /// The cell library.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The gate instances.
    pub fn gates(&self) -> &[GateInstance] {
        &self.gates
    }

    /// The cell of gate `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn cell_of(&self, g: GateRef) -> &Cell {
        &self.cells[self.gates[g.index()].cell]
    }

    /// Primary inputs in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Name of net `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn net_name(&self, n: NetId) -> &str {
        &self.net_names[n.index()]
    }

    /// The gate driving net `n`, if any.
    pub fn driver(&self, n: NetId) -> Option<GateRef> {
        self.driver[n.index()]
    }

    /// Gates in topological (evaluation) order.
    pub fn topo_order(&self) -> &[GateRef] {
        &self.topo
    }

    /// Logic depth: the maximum gate level (PIs are level 0).
    pub fn depth(&self) -> usize {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// The level of gate `g` (1 + max level of its drivers).
    pub fn level(&self, g: GateRef) -> usize {
        self.levels[g.index()]
    }

    /// Evaluates the network on one input assignment; returns primary
    /// output values in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len() != primary_inputs().len()`.
    pub fn eval(&self, pi_values: &[bool]) -> Vec<bool> {
        let packed: Vec<u64> = pi_values.iter().map(|&b| if b { 1 } else { 0 }).collect();
        self.eval_packed(&packed)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }

    /// Evaluates 64 input assignments at once (bit lane `k` of every word
    /// is assignment `k`); returns packed primary-output words.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != primary_inputs().len()`.
    pub fn eval_packed(&self, pi_words: &[u64]) -> Vec<u64> {
        self.eval_packed_faulty(pi_words, None)
    }

    /// Packed evaluation with an optional injected [`NetworkFault`].
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != primary_inputs().len()`.
    pub fn eval_packed_faulty(&self, pi_words: &[u64], fault: Option<&NetworkFault>) -> Vec<u64> {
        let values = self.eval_packed_all(pi_words, fault);
        self.primary_outputs
            .iter()
            .map(|po| values[po.index()])
            .collect()
    }

    /// Packed evaluation returning the value of *every* net (indexed by
    /// [`NetId`]). PROTEST's estimators and the A1/A2 coverage experiment
    /// need internal nets, not just outputs.
    ///
    /// This is a compatibility shim over the compiled evaluator: one
    /// [`PackedEvaluator`] is built per call. Hot callers that evaluate
    /// many batches should hold a [`PackedEvaluator`] (and, per fault, a
    /// [`PreparedFault`]) instead and skip the per-call allocation.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != primary_inputs().len()`.
    pub fn eval_packed_all(&self, pi_words: &[u64], fault: Option<&NetworkFault>) -> Vec<u64> {
        let mut ev = PackedEvaluator::new(self);
        ev.eval(pi_words);
        match fault {
            None => ev.net_values().to_vec(),
            Some(f) => {
                let prepared = self.prepare_fault(f);
                ev.eval_faulty_all(&prepared).to_vec()
            }
        }
    }

    /// The compiled tape and fault-cone data of this network.
    pub fn compiled(&self) -> &CompiledNetwork {
        &self.compiled
    }

    /// Binds `fault` to its precomputed fanout cone (and compiles the
    /// faulty function, for gate-function faults) for incremental faulty
    /// evaluation with [`PackedEvaluator::fault_diff64`].
    pub fn prepare_fault(&self, fault: &NetworkFault) -> PreparedFault<'_> {
        self.compiled.prepare(self, fault)
    }

    /// The original interpretive evaluator, kept as the differential-test
    /// oracle for the compiled path (and as the baseline in the
    /// `fsim_patterns_per_sec` bench). Walks the [`Bexpr`] of every gate
    /// per batch; allocates per call.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != primary_inputs().len()`.
    pub fn eval_packed_all_reference(
        &self,
        pi_words: &[u64],
        fault: Option<&NetworkFault>,
    ) -> Vec<u64> {
        assert_eq!(
            pi_words.len(),
            self.primary_inputs.len(),
            "need one packed word per primary input"
        );
        let mut values = vec![0u64; self.net_names.len()];
        for (pi, &w) in self.primary_inputs.iter().zip(pi_words) {
            values[pi.index()] = w;
        }
        // Apply PI stuck faults before gate evaluation.
        if let Some(NetworkFault::NetStuck(net, v)) = fault {
            if self.driver[net.index()].is_none() {
                values[net.index()] = if *v { u64::MAX } else { 0 };
            }
        }
        for &g in &self.topo {
            let inst = &self.gates[g.index()];
            let cell = &self.cells[inst.cell];
            let faulty_fn = match fault {
                Some(NetworkFault::GateFunction(fg, f)) if *fg == g => Some(f),
                _ => None,
            };
            let function = match faulty_fn {
                Some(f) => f.clone(),
                None => cell.logic_function(),
            };
            let out = function.eval_lanes(&|v: VarId| values[inst.inputs[v.index()].index()]);
            values[inst.output.index()] = out;
            if let Some(NetworkFault::NetStuck(net, v)) = fault {
                if *net == inst.output {
                    values[net.index()] = if *v { u64::MAX } else { 0 };
                }
            }
        }
        values
    }

    /// Checks the technology clocking discipline:
    ///
    /// * dynamic nMOS gates must alternate phases along every arc
    ///   (Fig. 7's two-phase rule);
    /// * domino gates all share one clock, so any phase assignment where
    ///   driver and consumer phases are *equal* is fine — the check is a
    ///   no-op for them.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::ClockingViolation`] naming the first
    /// offending arc.
    pub fn check_clocking(&self) -> Result<(), NetworkError> {
        for (gi, inst) in self.gates.iter().enumerate() {
            let g = GateRef(gi as u32);
            if self.cells[inst.cell].technology() != Technology::DynamicNmos {
                continue;
            }
            for &input in &inst.inputs {
                if let Some(driver) = self.driver[input.index()] {
                    let d = &self.gates[driver.index()];
                    if self.cells[d.cell].technology() == Technology::DynamicNmos
                        && d.phase == inst.phase
                    {
                        return Err(NetworkError::ClockingViolation { gate: g, driver });
                    }
                }
            }
        }
        Ok(())
    }

    /// The global logic function of primary output `po` as an expression
    /// over primary-input variables (`VarId(i)` = i-th primary input),
    /// obtained by back-substitution through the cone.
    ///
    /// # Panics
    ///
    /// Panics if `po` is not a primary output.
    pub fn output_function(&self, po: NetId) -> Bexpr {
        assert!(
            self.primary_outputs.contains(&po),
            "{po} is not a primary output"
        );
        let mut memo: HashMap<NetId, Bexpr> = HashMap::new();
        self.net_function(po, &mut memo)
    }

    fn net_function(&self, net: NetId, memo: &mut HashMap<NetId, Bexpr>) -> Bexpr {
        if let Some(e) = memo.get(&net) {
            return e.clone();
        }
        let result = match self.driver[net.index()] {
            None => {
                let pi_index = self
                    .primary_inputs
                    .iter()
                    .position(|&p| p == net)
                    .expect("undriven net must be a primary input");
                Bexpr::var(VarId(pi_index as u32))
            }
            Some(g) => {
                let inst = &self.gates[g.index()];
                let f = self.cells[inst.cell].logic_function();
                // Simultaneous substitution of all cell inputs in a single
                // pass: cell-variable ids and primary-input ids share the
                // number space, so chained substitution would capture the
                // PI variables introduced by earlier substitutions.
                let subs: Vec<Bexpr> = inst
                    .inputs
                    .iter()
                    .map(|&in_net| self.net_function(in_net, memo))
                    .collect();
                f.compose(&|v: VarId| subs[v.index()].clone())
            }
        };
        memo.insert(net, result.clone());
        result
    }
}

/// Builder for [`Network`].
#[derive(Debug, Clone, Default)]
pub struct NetworkBuilder {
    cells: Vec<Cell>,
    gates: Vec<GateInstance>,
    net_names: Vec<String>,
    by_name: HashMap<String, NetId>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    driver: Vec<Option<GateRef>>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cell to the library, returning its index for [`Self::gate`].
    pub fn add_cell(&mut self, cell: Cell) -> usize {
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// Declares a primary input net.
    pub fn input(&mut self, name: &str) -> NetId {
        let id = self.net(name);
        if !self.primary_inputs.contains(&id) {
            self.primary_inputs.push(id);
        }
        id
    }

    /// Adds (or retrieves) a named net.
    pub fn net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        self.driver.push(None);
        id
    }

    /// Instantiates cell `cell_index` with the given input nets, driving a
    /// new (or existing, undriven) net named `output`.
    ///
    /// Returns the gate reference and its output net.
    pub fn gate(
        &mut self,
        cell_index: usize,
        inputs: &[NetId],
        output: &str,
        phase: Phase,
    ) -> (GateRef, NetId) {
        let out = self.net(output);
        let g = GateRef(self.gates.len() as u32);
        self.gates.push(GateInstance {
            cell: cell_index,
            inputs: inputs.to_vec(),
            output: out,
            phase,
        });
        (g, out)
    }

    /// Marks a net as primary output.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.primary_outputs.contains(&net) {
            self.primary_outputs.push(net);
        }
    }

    /// Validates and finalizes the network: single drivers, no undriven
    /// internal nets, matching arities, acyclicity (topological sort),
    /// level assignment.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetworkError`] found.
    pub fn finish(mut self) -> Result<Network, NetworkError> {
        // Drivers + arity.
        for (gi, inst) in self.gates.iter().enumerate() {
            let g = GateRef(gi as u32);
            let cell = &self.cells[inst.cell];
            if inst.inputs.len() != cell.input_count() {
                return Err(NetworkError::ArityMismatch {
                    gate: g,
                    expected: cell.input_count(),
                    got: inst.inputs.len(),
                });
            }
            let slot = &mut self.driver[inst.output.index()];
            if slot.is_some() || self.primary_inputs.contains(&inst.output) {
                return Err(NetworkError::MultipleDrivers(
                    self.net_names[inst.output.index()].clone(),
                ));
            }
            *slot = Some(g);
        }
        // Undriven nets.
        for (gi, inst) in self.gates.iter().enumerate() {
            let _ = gi;
            for &n in &inst.inputs {
                if self.driver[n.index()].is_none() && !self.primary_inputs.contains(&n) {
                    return Err(NetworkError::Undriven(self.net_names[n.index()].clone()));
                }
            }
        }
        for &po in &self.primary_outputs {
            if self.driver[po.index()].is_none() && !self.primary_inputs.contains(&po) {
                return Err(NetworkError::Undriven(self.net_names[po.index()].clone()));
            }
        }
        // Topological sort (Kahn) + levels.
        let mut indeg = vec![0usize; self.gates.len()];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); self.gates.len()];
        for (gi, inst) in self.gates.iter().enumerate() {
            for &n in &inst.inputs {
                if let Some(d) = self.driver[n.index()] {
                    indeg[gi] += 1;
                    consumers[d.index()].push(gi);
                }
            }
        }
        let mut queue: Vec<usize> = (0..self.gates.len()).filter(|&g| indeg[g] == 0).collect();
        let mut topo = Vec::with_capacity(self.gates.len());
        let mut levels = vec![1usize; self.gates.len()];
        while let Some(g) = queue.pop() {
            topo.push(GateRef(g as u32));
            for &c in &consumers[g] {
                levels[c] = levels[c].max(levels[g] + 1);
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if topo.len() != self.gates.len() {
            return Err(NetworkError::Cycle);
        }
        // Kahn with a stack does not guarantee input-order stability; sort
        // by level then index for deterministic evaluation order.
        topo.sort_by_key(|g| (levels[g.index()], g.index()));

        let compiled = CompiledNetwork::build(
            &self.cells,
            &self.gates,
            self.net_names.len(),
            &topo,
            &self.primary_inputs,
            &self.primary_outputs,
        );

        Ok(Network {
            cells: self.cells,
            gates: self.gates,
            net_names: self.net_names,
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
            topo,
            driver: self.driver,
            levels,
            compiled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_cell;

    fn and2() -> Cell {
        parse_cell(
            "and2",
            "TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := a*b;",
        )
        .unwrap()
    }

    fn or2() -> Cell {
        parse_cell(
            "or2",
            "TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := a+b;",
        )
        .unwrap()
    }

    fn dyn_nor2() -> Cell {
        parse_cell(
            "nor2",
            "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a+b;",
        )
        .unwrap()
    }

    /// (x&y)|w network used across tests.
    fn small_net() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let w = b.input("w");
        let ca = b.add_cell(and2());
        let co = b.add_cell(or2());
        let (_, m) = b.gate(ca, &[x, y], "m", Phase::Phi1);
        let (_, z) = b.gate(co, &[m, w], "z", Phase::Phi1);
        b.mark_output(z);
        b.finish().unwrap()
    }

    #[test]
    fn eval_matches_expected_function() {
        let net = small_net();
        for w in 0..8u32 {
            let x = w & 1 == 1;
            let y = w >> 1 & 1 == 1;
            let ww = w >> 2 & 1 == 1;
            assert_eq!(net.eval(&[x, y, ww]), vec![(x && y) || ww]);
        }
    }

    #[test]
    fn eval_packed_matches_scalar() {
        let net = small_net();
        // Pack all 8 assignments into lanes 0..8.
        let mut pi = vec![0u64; 3];
        for lane in 0..8u64 {
            for (i, w) in pi.iter_mut().enumerate() {
                if (lane >> i) & 1 == 1 {
                    *w |= 1 << lane;
                }
            }
        }
        let packed = net.eval_packed(&pi)[0];
        for lane in 0..8u64 {
            let expect = net.eval(&[lane & 1 == 1, lane >> 1 & 1 == 1, lane >> 2 & 1 == 1])[0];
            assert_eq!((packed >> lane) & 1 == 1, expect, "lane {lane}");
        }
    }

    #[test]
    fn depth_and_levels() {
        let net = small_net();
        assert_eq!(net.depth(), 2);
        assert_eq!(net.topo_order().len(), 2);
    }

    #[test]
    fn output_function_back_substitutes() {
        let net = small_net();
        let po = net.primary_outputs()[0];
        let f = net.output_function(po);
        // f over (x,y,w) must equal (x&y)|w.
        for w in 0..8u64 {
            let expect = ((w & 1 == 1) && (w >> 1 & 1 == 1)) || (w >> 2 & 1 == 1);
            assert_eq!(f.eval_word(w), expect, "w={w:b}");
        }
    }

    #[test]
    fn net_stuck_fault_forces_value() {
        let net = small_net();
        let m = net
            .primary_outputs()
            .first()
            .and_then(|_| net.gates().first().map(|g| g.output))
            .unwrap();
        let fault = NetworkFault::NetStuck(m, true);
        // With m stuck-1, output = 1 always.
        let out = net.eval_packed_faulty(&[0, 0, 0], Some(&fault));
        assert_eq!(out[0], u64::MAX);
    }

    #[test]
    fn pi_stuck_fault() {
        let net = small_net();
        let x = net.primary_inputs()[0];
        let fault = NetworkFault::NetStuck(x, true);
        // x stuck-1: f = y|w ... check one distinguishing assignment:
        // x=0,y=1,w=0 -> good 0, faulty 1.
        let out = net.eval_packed_faulty(&[0, u64::MAX, 0], Some(&fault));
        assert_eq!(out[0], u64::MAX);
        let good = net.eval_packed(&[0, u64::MAX, 0]);
        assert_eq!(good[0], 0);
    }

    #[test]
    fn gate_function_fault_overrides_cell() {
        let net = small_net();
        // Replace the AND by constant-0 (an s0-z on the first gate).
        let fault = NetworkFault::GateFunction(GateRef(0), Bexpr::FALSE);
        let out = net.eval_packed_faulty(&[u64::MAX, u64::MAX, 0], Some(&fault));
        assert_eq!(out[0], 0);
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let c = b.add_cell(and2());
        b.gate(c, &[x, y], "z", Phase::Phi1);
        b.gate(c, &[x, y], "z", Phase::Phi1);
        assert!(matches!(
            b.finish().unwrap_err(),
            NetworkError::MultipleDrivers(_)
        ));
    }

    #[test]
    fn driving_a_primary_input_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let c = b.add_cell(and2());
        b.gate(c, &[x, y], "x", Phase::Phi1);
        assert!(matches!(
            b.finish().unwrap_err(),
            NetworkError::MultipleDrivers(_)
        ));
    }

    #[test]
    fn undriven_net_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.input("x");
        let ghost = b.net("ghost");
        let c = b.add_cell(and2());
        let (_, z) = b.gate(c, &[x, ghost], "z", Phase::Phi1);
        b.mark_output(z);
        assert!(matches!(b.finish().unwrap_err(), NetworkError::Undriven(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.input("x");
        let c = b.add_cell(and2());
        b.gate(c, &[x], "z", Phase::Phi1);
        assert!(matches!(
            b.finish().unwrap_err(),
            NetworkError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.input("x");
        let c = b.add_cell(and2());
        let loop_net = b.net("loop");
        b.gate(c, &[x, loop_net], "loop", Phase::Phi1);
        assert!(matches!(b.finish().unwrap_err(), NetworkError::Cycle));
    }

    #[test]
    fn two_phase_alternation_accepted() {
        // Fig. 7: Φ1 gate feeding a Φ2 gate.
        let mut b = NetworkBuilder::new();
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let c = b.add_cell(dyn_nor2());
        let (_, z1) = b.gate(c, &[i1, i2], "z1", Phase::Phi1);
        let (_, z2) = b.gate(c, &[z1, i2], "z2", Phase::Phi2);
        b.mark_output(z2);
        let net = b.finish().unwrap();
        assert!(net.check_clocking().is_ok());
    }

    #[test]
    fn same_phase_arc_rejected_for_dynamic_nmos() {
        let mut b = NetworkBuilder::new();
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let c = b.add_cell(dyn_nor2());
        let (_, z1) = b.gate(c, &[i1, i2], "z1", Phase::Phi1);
        let (_, z2) = b.gate(c, &[z1, i2], "z2", Phase::Phi1);
        b.mark_output(z2);
        let net = b.finish().unwrap();
        assert!(matches!(
            net.check_clocking().unwrap_err(),
            NetworkError::ClockingViolation { .. }
        ));
    }

    #[test]
    fn domino_gates_ignore_phase_rule() {
        let net = small_net(); // both gates Phi1, domino cells
        assert!(net.check_clocking().is_ok());
    }

    #[test]
    fn phase_other_is_involutive() {
        assert_eq!(Phase::Phi1.other(), Phase::Phi2);
        assert_eq!(Phase::Phi2.other().other(), Phase::Phi2);
    }
}
