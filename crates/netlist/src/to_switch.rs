//! Flattening domino networks into one transistor-level circuit.
//!
//! The paper's Fig. 5 shows a *network* of domino gates under a single
//! clock. Gate-level evaluation (see [`crate::Network`]) models each gate
//! as its logic function; [`domino_to_switch`] instead instantiates every
//! gate's transistors (precharge `T1`, switch network, foot `T2`, output
//! inverter) into **one** switch-level circuit, wiring gate outputs to the
//! switch networks of their consumers. The relaxation simulator then
//! reproduces the domino ripple electrically — including the monotone-rise
//! behaviour and genuine multi-gate fault effects.
//!
//! Two-phase dynamic nMOS networks are *not* flattened here: their input
//! pass transistors need per-phase clock routing and a multi-cycle
//! schedule; the single-gate builder in `dynmos-switch` covers the
//! per-cell analysis the paper performs.

use crate::network::{NetId, Network};
use crate::tech::Technology;
use dynmos_switch::sn::build_sn;
use dynmos_switch::{Circuit, CircuitBuilder, FetKind, Logic, NodeId, Sim, TransistorId};
use std::error::Error;
use std::fmt;

/// Error from [`domino_to_switch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToSwitchError {
    /// A gate uses a technology other than domino CMOS.
    NotDomino {
        /// Offending gate index.
        gate: usize,
        /// Its technology.
        technology: Technology,
    },
    /// A cell's transmission function is not positive series-parallel
    /// (cannot be realized as a switch network).
    BadTransmission(String),
}

impl fmt::Display for ToSwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToSwitchError::NotDomino { gate, technology } => {
                write!(f, "gate g{gate} is {technology}, not domino CMOS")
            }
            ToSwitchError::BadTransmission(m) => write!(f, "bad transmission function: {m}"),
        }
    }
}

impl Error for ToSwitchError {}

/// The transistor-level parts instantiated for one domino gate.
#[derive(Debug, Clone)]
pub struct DominoParts {
    /// Precharge p-transistor `T1`.
    pub t1: TransistorId,
    /// Foot n-transistor `T2`.
    pub t2: TransistorId,
    /// Output inverter pull-up / pull-down.
    pub inv_p: TransistorId,
    /// Output inverter pull-down.
    pub inv_n: TransistorId,
    /// Internal precharged node `y`.
    pub y: NodeId,
    /// Switch-network transistors, in the cell's literal-site order (the
    /// fault-injection addresses for the paper's per-site faults).
    pub sn_sites: Vec<TransistorId>,
}

/// A domino network flattened to transistors.
#[derive(Debug, Clone)]
pub struct SwitchRealization {
    /// The flat transistor circuit.
    pub circuit: Circuit,
    /// The single domino clock `Φ`.
    pub clock: NodeId,
    /// Switch node per network net (`NetId`-indexed).
    pub net_nodes: Vec<NodeId>,
    /// Per-gate transistor parts (gate-index order).
    pub gates: Vec<DominoParts>,
    /// Primary inputs (network order).
    pub pi_nodes: Vec<NodeId>,
    /// Primary outputs (network order).
    pub po_nodes: Vec<NodeId>,
}

impl SwitchRealization {
    /// Runs one full precharge/evaluate cycle on `sim` and returns the
    /// primary-output levels during evaluation.
    ///
    /// Bit `i` of `word` is the value of primary input `i`. Follows the
    /// domino discipline: all inputs low during precharge.
    pub fn evaluate(&self, sim: &mut Sim<'_>, word: u64) -> Vec<Logic> {
        sim.set_input(self.clock, Logic::Zero);
        for &pi in &self.pi_nodes {
            sim.set_input(pi, Logic::Zero);
        }
        sim.settle();
        sim.set_input(self.clock, Logic::One);
        for (k, &pi) in self.pi_nodes.iter().enumerate() {
            sim.set_input(pi, Logic::from_bool((word >> k) & 1 == 1));
        }
        sim.settle();
        self.po_nodes.iter().map(|&po| sim.level(po)).collect()
    }
}

/// Flattens a single-clock domino network into one transistor circuit.
///
/// # Errors
///
/// Returns [`ToSwitchError`] if any gate is not domino CMOS or a
/// transmission function is not positive series-parallel.
///
/// # Example
///
/// ```
/// use dynmos_netlist::generate::and_or_tree;
/// use dynmos_netlist::to_switch::domino_to_switch;
/// use dynmos_switch::Sim;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = and_or_tree(2); // (x0&x1)|(x2&x3), 3 domino gates
/// let flat = domino_to_switch(&net)?;
/// let mut sim = Sim::new(&flat.circuit);
/// let outs = flat.evaluate(&mut sim, 0b0011); // x0=x1=1
/// assert_eq!(outs[0], dynmos_switch::Logic::One);
/// # Ok(())
/// # }
/// ```
pub fn domino_to_switch(net: &Network) -> Result<SwitchRealization, ToSwitchError> {
    for (gi, inst) in net.gates().iter().enumerate() {
        let tech = net.cells()[inst.cell].technology();
        if tech != Technology::DominoCmos {
            return Err(ToSwitchError::NotDomino {
                gate: gi,
                technology: tech,
            });
        }
    }
    let mut b = CircuitBuilder::new();
    let clock = b.input("phi");
    // One switch node per net; primary inputs are externally driven.
    let net_nodes: Vec<NodeId> = (0..net.net_count())
        .map(|i| {
            let netid = NetId(i as u32);
            let name = format!("net:{}", net.net_name(netid));
            if net.primary_inputs().contains(&netid) {
                b.input(&name)
            } else {
                b.node(&name)
            }
        })
        .collect();

    let (vdd, vss) = (b.vdd(), b.vss());
    let mut gates = Vec::with_capacity(net.gates().len());
    for (gi, inst) in net.gates().iter().enumerate() {
        let cell = &net.cells()[inst.cell];
        let y = b.node(&format!("g{gi}.y"));
        let foot = b.fresh_node(&format!("g{gi}.foot"));
        let t1 = b.fet(FetKind::P, clock, vdd, y, &format!("g{gi}.T1"));
        let inputs = inst.inputs.clone();
        let sn = build_sn(&mut b, cell.transmission(), y, foot, FetKind::N, &|v| {
            inputs.get(v.index()).map(|n| net_nodes[n.index()])
        })
        .map_err(|e| ToSwitchError::BadTransmission(e.to_string()))?;
        let t2 = b.fet(FetKind::N, clock, foot, vss, &format!("g{gi}.T2"));
        let z = net_nodes[inst.output.index()];
        let inv_p = b.fet(FetKind::P, y, vdd, z, &format!("g{gi}.INVp"));
        let inv_n = b.fet(FetKind::N, y, z, vss, &format!("g{gi}.INVn"));
        gates.push(DominoParts {
            t1,
            t2,
            inv_p,
            inv_n,
            y,
            sn_sites: sn.transistors,
        });
    }

    let pi_nodes = net
        .primary_inputs()
        .iter()
        .map(|pi| net_nodes[pi.index()])
        .collect();
    let po_nodes = net
        .primary_outputs()
        .iter()
        .map(|po| net_nodes[po.index()])
        .collect();

    Ok(SwitchRealization {
        circuit: b.finish(),
        clock,
        net_nodes,
        gates,
        pi_nodes,
        po_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{
        and_or_tree, carry_chain, fig9_cell, random_domino_network, single_cell_network,
    };
    use dynmos_switch::{FaultSet, SwitchFault};

    fn exhaustive_match(net: &Network) {
        let flat = domino_to_switch(net).expect("domino network flattens");
        let n = net.primary_inputs().len();
        assert!(n <= 12, "test helper limited to small nets");
        for w in 0..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (w >> i) & 1 == 1).collect();
            let expect = net.eval(&bits);
            let mut sim = Sim::new(&flat.circuit);
            let got = flat.evaluate(&mut sim, w);
            let got_bool: Vec<bool> = got
                .iter()
                .map(|l| l.to_bool().unwrap_or_else(|| panic!("X at word {w}")))
                .collect();
            assert_eq!(got_bool, expect, "word {w:b}");
        }
    }

    #[test]
    fn tree_flattens_and_matches() {
        exhaustive_match(&and_or_tree(2));
        exhaustive_match(&and_or_tree(3));
    }

    #[test]
    fn carry_chain_flattens_and_matches() {
        exhaustive_match(&carry_chain(3));
    }

    #[test]
    fn fig9_single_cell_flattens() {
        exhaustive_match(&single_cell_network(fig9_cell()));
    }

    #[test]
    fn random_networks_flatten_and_match() {
        for seed in [3u64, 17, 99] {
            let net = random_domino_network(seed, 4, 6);
            if net.primary_inputs().len() <= 10 {
                exhaustive_match(&net);
            }
        }
    }

    #[test]
    fn transistor_count_formula() {
        // Per gate: T1 + T2 + 2 inverter fets + one fet per literal.
        let net = and_or_tree(2);
        let flat = domino_to_switch(&net).expect("flattens");
        let expect: usize = net
            .gates()
            .iter()
            .map(|g| 4 + net.cells()[g.cell].switch_count())
            .sum();
        assert_eq!(flat.circuit.transistors().len(), expect);
    }

    #[test]
    fn network_level_fault_matches_library_prediction() {
        // Stuck-open on the first SN transistor of the first gate of the
        // tree: gate0 = x0&x1 degrades to constant 0 at its output; the
        // network output becomes x2&x3 (through the OR).
        let net = and_or_tree(2);
        let flat = domino_to_switch(&net).expect("flattens");
        let mut faults = FaultSet::new();
        faults.inject(SwitchFault::StuckOpen(flat.gates[0].sn_sites[0]));
        for w in 0..16u64 {
            let mut sim = Sim::with_faults(&flat.circuit, faults.clone());
            let out = flat.evaluate(&mut sim, w)[0];
            let x2x3 = (w >> 2) & 1 == 1 && (w >> 3) & 1 == 1;
            assert_eq!(out, Logic::from_bool(x2x3), "word {w:04b}");
        }
    }

    #[test]
    fn multi_gate_fault_is_still_combinational() {
        // The section-3 theorem at network scale: history independence
        // with a faulty gate inside a multi-gate circuit.
        let net = and_or_tree(2);
        let flat = domino_to_switch(&net).expect("flattens");
        let mut faults = FaultSet::new();
        faults.inject(SwitchFault::StuckClosed(flat.gates[1].sn_sites[1]));
        for w in 0..16u64 {
            let mut outs = Vec::new();
            for history in [0u64, 15, !w & 15] {
                let mut sim = Sim::with_faults(&flat.circuit, faults.clone());
                flat.evaluate(&mut sim, 15); // A2 conditioning
                flat.evaluate(&mut sim, 0);
                flat.evaluate(&mut sim, history);
                outs.push(flat.evaluate(&mut sim, w)[0]);
            }
            assert!(
                outs.windows(2).all(|p| p[0] == p[1]),
                "history dependence at {w:04b}: {outs:?}"
            );
        }
    }

    #[test]
    fn rejects_non_domino_networks() {
        let net = crate::generate::c17_dynamic_nmos();
        let err = domino_to_switch(&net).unwrap_err();
        assert!(matches!(err, ToSwitchError::NotDomino { .. }));
        assert!(err.to_string().contains("dynamic-nMOS"));
    }
}
