//! Parser for full cell descriptions (the paper's Fig. 9 syntax).
//!
//! ```text
//! TECHNOLOGY domino-CMOS;
//! INPUT a,b,c,d,e;
//! OUTPUT u;
//! x1 := a*(b+c);
//! x2 := d*e;
//! u  := x1+x2;
//! ```
//!
//! Keywords are case-insensitive; `--` starts a line comment.

use crate::cell::{Cell, CellDescription, CompileCellError};
use crate::tech::Technology;
use std::error::Error;
use std::fmt;

/// Error from [`parse_cell`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseCellError {
    /// A required section (`TECHNOLOGY`, `INPUT`, `OUTPUT`) is missing.
    MissingSection(&'static str),
    /// A section appeared twice.
    DuplicateSection(&'static str),
    /// Technology keyword unknown.
    BadTechnology(String),
    /// A line could not be parsed.
    BadLine(String),
    /// The description parsed but did not compile.
    Compile(CompileCellError),
}

impl fmt::Display for ParseCellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCellError::MissingSection(s) => write!(f, "missing {s} section"),
            ParseCellError::DuplicateSection(s) => write!(f, "duplicate {s} section"),
            ParseCellError::BadTechnology(t) => write!(f, "unknown technology '{t}'"),
            ParseCellError::BadLine(l) => write!(f, "cannot parse line '{l}'"),
            ParseCellError::Compile(e) => write!(f, "compile error: {e}"),
        }
    }
}

impl Error for ParseCellError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseCellError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileCellError> for ParseCellError {
    fn from(e: CompileCellError) -> Self {
        ParseCellError::Compile(e)
    }
}

/// Parses and compiles a cell description in the paper's syntax.
///
/// # Errors
///
/// Returns [`ParseCellError`] on malformed text or a description that
/// fails to compile (see [`CellDescription::compile`]).
///
/// # Example
///
/// ```
/// use dynmos_netlist::parse_cell;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cell = parse_cell(
///     "and2",
///     "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a*b;",
/// )?;
/// assert_eq!(cell.switch_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_cell(name: &str, text: &str) -> Result<Cell, ParseCellError> {
    let desc = parse_description(name, text)?;
    Ok(desc.compile()?)
}

/// Parses a cell description without compiling it.
///
/// # Errors
///
/// Returns [`ParseCellError`] on malformed text.
pub fn parse_description(name: &str, text: &str) -> Result<CellDescription, ParseCellError> {
    let mut technology: Option<Technology> = None;
    let mut inputs: Option<Vec<String>> = None;
    let mut output: Option<String> = None;
    let mut assignments: Vec<(String, String)> = Vec::new();

    // Statements are ';'-separated; strip comments first.
    let cleaned: String = text
        .lines()
        .map(|l| match l.find("--") {
            Some(i) => &l[..i],
            None => l,
        })
        .collect::<Vec<_>>()
        .join("\n");

    for stmt in cleaned.split(';') {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let upper = stmt.to_ascii_uppercase();
        if let Some(rest) = strip_keyword(stmt, &upper, "TECHNOLOGY") {
            if technology.is_some() {
                return Err(ParseCellError::DuplicateSection("TECHNOLOGY"));
            }
            technology = Some(
                rest.trim()
                    .parse()
                    .map_err(|_| ParseCellError::BadTechnology(rest.trim().into()))?,
            );
        } else if let Some(rest) = strip_keyword(stmt, &upper, "INPUT") {
            if inputs.is_some() {
                return Err(ParseCellError::DuplicateSection("INPUT"));
            }
            let names: Vec<String> = rest
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect();
            inputs = Some(names);
        } else if let Some(rest) = strip_keyword(stmt, &upper, "OUTPUT") {
            if output.is_some() {
                return Err(ParseCellError::DuplicateSection("OUTPUT"));
            }
            output = Some(rest.trim().to_owned());
        } else if let Some((target, rhs)) = stmt.split_once(":=") {
            assignments.push((target.trim().to_owned(), rhs.trim().to_owned()));
        } else {
            return Err(ParseCellError::BadLine(stmt.to_owned()));
        }
    }

    Ok(CellDescription {
        name: name.to_owned(),
        technology: technology.ok_or(ParseCellError::MissingSection("TECHNOLOGY"))?,
        inputs: inputs.ok_or(ParseCellError::MissingSection("INPUT"))?,
        output: output.ok_or(ParseCellError::MissingSection("OUTPUT"))?,
        assignments,
    })
}

/// If `upper` starts with `keyword` followed by whitespace, returns the
/// remainder of the original-case `stmt`.
fn strip_keyword<'a>(stmt: &'a str, upper: &str, keyword: &str) -> Option<&'a str> {
    if upper.starts_with(keyword) {
        let rest = &stmt[keyword.len()..];
        if rest.starts_with(char::is_whitespace) || rest.is_empty() {
            return Some(rest);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG9: &str = "TECHNOLOGY domino-CMOS;
INPUT a,b,c,d,e;
OUTPUT u;
x1 := a*(b+c);
x2 := d*e;
u := x1+x2;
";

    #[test]
    fn parses_the_paper_example_verbatim() {
        let cell = parse_cell("fig9", FIG9).unwrap();
        assert_eq!(cell.technology(), Technology::DominoCmos);
        assert_eq!(cell.input_count(), 5);
        assert_eq!(cell.output_name(), "u");
        assert_eq!(cell.switch_count(), 5);
    }

    #[test]
    fn single_line_description() {
        let cell = parse_cell(
            "nor2",
            "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a+b;",
        )
        .unwrap();
        // dynamic nMOS: z = /(a+b) — a NOR.
        let f = cell.logic_function();
        assert!(f.eval_word(0b00));
        assert!(!f.eval_word(0b01));
    }

    #[test]
    fn comments_are_stripped() {
        let text = "TECHNOLOGY bipolar; -- the technology\nINPUT a; OUTPUT z;\n-- whole line comment\nz := a;";
        let cell = parse_cell("buf", text).unwrap();
        assert_eq!(cell.technology(), Technology::Bipolar);
    }

    #[test]
    fn keywords_case_insensitive() {
        let cell = parse_cell(
            "c",
            "technology domino-CMOS; input a,b; output z; z := a*b;",
        )
        .unwrap();
        assert_eq!(cell.input_count(), 2);
    }

    #[test]
    fn missing_sections_error() {
        assert_eq!(
            parse_cell("x", "INPUT a; OUTPUT z; z := a;").unwrap_err(),
            ParseCellError::MissingSection("TECHNOLOGY")
        );
        assert_eq!(
            parse_cell("x", "TECHNOLOGY bipolar; OUTPUT z; z := 1;").unwrap_err(),
            ParseCellError::MissingSection("INPUT")
        );
        assert_eq!(
            parse_cell("x", "TECHNOLOGY bipolar; INPUT a; a2 := a;").unwrap_err(),
            ParseCellError::MissingSection("OUTPUT")
        );
    }

    #[test]
    fn duplicate_sections_error() {
        let e = parse_cell(
            "x",
            "TECHNOLOGY bipolar; TECHNOLOGY bipolar; INPUT a; OUTPUT z; z := a;",
        )
        .unwrap_err();
        assert_eq!(e, ParseCellError::DuplicateSection("TECHNOLOGY"));
    }

    #[test]
    fn bad_technology_errors() {
        let e = parse_cell("x", "TECHNOLOGY ttl; INPUT a; OUTPUT z; z := a;").unwrap_err();
        assert!(matches!(e, ParseCellError::BadTechnology(_)));
    }

    #[test]
    fn bad_line_errors() {
        let e = parse_cell("x", "TECHNOLOGY bipolar; INPUT a; OUTPUT z; z = a;").unwrap_err();
        assert!(matches!(e, ParseCellError::BadLine(_)));
        assert!(e.to_string().contains("z = a"));
    }

    #[test]
    fn compile_errors_are_wrapped() {
        let e = parse_cell("x", "TECHNOLOGY bipolar; INPUT a; OUTPUT z; z := q;").unwrap_err();
        assert!(matches!(e, ParseCellError::Compile(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn parse_description_keeps_assignment_order() {
        let d = parse_description("fig9", FIG9).unwrap();
        let targets: Vec<&str> = d.assignments.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(targets, vec!["x1", "x2", "u"]);
    }
}
