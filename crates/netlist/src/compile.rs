//! Compiled pattern-parallel evaluation: instruction tapes, reusable
//! packed evaluators, and fault-cone incremental faulty simulation.
//!
//! # Why
//!
//! Every PROTEST stage — exact enumeration, Monte Carlo estimation and
//! validating fault simulation — funnels through packed network
//! evaluation. The original path interpreted a [`Bexpr`] AST per gate per
//! batch, cloning each gate's logic function on every visit and
//! allocating a fresh value vector per call. This module lowers the
//! network **once**, at [`crate::NetworkBuilder::finish`] time, into a
//! flat instruction tape that a tight word-parallel loop executes with no
//! AST traversal, no cloning and no per-call allocation.
//!
//! # Tape format
//!
//! The tape is a struct-of-arrays program (`opcode`, operand slots `a`,
//! `b`, destination `dst`) over a flat array of *value slots*:
//!
//! * slot `i` for `i < net_count` holds the value of net `i` (so the
//!   result array doubles as the all-nets evaluation the estimators
//!   need);
//! * slots `net_count..` form a scratch region shared by all gates for
//!   intermediate sub-expression values. Sharing is safe because each
//!   gate's tape slice writes a scratch slot before reading it, so every
//!   slice is independently replayable.
//!
//! Gate tapes are concatenated in topological order; `gate_slice[p]`
//! records the half-open instruction range of the gate at topological
//! position `p`. Each slot holds `width` consecutive `u64` words, so one
//! pass evaluates `width × 64` patterns (64 for the common `width = 1`).
//!
//! # Fault cones
//!
//! For serial-fault simulation the faulty machine differs from the good
//! machine only in the transitive fanout cone of the fault site. At build
//! time this module precomputes, for every gate, the topological
//! positions of its fanout cone and the primary outputs the cone reaches;
//! and for every net, the same data for the net's *readers* (the cone
//! that matters when the net itself is forced, since the driver's own
//! computation is overridden). [`PackedEvaluator::fault_diff64`] then
//! copies nothing but the fault site, replays only the cone's tape
//! slices, compares only the reachable outputs, and restores the touched
//! slots — `O(cone)` per fault instead of `O(network)`.

use crate::network::{GateInstance, GateRef, NetId, Network, NetworkFault};
use dynmos_logic::{Bexpr, VarId};

/// Opcodes of the compiled tape. All operate on packed `u64` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// `dst = 0`
    Const0,
    /// `dst = !0`
    Const1,
    /// `dst = a`
    Copy,
    /// `dst = !a`
    Not,
    /// `dst = a & b`
    And,
    /// `dst = a | b`
    Or,
}

/// Struct-of-arrays instruction tape.
#[derive(Debug, Clone, Default)]
struct Tape {
    op: Vec<Op>,
    a: Vec<u32>,
    b: Vec<u32>,
    dst: Vec<u32>,
}

impl Tape {
    fn len(&self) -> u32 {
        self.op.len() as u32
    }

    fn push(&mut self, op: Op, a: u32, b: u32, dst: u32) {
        self.op.push(op);
        self.a.push(a);
        self.b.push(b);
        self.dst.push(dst);
    }

    /// Executes instructions `range` over `values`, each slot `width`
    /// words wide.
    fn execute(&self, range: std::ops::Range<usize>, values: &mut [u64], width: usize) {
        if width == 1 {
            // Zipped iteration lets the tape arrays stream without bounds
            // checks; only the slot accesses stay checked.
            let iter = self.op[range.clone()]
                .iter()
                .zip(&self.a[range.clone()])
                .zip(&self.b[range.clone()])
                .zip(&self.dst[range]);
            for (((&op, &a), &b), &d) in iter {
                let (a, b, d) = (a as usize, b as usize, d as usize);
                values[d] = match op {
                    Op::Const0 => 0,
                    Op::Const1 => !0,
                    Op::Copy => values[a],
                    Op::Not => !values[a],
                    Op::And => values[a] & values[b],
                    Op::Or => values[a] | values[b],
                };
            }
            return;
        }
        for i in range {
            let (a, b, d) = (
                self.a[i] as usize * width,
                self.b[i] as usize * width,
                self.dst[i] as usize * width,
            );
            match self.op[i] {
                Op::Const0 => values[d..d + width].fill(0),
                Op::Const1 => values[d..d + width].fill(!0),
                Op::Copy => {
                    for w in 0..width {
                        values[d + w] = values[a + w];
                    }
                }
                Op::Not => {
                    for w in 0..width {
                        values[d + w] = !values[a + w];
                    }
                }
                Op::And => {
                    for w in 0..width {
                        values[d + w] = values[a + w] & values[b + w];
                    }
                }
                Op::Or => {
                    for w in 0..width {
                        values[d + w] = values[a + w] | values[b + w];
                    }
                }
            }
        }
    }
}

/// Lowers `expr` onto `tape`, writing the final value to slot `dst`.
///
/// `input_slot` maps the expression's variables to value slots. Scratch
/// slots are allocated from `scratch` upward; returns the high-water
/// scratch mark.
fn lower_into(
    tape: &mut Tape,
    expr: &Bexpr,
    input_slot: &dyn Fn(VarId) -> u32,
    dst: u32,
    scratch: u32,
) -> u32 {
    match expr {
        Bexpr::Const(false) => {
            tape.push(Op::Const0, 0, 0, dst);
            scratch
        }
        Bexpr::Const(true) => {
            tape.push(Op::Const1, 0, 0, dst);
            scratch
        }
        Bexpr::Var(v) => {
            tape.push(Op::Copy, input_slot(*v), 0, dst);
            scratch
        }
        Bexpr::Not(inner) => {
            let (slot, high) = lower_operand(tape, inner, input_slot, scratch);
            tape.push(Op::Not, slot, 0, dst);
            high
        }
        Bexpr::And(terms) | Bexpr::Or(terms) => {
            let op = if matches!(expr, Bexpr::And(_)) {
                Op::And
            } else {
                Op::Or
            };
            // The n-ary constructors flatten below two terms, but a
            // hand-built expression may still carry the degenerate forms.
            match terms.len() {
                0 => {
                    let identity = if op == Op::And {
                        Op::Const1
                    } else {
                        Op::Const0
                    };
                    tape.push(identity, 0, 0, dst);
                    return scratch;
                }
                1 => return lower_into(tape, &terms[0], input_slot, dst, scratch),
                _ => {}
            }
            let mut high = scratch;
            // Left-fold the chain. The accumulator lives in slot
            // `scratch`; each operand slot is dead once folded, so it is
            // reused across iterations — scratch usage is bounded by
            // expression *depth*, not operand count. The first operand
            // may itself occupy `scratch + 1`, so only the first fold
            // step lowers its right-hand side one slot higher.
            let (first, h) = lower_operand(tape, &terms[0], input_slot, scratch + 1);
            high = high.max(h);
            let mut acc = first;
            for (k, term) in terms[1..].iter().enumerate() {
                let last = k == terms.len() - 2;
                let rhs_base = if k == 0 { scratch + 2 } else { scratch + 1 };
                let (rhs, h) = lower_operand(tape, term, input_slot, rhs_base);
                high = high.max(h);
                let target = if last { dst } else { scratch };
                tape.push(op, acc, rhs, target);
                acc = target;
            }
            high
        }
    }
}

/// Lowers `expr` as an operand: variables are referenced in place, other
/// shapes evaluate into a fresh scratch slot. Returns `(slot, high)`.
fn lower_operand(
    tape: &mut Tape,
    expr: &Bexpr,
    input_slot: &dyn Fn(VarId) -> u32,
    scratch: u32,
) -> (u32, u32) {
    match expr {
        Bexpr::Var(v) => (input_slot(*v), scratch),
        _ => {
            let high = lower_into(tape, expr, input_slot, scratch, scratch + 1);
            (scratch, high)
        }
    }
}

/// The compiled form of a [`Network`], built once at
/// [`crate::NetworkBuilder::finish`] time.
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    net_count: u32,
    /// Total slots: nets plus the shared scratch region.
    slot_count: u32,
    tape: Tape,
    /// Instruction range per topological position.
    gate_slice: Vec<(u32, u32)>,
    /// Output net slot per topological position.
    gate_output: Vec<u32>,
    /// Gate index → topological position.
    gate_pos: Vec<u32>,
    /// Per gate index: topological positions of the transitive fanout
    /// cone, **including the gate itself**, ascending.
    gate_cone: Vec<Box<[u32]>>,
    /// Per gate index: primary-output indices reachable from the cone.
    gate_cone_pos: Vec<Box<[u32]>>,
    /// Per net: topological positions of the reader cone (gates that read
    /// the net, transitively; excludes the net's driver), ascending.
    net_cone: Vec<Box<[u32]>>,
    /// Per net: primary-output indices affected when the net is forced.
    net_cone_pos: Vec<Box<[u32]>>,
    /// Primary-output net slots in declaration order.
    po_slots: Vec<u32>,
    /// Primary-input net slots in declaration order.
    pi_slots: Vec<u32>,
}

/// Word-level dense bitset over gate topological positions.
fn bitset_blocks(n: usize) -> usize {
    n.div_ceil(64)
}

// Thread-safety audit: the parallel fault simulator
// (`dynmos_protest::parallel`) shares `&Network` and `&PreparedFault`
// across scoped threads, each worker owning its own `PackedEvaluator`.
// That is sound because a finished network and its compiled form are
// immutable owned data with no interior mutability. These assertions turn
// an accidental `Rc`/`RefCell`/raw-pointer regression into a compile
// error instead of a data race.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Network>();
    assert_send_sync::<CompiledNetwork>();
    assert_send_sync::<PreparedFault<'static>>();
};

impl CompiledNetwork {
    /// Compiles the network parts. Called by the network builder; the
    /// fields mirror [`Network`]'s internals.
    pub(crate) fn build(
        cells: &[crate::cell::Cell],
        gates: &[GateInstance],
        net_count: usize,
        topo: &[GateRef],
        primary_inputs: &[NetId],
        primary_outputs: &[NetId],
    ) -> Self {
        let mut tape = Tape::default();
        let mut gate_slice = Vec::with_capacity(topo.len());
        let mut gate_output = Vec::with_capacity(topo.len());
        let mut gate_pos = vec![0u32; gates.len()];
        let mut max_scratch = 0u32;
        let scratch_base = net_count as u32;
        for (pos, &g) in topo.iter().enumerate() {
            gate_pos[g.index()] = pos as u32;
            let inst = &gates[g.index()];
            let function = cells[inst.cell].logic_function();
            let start = tape.len();
            let inputs = &inst.inputs;
            let high = lower_into(
                &mut tape,
                &function,
                &|v: VarId| inputs[v.index()].index() as u32,
                inst.output.index() as u32,
                scratch_base,
            );
            max_scratch = max_scratch.max(high - scratch_base);
            gate_slice.push((start, tape.len()));
            gate_output.push(inst.output.index() as u32);
        }

        // Transitive fanout cones over a dense bitset, in reverse
        // topological order: cone(g) = {g} ∪ ⋃ cone(readers of g's out).
        let n_gates = topo.len();
        let blocks = bitset_blocks(n_gates);
        // Readers of each net, as topological positions.
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); net_count];
        for (pos, &g) in topo.iter().enumerate() {
            for &input in &gates[g.index()].inputs {
                readers[input.index()].push(pos as u32);
            }
        }
        let mut cone_bits = vec![0u64; n_gates * blocks];
        for pos in (0..n_gates).rev() {
            let out = gates[topo[pos].index()].output.index();
            // Split so the union source blocks can be borrowed while the
            // target row is written.
            for &r in &readers[out] {
                let (lo, hi) = cone_bits.split_at_mut(r as usize * blocks);
                let src = &hi[..blocks];
                let row = &mut lo[pos * blocks..pos * blocks + blocks];
                for (d, s) in row.iter_mut().zip(src) {
                    *d |= s;
                }
            }
            cone_bits[pos * blocks + pos / 64] |= 1u64 << (pos % 64);
        }
        let positions_of = |bits: &[u64]| -> Box<[u32]> {
            let mut out = Vec::new();
            for (bi, &word) in bits.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let tz = w.trailing_zeros();
                    out.push(bi as u32 * 64 + tz);
                    w &= w - 1;
                }
            }
            out.into_boxed_slice()
        };
        let po_index_of_net = |net: usize| -> Option<u32> {
            primary_outputs
                .iter()
                .position(|po| po.index() == net)
                .map(|i| i as u32)
        };
        let pos_of_cone = |cone: &[u32], extra_net: Option<usize>| -> Box<[u32]> {
            let mut pos: Vec<u32> = Vec::new();
            if let Some(net) = extra_net {
                if let Some(i) = po_index_of_net(net) {
                    pos.push(i);
                }
            }
            for &p in cone {
                let out = gates[topo[p as usize].index()].output.index();
                if let Some(i) = po_index_of_net(out) {
                    pos.push(i);
                }
            }
            pos.sort_unstable();
            pos.dedup();
            pos.into_boxed_slice()
        };

        let mut gate_cone = vec![Box::<[u32]>::default(); gates.len()];
        let mut gate_cone_pos = vec![Box::<[u32]>::default(); gates.len()];
        for (pos, &g) in topo.iter().enumerate() {
            let cone = positions_of(&cone_bits[pos * blocks..(pos + 1) * blocks]);
            gate_cone_pos[g.index()] = pos_of_cone(&cone, None);
            gate_cone[g.index()] = cone;
        }
        let mut net_cone = Vec::with_capacity(net_count);
        let mut net_cone_pos = Vec::with_capacity(net_count);
        let mut scratch_bits = vec![0u64; blocks];
        for (net, net_readers) in readers.iter().enumerate() {
            scratch_bits.fill(0);
            for &r in net_readers {
                let src = &cone_bits[r as usize * blocks..(r as usize + 1) * blocks];
                for (d, s) in scratch_bits.iter_mut().zip(src) {
                    *d |= s;
                }
            }
            let cone = positions_of(&scratch_bits);
            net_cone_pos.push(pos_of_cone(&cone, Some(net)));
            net_cone.push(cone);
        }

        Self {
            net_count: net_count as u32,
            slot_count: net_count as u32 + max_scratch,
            tape,
            gate_slice,
            gate_output,
            gate_pos,
            gate_cone,
            gate_cone_pos,
            net_cone,
            net_cone_pos,
            po_slots: primary_outputs.iter().map(|n| n.index() as u32).collect(),
            pi_slots: primary_inputs.iter().map(|n| n.index() as u32).collect(),
        }
    }

    /// Number of tape instructions (a size metric for benches and tests).
    pub fn instruction_count(&self) -> usize {
        self.tape.op.len()
    }

    /// Number of value slots an evaluator allocates per lane word.
    pub fn slot_count(&self) -> usize {
        self.slot_count as usize
    }

    /// The topological positions of gate `g`'s transitive fanout cone
    /// (including `g` itself).
    pub fn fanout_cone(&self, g: GateRef) -> &[u32] {
        &self.gate_cone[g.index()]
    }

    /// Primary-output indices reachable from gate `g`.
    pub fn reachable_outputs(&self, g: GateRef) -> &[u32] {
        &self.gate_cone_pos[g.index()]
    }

    /// Binds `fault` to its precomputed cone and, for gate-function
    /// faults, lowers the faulty function to a private tape. Prepare once
    /// per fault, evaluate per batch.
    ///
    /// # Panics
    ///
    /// Panics if a gate-function fault references a variable beyond its
    /// gate's input count (the same misuse the interpreter rejects).
    pub fn prepare<'n>(&'n self, net: &'n Network, fault: &NetworkFault) -> PreparedFault<'n> {
        match fault {
            NetworkFault::NetStuck(n, v) => PreparedFault {
                kind: PreparedKind::Stuck {
                    slot: n.index() as u32,
                    value: *v,
                },
                cone: &self.net_cone[n.index()],
                outputs: &self.net_cone_pos[n.index()],
            },
            NetworkFault::GateFunction(g, f) => {
                let inst = &net.gates()[g.index()];
                let arity = inst.inputs.len();
                if let Some(max) = f.support().last() {
                    assert!(
                        max.index() < arity,
                        "faulty function references input {max} beyond arity {arity}"
                    );
                }
                let mut tape = Tape::default();
                let inputs = &inst.inputs;
                let high = lower_into(
                    &mut tape,
                    f,
                    &|v: VarId| inputs[v.index()].index() as u32,
                    inst.output.index() as u32,
                    self.net_count,
                );
                PreparedFault {
                    kind: PreparedKind::GateFn {
                        pos: self.gate_pos[g.index()],
                        tape,
                        slots_needed: high,
                    },
                    cone: &self.gate_cone[g.index()],
                    outputs: &self.gate_cone_pos[g.index()],
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
enum PreparedKind {
    /// Force a net slot to a constant and replay its reader cone.
    Stuck { slot: u32, value: bool },
    /// Replace the tape slice of the gate at topological position `pos`.
    GateFn {
        pos: u32,
        tape: Tape,
        /// Exclusive slot high-water mark of the private tape (may
        /// exceed the network's shared scratch region).
        slots_needed: u32,
    },
}

/// A fault bound to its fanout cone and (for gate-function faults) a
/// compiled faulty tape. Create with [`Network::prepare_fault`] once per
/// fault; reuse across batches.
#[derive(Debug, Clone)]
pub struct PreparedFault<'n> {
    kind: PreparedKind,
    cone: &'n [u32],
    outputs: &'n [u32],
}

impl PreparedFault<'_> {
    /// Number of gates re-evaluated per batch for this fault.
    pub fn cone_size(&self) -> usize {
        self.cone.len()
    }

    /// Primary-output indices this fault can disturb. An empty slice
    /// proves the fault undetectable.
    pub fn observable_outputs(&self) -> &[u32] {
        self.outputs
    }

    /// The topological positions (ascending indices into
    /// [`Network::topo_order`]) of the gates this fault's cone replays —
    /// the same cone a symbolic engine must rebuild with the fault
    /// injected.
    pub fn cone_positions(&self) -> &[u32] {
        self.cone
    }
}

/// A reusable packed evaluator over a compiled network.
///
/// Holds the good-machine and faulty-machine value buffers so the
/// per-call allocations of the interpretive path disappear. One
/// evaluator serves one batch shape (`width × 64` patterns); callers
/// evaluate the good machine once per batch and then diff any number of
/// prepared faults against it incrementally.
///
/// # Example
///
/// ```
/// use dynmos_netlist::generate::c17_dynamic_nmos;
/// use dynmos_netlist::{PackedEvaluator, NetworkFault};
///
/// let net = c17_dynamic_nmos();
/// let fault = NetworkFault::NetStuck(net.primary_inputs()[0], true);
/// let prepared = net.prepare_fault(&fault);
/// let mut ev = PackedEvaluator::new(&net);
/// ev.eval(&[1, 2, 3, 4, 5]);
/// // Lanes where any primary output differs from the good machine:
/// let differ = ev.fault_diff64(&prepared);
/// assert_eq!(
///     differ,
///     {
///         let good = net.eval_packed(&[1, 2, 3, 4, 5]);
///         let bad = net.eval_packed_faulty(&[1, 2, 3, 4, 5], Some(&fault));
///         good.iter().zip(&bad).fold(0, |acc, (g, b)| acc | (g ^ b))
///     }
/// );
/// ```
#[derive(Debug)]
pub struct PackedEvaluator<'n> {
    net: &'n Network,
    width: usize,
    /// Good-machine slot values, slot-major (`slot * width + w`).
    good: Vec<u64>,
    /// Faulty-machine buffer; net slots mirror `good` between faults.
    faulty: Vec<u64>,
    /// Whether `faulty`'s net slots currently mirror `good`.
    synced: bool,
}

impl<'n> PackedEvaluator<'n> {
    /// An evaluator with one word per slot (64 patterns per pass).
    pub fn new(net: &'n Network) -> Self {
        Self::with_width(net, 1)
    }

    /// An evaluator with `width` words per slot (`width × 64` patterns
    /// per pass).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn with_width(net: &'n Network, width: usize) -> Self {
        assert!(width > 0, "need at least one lane word");
        let slots = net.compiled().slot_count() * width;
        Self {
            net,
            width,
            good: vec![0; slots],
            faulty: vec![0; slots],
            synced: false,
        }
    }

    /// Words per slot.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Evaluates the good machine on one batch. `pi_words` is
    /// input-major: `width` consecutive words per primary input, in
    /// declaration order. Returns the net values (`net_count × width`
    /// words, slot-major).
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != primary_inputs × width`.
    pub fn eval(&mut self, pi_words: &[u64]) -> &[u64] {
        let c = self.net.compiled();
        assert_eq!(
            pi_words.len(),
            c.pi_slots.len() * self.width,
            "need {} packed words per primary input",
            self.width
        );
        for (i, &slot) in c.pi_slots.iter().enumerate() {
            let d = slot as usize * self.width;
            self.good[d..d + self.width]
                .copy_from_slice(&pi_words[i * self.width..(i + 1) * self.width]);
        }
        self.synced = false;
        c.tape
            .execute(0..c.tape.op.len(), &mut self.good, self.width);
        &self.good[..c.net_count as usize * self.width]
    }

    /// The net values of the last [`Self::eval`] call.
    pub fn net_values(&self) -> &[u64] {
        &self.good[..self.net.compiled().net_count as usize * self.width]
    }

    /// The packed good-machine value of primary output `po_index`, lane
    /// word `w`.
    pub fn po_word(&self, po_index: usize, w: usize) -> u64 {
        let c = self.net.compiled();
        self.good[c.po_slots[po_index] as usize * self.width + w]
    }

    fn sync_faulty(&mut self) {
        if !self.synced {
            let nets = self.net.compiled().net_count as usize * self.width;
            self.faulty[..nets].copy_from_slice(&self.good[..nets]);
            self.synced = true;
        }
    }

    fn inject_and_replay(&mut self, fault: &PreparedFault<'_>) {
        let c = self.net.compiled();
        let width = self.width;
        self.sync_faulty();
        let mut fault_pos = u32::MAX;
        let mut fault_tape: Option<&Tape> = None;
        match &fault.kind {
            PreparedKind::Stuck { slot, value } => {
                let d = *slot as usize * width;
                self.faulty[d..d + width].fill(if *value { !0 } else { 0 });
            }
            PreparedKind::GateFn {
                pos,
                tape,
                slots_needed,
            } => {
                let need = *slots_needed as usize * width;
                if self.faulty.len() < need {
                    self.faulty.resize(need, 0);
                }
                fault_pos = *pos;
                fault_tape = Some(tape);
            }
        }
        for &p in fault.cone {
            if p == fault_pos {
                let tape = fault_tape.expect("fault position implies a tape");
                tape.execute(0..tape.op.len(), &mut self.faulty, width);
            } else {
                let (start, end) = c.gate_slice[p as usize];
                c.tape
                    .execute(start as usize..end as usize, &mut self.faulty, width);
            }
        }
    }

    fn restore(&mut self, fault: &PreparedFault<'_>) {
        let c = self.net.compiled();
        let width = self.width;
        if let PreparedKind::Stuck { slot, .. } = &fault.kind {
            let d = *slot as usize * width;
            self.faulty[d..d + width].copy_from_slice(&self.good[d..d + width]);
        }
        for &p in fault.cone {
            let d = c.gate_output[p as usize] as usize * width;
            self.faulty[d..d + width].copy_from_slice(&self.good[d..d + width]);
        }
    }

    /// Replays `fault`'s cone against the last evaluated batch and
    /// returns, for each lane word, the OR over all primary outputs of
    /// `good XOR faulty` — bit `k` set means pattern `k` detects the
    /// fault. `out.len()` must equal [`Self::width`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.width()`.
    pub fn fault_diff(&mut self, fault: &PreparedFault<'_>, out: &mut [u64]) {
        assert_eq!(out.len(), self.width, "need one output word per lane word");
        self.inject_and_replay(fault);
        let c = self.net.compiled();
        let width = self.width;
        out.fill(0);
        for &po in fault.outputs {
            let d = c.po_slots[po as usize] as usize * width;
            for (w, o) in out.iter_mut().enumerate() {
                *o |= self.good[d + w] ^ self.faulty[d + w];
            }
        }
        self.restore(fault);
    }

    /// [`Self::fault_diff`] for the common `width == 1` evaluator.
    ///
    /// # Panics
    ///
    /// Panics if the evaluator was built with `width != 1`.
    pub fn fault_diff64(&mut self, fault: &PreparedFault<'_>) -> u64 {
        assert_eq!(self.width, 1, "fault_diff64 requires a width-1 evaluator");
        self.inject_and_replay(fault);
        let c = self.net.compiled();
        let mut differ = 0u64;
        for &po in fault.outputs {
            let d = c.po_slots[po as usize] as usize;
            differ |= self.good[d] ^ self.faulty[d];
        }
        self.restore(fault);
        differ
    }

    /// Evaluates the faulty machine for *all* nets: replays the cone and
    /// returns the full net-value slice (cone nets faulty, the rest equal
    /// to the good machine — which is exactly what an unobservable net
    /// is). The buffer is left dirty and re-synced on the next use.
    pub fn eval_faulty_all(&mut self, fault: &PreparedFault<'_>) -> &[u64] {
        self.inject_and_replay(fault);
        self.synced = false;
        &self.faulty[..self.net.compiled().net_count as usize * self.width]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{
        and_or_tree, c17_dynamic_nmos, domino_wide_and, fig9_cell, random_domino_network,
        single_cell_network,
    };
    use crate::network::NetworkFault;
    use dynmos_logic::Bexpr;

    /// All faults of a network in the fault-list shape the tests need.
    fn all_faults(net: &Network) -> Vec<NetworkFault> {
        let mut faults = Vec::new();
        for &pi in net.primary_inputs() {
            faults.push(NetworkFault::NetStuck(pi, false));
            faults.push(NetworkFault::NetStuck(pi, true));
        }
        for g in net.gates() {
            faults.push(NetworkFault::NetStuck(g.output, false));
            faults.push(NetworkFault::NetStuck(g.output, true));
        }
        for (gi, _) in net.gates().iter().enumerate() {
            let g = GateRef(gi as u32);
            faults.push(NetworkFault::GateFunction(g, Bexpr::FALSE));
            faults.push(NetworkFault::GateFunction(g, Bexpr::TRUE));
            faults.push(NetworkFault::GateFunction(
                g,
                Bexpr::var(dynmos_logic::VarId(0)),
            ));
        }
        faults
    }

    fn batch_for(seed: u64, n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| {
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            })
            .collect()
    }

    #[test]
    fn compiled_good_eval_matches_reference() {
        for seed in 0..50 {
            let net = random_domino_network(seed, 4, 6);
            let n = net.primary_inputs().len();
            let batch = batch_for(seed, n);
            let reference = net.eval_packed_all_reference(&batch, None);
            let mut ev = PackedEvaluator::new(&net);
            let compiled = ev.eval(&batch);
            assert_eq!(compiled, &reference[..], "seed {seed}");
        }
    }

    #[test]
    fn compiled_faulty_eval_matches_reference_all_nets() {
        for seed in 0..30 {
            let net = random_domino_network(seed, 4, 6);
            let n = net.primary_inputs().len();
            let batch = batch_for(seed, n);
            let mut ev = PackedEvaluator::new(&net);
            ev.eval(&batch);
            for fault in all_faults(&net) {
                let reference = net.eval_packed_all_reference(&batch, Some(&fault));
                let prepared = net.prepare_fault(&fault);
                let faulty = ev.eval_faulty_all(&prepared).to_vec();
                // Cone nets must match exactly; non-cone nets equal the
                // good machine in both paths.
                assert_eq!(faulty, reference, "seed {seed} fault {fault:?}");
                // Buffer must resync for the next fault.
                ev.eval(&batch);
            }
        }
    }

    #[test]
    fn fault_diff_matches_full_po_comparison() {
        for seed in 0..30 {
            let net = random_domino_network(seed, 4, 6);
            let n = net.primary_inputs().len();
            let batch = batch_for(seed.wrapping_add(77), n);
            let good = net.eval_packed(&batch);
            let mut ev = PackedEvaluator::new(&net);
            ev.eval(&batch);
            for fault in all_faults(&net) {
                let bad = net.eval_packed_faulty(&batch, Some(&fault));
                let expect = good
                    .iter()
                    .zip(&bad)
                    .fold(0u64, |acc, (g, b)| acc | (g ^ b));
                let prepared = net.prepare_fault(&fault);
                let got = ev.fault_diff64(&prepared);
                assert_eq!(got, expect, "seed {seed} fault {fault:?}");
            }
        }
    }

    #[test]
    fn repeated_diffs_are_stable() {
        // The restore path must leave the faulty buffer consistent, so
        // diffing the same and different faults repeatedly is idempotent.
        let net = c17_dynamic_nmos();
        let batch = batch_for(3, 5);
        let mut ev = PackedEvaluator::new(&net);
        ev.eval(&batch);
        let faults = all_faults(&net);
        let prepared: Vec<_> = faults.iter().map(|f| net.prepare_fault(f)).collect();
        let first: Vec<u64> = prepared.iter().map(|p| ev.fault_diff64(p)).collect();
        for _ in 0..3 {
            let again: Vec<u64> = prepared.iter().map(|p| ev.fault_diff64(p)).collect();
            assert_eq!(again, first);
        }
    }

    #[test]
    fn wide_lanes_match_repeated_narrow_batches() {
        let net = and_or_tree(3);
        let n = net.primary_inputs().len();
        let width = 4;
        // Four 64-lane batches, input-major wide layout.
        let narrow: Vec<Vec<u64>> = (0..width as u64).map(|w| batch_for(w + 9, n)).collect();
        let mut wide = vec![0u64; n * width];
        for (w, b) in narrow.iter().enumerate() {
            for i in 0..n {
                wide[i * width + w] = b[i];
            }
        }
        let mut ev = PackedEvaluator::with_width(&net, width);
        ev.eval(&wide);
        let fault = NetworkFault::NetStuck(net.primary_inputs()[0], true);
        let prepared = net.prepare_fault(&fault);
        let mut diff = vec![0u64; width];
        ev.fault_diff(&prepared, &mut diff);
        let mut ev1 = PackedEvaluator::new(&net);
        for (w, b) in narrow.iter().enumerate() {
            ev1.eval(b);
            assert_eq!(diff[w], ev1.fault_diff64(&prepared), "word {w}");
            for po in 0..net.primary_outputs().len() {
                assert_eq!(ev.po_word(po, w), ev1.po_word(po, 0), "word {w} po {po}");
            }
        }
    }

    #[test]
    fn cone_of_output_gate_is_itself() {
        let net = single_cell_network(fig9_cell());
        let c = net.compiled();
        assert_eq!(c.fanout_cone(GateRef(0)), &[0]);
        assert_eq!(c.reachable_outputs(GateRef(0)), &[0]);
    }

    #[test]
    fn cones_shrink_toward_outputs() {
        // In the c17 remake, a first-level gate's cone strictly contains
        // a last-level gate's cone.
        let net = c17_dynamic_nmos();
        let c = net.compiled();
        let first = net.topo_order()[0];
        let last = *net.topo_order().last().unwrap();
        assert!(c.fanout_cone(first).len() > 1);
        assert_eq!(c.fanout_cone(last).len(), 1);
    }

    #[test]
    fn undetectable_site_has_no_observable_outputs() {
        // A gate feeding only primary outputs through itself: every fault
        // site in a single-cell network observes output 0.
        let net = single_cell_network(domino_wide_and(4));
        for fault in all_faults(&net) {
            let p = net.prepare_fault(&fault);
            assert!(!p.observable_outputs().is_empty(), "{fault:?}");
        }
    }

    #[test]
    fn instruction_count_scales_with_literals() {
        let net = single_cell_network(domino_wide_and(8));
        // A wide AND lowers to a chain of binary ANDs: 7 instructions.
        assert_eq!(net.compiled().instruction_count(), 7);
    }

    #[test]
    #[should_panic(expected = "beyond arity")]
    fn preparing_out_of_arity_gate_fault_panics() {
        let net = single_cell_network(domino_wide_and(2));
        let fault = NetworkFault::GateFunction(GateRef(0), Bexpr::var(dynmos_logic::VarId(7)));
        net.prepare_fault(&fault);
    }
}
