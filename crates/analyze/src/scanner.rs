//! A lightweight item scanner on top of the token stream: finds
//! `impl Trait for Type { … }` blocks (with the functions they define),
//! and `#[cfg(test)] mod … { … }` line ranges so zone rules can treat
//! in-file test modules as test code.

use crate::lexer::{Lexed, Token, TokenKind};

/// One `impl Trait for Type` block.
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// The trait being implemented (last path segment).
    pub trait_name: String,
    /// The implementing type (last path segment before generics).
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Names of `fn` items defined directly in the block body.
    pub fns: Vec<String>,
}

/// Inclusive 1-based line range.
#[derive(Debug, Clone, Copy)]
pub struct LineRange {
    pub start: u32,
    pub end: u32,
}

impl LineRange {
    pub fn contains(&self, line: u32) -> bool {
        line >= self.start && line <= self.end
    }
}

/// Scan results for one file.
#[derive(Debug, Default)]
pub struct Scanned {
    /// All trait impl blocks (`impl Trait for Type`).
    pub impls: Vec<ImplBlock>,
    /// Line ranges covered by `#[cfg(test)] mod … { … }`.
    pub test_ranges: Vec<LineRange>,
}

impl Scanned {
    /// `true` when `line` falls inside a `#[cfg(test)]` module.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|r| r.contains(line))
    }
}

/// Scans the token stream for impl blocks and cfg(test) modules.
pub fn scan(lexed: &Lexed) -> Scanned {
    let toks = &lexed.tokens;
    let mut out = Scanned::default();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("impl") && is_item_position(toks, i) {
            if let Some((block, next)) = parse_impl(toks, i) {
                out.impls.push(block);
                i = next;
                continue;
            }
        }
        if is_cfg_test_attr(toks, i) {
            if let Some((range, next)) = parse_cfg_test_mod(toks, i) {
                out.test_ranges.push(range);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// `impl` in item position, as opposed to `impl Trait` in type position
/// (`fn f() -> impl Iterator`). In item position the previous token is
/// nothing, a block close, a semicolon, or an attribute close.
fn is_item_position(toks: &[Token], i: usize) -> bool {
    matches!(
        i.checked_sub(1).map(|p| &toks[p].kind),
        None | Some(TokenKind::Punct('}' | ';' | ']'))
    )
}

/// Parses `impl [<…>] Path [for Path] { body }` starting at the `impl`
/// token. Returns the block (trait impls only) and the index after the
/// closing brace; inherent impls are skipped but still consumed.
fn parse_impl(toks: &[Token], start: usize) -> Option<(ImplBlock, usize)> {
    let line = toks[start].line;
    let mut i = start + 1;
    i = skip_generics(toks, i);
    let (first_path, after_first) = parse_path(toks, i)?;
    i = after_first;
    let (trait_name, type_name) = if toks.get(i).is_some_and(|t| t.is_ident("for")) {
        let (ty, after_ty) = parse_path(toks, i + 1)?;
        i = after_ty;
        (Some(first_path), ty)
    } else {
        (None, first_path)
    };
    // Skip a where-clause: scan forward to the opening brace.
    while i < toks.len() && !toks[i].is_punct('{') {
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    // Walk the body at depth 1, collecting `fn name`.
    let mut depth = 0usize;
    let mut fns = Vec::new();
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        } else if depth == 1 && toks[i].is_ident("fn") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                fns.push(name.to_owned());
            }
        }
        i += 1;
    }
    // Inherent impls are consumed but not reported.
    let trait_name = trait_name?;
    Some((
        ImplBlock {
            trait_name,
            type_name,
            line,
            fns,
        },
        i,
    ))
}

/// Skips a balanced `<…>` generics list if one starts at `i`.
fn skip_generics(toks: &[Token], mut i: usize) -> usize {
    if !toks.get(i).is_some_and(|t| t.is_punct('<')) {
        return i;
    }
    let mut depth = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('<') {
            depth += 1;
        } else if toks[i].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Parses a path like `a::b::Name<T, U>` starting at `i`; returns the
/// last plain segment (generics stripped) and the index after the path.
fn parse_path(toks: &[Token], mut i: usize) -> Option<(String, usize)> {
    let mut last = None;
    while let Some(seg) = toks.get(i).and_then(|t| t.ident()) {
        last = Some(seg.to_owned());
        i += 1;
        i = skip_generics(toks, i);
        if toks.get(i).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        {
            i += 2;
        } else {
            break;
        }
    }
    i = skip_generics(toks, i);
    last.map(|l| (l, i))
}

/// Is `#[cfg(test)]` starting at token `i`?
fn is_cfg_test_attr(toks: &[Token], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct('#'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
        && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
        && toks.get(i + 5).is_some_and(|t| t.is_punct(')'))
        && toks.get(i + 6).is_some_and(|t| t.is_punct(']'))
}

/// Parses `#[cfg(test)] mod name { … }` starting at the `#`; returns
/// the line range of the whole module and the index after its close.
/// `#[cfg(test)]` on non-mod items returns None (caller advances by 1).
fn parse_cfg_test_mod(toks: &[Token], start: usize) -> Option<(LineRange, usize)> {
    let mut i = start + 7;
    // Allow further attributes between cfg(test) and mod.
    while toks.get(i).is_some_and(|t| t.is_punct('#'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        let mut depth = 0usize;
        i += 1;
        while i < toks.len() {
            if toks[i].is_punct('[') {
                depth += 1;
            } else if toks[i].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    if !toks.get(i).is_some_and(|t| t.is_ident("mod")) {
        return None;
    }
    let start_line = toks[start].line;
    // Scan to the opening brace (a `mod name;` declaration has none).
    while i < toks.len() && !toks[i].is_punct('{') {
        if toks[i].is_punct(';') {
            return Some((
                LineRange {
                    start: start_line,
                    end: toks[i].line,
                },
                i + 1,
            ));
        }
        i += 1;
    }
    let mut depth = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some((
                    LineRange {
                        start: start_line,
                        end: toks[i].line,
                    },
                    i + 1,
                ));
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_trait_impls_and_fns() {
        let src = "impl JobKernel for FsimJob {\n fn kind(&self) -> &str { \"f\" }\n fn snapshot(&self) -> Json { Json::Null }\n}";
        let s = scan(&lex(src));
        assert_eq!(s.impls.len(), 1);
        assert_eq!(s.impls[0].trait_name, "JobKernel");
        assert_eq!(s.impls[0].type_name, "FsimJob");
        assert_eq!(s.impls[0].fns, ["kind", "snapshot"]);
    }

    #[test]
    fn skips_inherent_impls_and_return_position() {
        let src =
            "impl FsimJob { fn new() {} }\nfn f() -> impl Iterator<Item = u8> { [1].into_iter() }";
        let s = scan(&lex(src));
        assert!(s.impls.is_empty());
    }

    #[test]
    fn generic_impls() {
        let src = "impl<T: Clone> Strategy for Vec<T> where T: Send { fn go(&self) {} }";
        let s = scan(&lex(src));
        assert_eq!(s.impls.len(), 1);
        assert_eq!(s.impls[0].trait_name, "Strategy");
        assert_eq!(s.impls[0].type_name, "Vec");
        assert_eq!(s.impls[0].fns, ["go"]);
    }

    #[test]
    fn nested_fns_not_collected() {
        let src = "impl Runner for X { fn outer(&self) { fn inner() {} } }";
        let s = scan(&lex(src));
        assert_eq!(s.impls[0].fns, ["outer"]);
    }

    #[test]
    fn cfg_test_ranges() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n use super::*;\n #[test]\n fn t() { assert!(true); }\n}\nfn after() {}";
        let s = scan(&lex(src));
        assert_eq!(s.test_ranges.len(), 1);
        assert!(s.in_test_code(4));
        assert!(s.in_test_code(6));
        assert!(!s.in_test_code(1));
        assert!(!s.in_test_code(8));
    }

    #[test]
    fn cfg_test_on_fn_is_not_a_module() {
        let src = "#[cfg(test)]\nfn helper() {}\nfn real() {}";
        let s = scan(&lex(src));
        assert!(s.test_ranges.is_empty());
    }
}
