//! A hand-rolled Rust lexer: just enough tokenization for `dynlint`'s
//! lexical rules, with exact handling of the constructs that defeat
//! naive `grep`-style linting — string literals (including raw strings
//! with arbitrary `#` fences and byte strings), character literals vs.
//! lifetimes, and line/block comments (nested).
//!
//! Comments are captured separately from the token stream because the
//! suppression pragmas live in them; everything inside a string literal
//! is opaque, so a pragma-shaped substring in a string is *not* a
//! pragma (property-tested in `tests/dynlint.rs`).

/// What a token is, as far as the rules need to know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `impl`, `HashMap`, …).
    Ident(String),
    /// One punctuation character (`.`, `:`, `{`, `!`, …). Multi-char
    /// operators arrive as consecutive tokens; rules match pairs.
    Punct(char),
    /// Any string-like literal (string, raw string, byte string).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal, with its text (so rules can tell `0.0` from `0`).
    Num(String),
    /// A lifetime (`'a`).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// The token itself.
    pub kind: TokenKind,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// `true` when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// `true` when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == s)
    }
}

/// One comment (`//…` to end of line, or one `/*…*/` block).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The comment body, markers stripped (`//`/`/*`/`*/` removed,
    /// leading `/`/`!` of doc comments kept out).
    pub text: String,
    /// `true` when no token precedes the comment on its line — a
    /// standalone pragma applies to the next code line, a trailing one
    /// to its own.
    pub standalone: bool,
    /// `true` for doc comments (`///`, `//!`, `/**`, `/*!`). Pragmas
    /// are ordinary comments; docs may *illustrate* pragma syntax
    /// without being parsed as pragmas.
    pub doc: bool,
}

/// The lexed file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in order.
    pub tokens: Vec<Token>,
    /// All comments in order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The last 1-based line of any token or comment (0 for empty input).
    pub fn last_line(&self) -> u32 {
        let t = self.tokens.last().map_or(0, |t| t.line);
        let c = self.comments.last().map_or(0, |c| c.line);
        t.max(c)
    }
}

/// Lexes `source` into tokens plus comments. Unterminated constructs
/// (string, block comment) consume to end of input rather than erroring:
/// the analyzer lints real, compiling code, and resilience beats
/// strictness on the torn tail of an edited file.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
        last_token_line: 0,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
    last_token_line: u32,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, line: u32, kind: TokenKind) {
        self.last_token_line = line;
        self.out.tokens.push(Token { line, kind });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            let line = self.line;
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.string_literal();
                    self.push(line, TokenKind::Str);
                }
                'r' if self.raw_string_ahead(0) => {
                    self.bump();
                    self.raw_string();
                    self.push(line, TokenKind::Str);
                }
                'b' if self.peek_at(1) == Some('"') => {
                    self.bump();
                    self.string_literal();
                    self.push(line, TokenKind::Str);
                }
                'b' if self.peek_at(1) == Some('r') && self.raw_string_ahead(1) => {
                    self.bump();
                    self.bump();
                    self.raw_string();
                    self.push(line, TokenKind::Str);
                }
                'b' if self.peek_at(1) == Some('\'') => {
                    self.bump();
                    self.char_literal();
                    self.push(line, TokenKind::Char);
                }
                '\'' => self.quote(),
                c if c.is_ascii_digit() => {
                    let text = self.number();
                    self.push(line, TokenKind::Num(text));
                }
                c if c.is_alphanumeric() || c == '_' => {
                    let ident = self.ident();
                    self.push(line, TokenKind::Ident(ident));
                }
                other => {
                    self.bump();
                    self.push(line, TokenKind::Punct(other));
                }
            }
        }
        self.out
    }

    /// Is `r`/`br` at `pos + offset` the start of a raw string
    /// (`r"`, `r#`), as opposed to an identifier starting with `r`?
    fn raw_string_ahead(&self, offset: usize) -> bool {
        match self.peek_at(offset + 1) {
            Some('"') => true,
            Some('#') => {
                // r#ident is a raw identifier, r#" is a raw string:
                // scan the run of #s and require a quote after it.
                let mut i = offset + 1;
                while self.peek_at(i) == Some('#') {
                    i += 1;
                }
                self.peek_at(i) == Some('"')
            }
            _ => false,
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let standalone = self.last_token_line != line;
        self.bump();
        self.bump();
        // Strip doc-comment markers so `/// text` and `//! text`
        // surface as `text`, remembering that they were docs.
        let mut doc = false;
        while matches!(self.peek(), Some('/' | '!')) {
            doc = true;
            self.bump();
        }
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text: text.trim().to_owned(),
            standalone,
            doc,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let standalone = self.last_token_line != line;
        self.bump();
        self.bump();
        // `/**` or `/*!` (but not the degenerate `/**/`) is a doc block.
        let doc = matches!(self.peek(), Some('!'))
            || (self.peek() == Some('*') && self.peek_at(1) != Some('/'));
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '/' && self.peek_at(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                continue;
            }
            if c == '*' && self.peek_at(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                continue;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text: text.trim().to_owned(),
            standalone,
            doc,
        });
    }

    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    fn raw_string(&mut self) {
        // At `#*"`: count the fence, then scan for `"` + fence.
        let mut fence = 0usize;
        while self.peek() == Some('#') {
            fence += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..fence {
                    if self.peek_at(i) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..fence {
                    self.bump();
                }
                break;
            }
        }
    }

    fn char_literal(&mut self) {
        self.bump(); // opening quote
        if let Some('\\') = self.bump() {
            self.bump();
            // Multi-char escapes (\u{…}, \x41) run to the quote.
            while let Some(c) = self.peek() {
                if c == '\'' {
                    break;
                }
                self.bump();
            }
        }
        if self.peek() == Some('\'') {
            self.bump();
        }
    }

    /// `'` is a char literal or a lifetime; disambiguate the way rustc
    /// does: `'x'` (something then a closing quote) is a char, `'ident`
    /// without a closing quote is a lifetime.
    fn quote(&mut self) {
        let line = self.line;
        let next = self.peek_at(1);
        if next == Some('\\') {
            self.char_literal();
            self.push(line, TokenKind::Char);
            return;
        }
        let is_ident_start = next.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if is_ident_start && self.peek_at(2) != Some('\'') {
            // Lifetime: consume the quote and the identifier.
            self.bump();
            while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            self.push(line, TokenKind::Lifetime);
        } else {
            self.char_literal();
            self.push(line, TokenKind::Char);
        }
    }

    fn number(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..n` does not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_are_opaque() {
        let l = lex(r#"let x = "for y in map.iter() // dynlint: allow(x)";"#);
        assert_eq!(idents(r#"let x = "no idents in here";"#), ["let", "x"]);
        assert!(l.comments.is_empty(), "pragma inside string is no comment");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let l = lex(r###"let x = r#"quote " inside"# ; let y = 1;"###);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
        assert!(idents(r###"let x = r#"hidden_ident"# ;"###)
            .iter()
            .all(|i| i != "hidden_ident"));
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let l = lex("let r#type = 1;");
        assert!(l.tokens.iter().all(|t| t.kind != TokenKind::Str));
    }

    #[test]
    fn comments_capture_text_and_position() {
        let l = lex("let a = 1; // trailing note\n// standalone note\nlet b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, "trailing note");
        assert!(!l.comments[0].standalone);
        assert_eq!(l.comments[1].text, "standalone note");
        assert!(l.comments[1].standalone);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ let x = 1;"), ["let", "x"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_track() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..n {}");
        assert!(l.tokens.iter().any(|t| t.is_ident("n")));
        assert_eq!(
            l.tokens.iter().filter(|t| t.is_punct('.')).count(),
            2,
            "range dots survive"
        );
    }
}
