//! The rule engine: runs every rule over one lexed + scanned file,
//! applying zone scoping, `#[cfg(test)]` carve-outs, suppression
//! pragmas, and manifest allowances.
//!
//! Pragma grammar (inside a line or block comment):
//!
//! ```text
//! dynlint: allow(<rule>[, <rule>…]) -- <justification>
//! dynlint: ordered -- <which argument fixes the fold order>
//! ```
//!
//! A trailing pragma applies to its own line; a standalone pragma (no
//! code before it on the line) applies to the next line that carries a
//! token. A pragma with no `--` justification, an empty justification,
//! or an unknown rule name is itself a violation (`invalid-pragma`).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Lexed, Token, TokenKind};
use crate::scanner::{scan, Scanned};
use crate::zones::{Manifest, Zone};

/// Every rule dynlint knows, in diagnostic order.
pub const KNOWN_RULES: &[&str] = &[
    "no-unordered-iteration",
    "no-wallclock-in-kernels",
    "no-ambient-rng",
    "no-panic-in-durable-paths",
    "snapshot-complete",
    "ordered-float-fold",
    "env-through-contract",
    "invalid-pragma",
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

/// A finding that a pragma or manifest allowance silenced — recorded
/// so the JSON report makes every suppression auditable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suppressed {
    pub file: String,
    pub line: u32,
    pub rule: String,
    /// The pragma's justification text (or "manifest allow").
    pub justification: String,
}

/// Rule results for one file.
#[derive(Debug, Default)]
pub struct FileResult {
    pub violations: Vec<Violation>,
    pub suppressed: Vec<Suppressed>,
}

/// Analyzes one file's source under the manifest's zone map.
pub fn check_file(path: &str, source: &str, manifest: &Manifest) -> FileResult {
    let lexed = lex(source);
    let scanned = scan(&lexed);
    let zone = manifest.zone_of(path);
    let pragmas = collect_pragmas(path, &lexed);

    let mut ctx = Ctx {
        path,
        zone,
        manifest,
        scanned: &scanned,
        pragmas: &pragmas,
        out: FileResult::default(),
        seen: BTreeSet::new(),
    };
    // Malformed pragmas are violations in every zone, test included: a
    // suppression that cannot be parsed is a silent lie either way.
    ctx.out.violations.extend(pragmas.invalid.iter().cloned());

    if zone != Zone::Test {
        rule_unordered_iteration(&mut ctx, &lexed);
        rule_wallclock(&mut ctx, &lexed);
        rule_ambient_rng(&mut ctx, &lexed);
        rule_panic_in_durable(&mut ctx, &lexed);
        rule_snapshot_complete(&mut ctx);
        rule_ordered_float_fold(&mut ctx, &lexed);
        rule_env_through_contract(&mut ctx, &lexed);
    }
    ctx.out
}

struct Ctx<'a> {
    path: &'a str,
    zone: Zone,
    manifest: &'a Manifest,
    scanned: &'a Scanned,
    pragmas: &'a Pragmas,
    out: FileResult,
    seen: BTreeSet<(u32, &'static str)>,
}

impl Ctx<'_> {
    /// Routes one candidate finding through the carve-outs: cfg(test)
    /// code is exempt, a covering pragma or manifest allowance records
    /// a suppression, anything else is a violation. Dedupes per
    /// (line, rule) so overlapping detectors report once.
    fn report(&mut self, line: u32, rule: &'static str, message: String) {
        if self.scanned.in_test_code(line) {
            return;
        }
        if !self.seen.insert((line, rule)) {
            return;
        }
        if let Some(justification) = self.pragmas.allow_for(rule, line) {
            self.out.suppressed.push(Suppressed {
                file: self.path.to_owned(),
                line,
                rule: rule.to_owned(),
                justification: justification.to_owned(),
            });
            return;
        }
        if self.manifest.allows(self.path, rule) {
            self.out.suppressed.push(Suppressed {
                file: self.path.to_owned(),
                line,
                rule: rule.to_owned(),
                justification: "manifest allow (dynlint.toml)".to_owned(),
            });
            return;
        }
        self.out.violations.push(Violation {
            file: self.path.to_owned(),
            line,
            rule: rule.to_owned(),
            message,
        });
    }
}

// ---------------------------------------------------------------- pragmas

#[derive(Debug, Default)]
struct Pragmas {
    /// rule → line → justification.
    allows: BTreeMap<String, BTreeMap<u32, String>>,
    /// Lines carrying an `ordered` attestation, with justification.
    ordered: BTreeMap<u32, String>,
    /// Malformed pragmas, already shaped as violations.
    invalid: Vec<Violation>,
}

impl Pragmas {
    fn allow_for(&self, rule: &str, line: u32) -> Option<&str> {
        self.allows
            .get(rule)
            .and_then(|m| m.get(&line))
            .map(String::as_str)
    }

    fn ordered_at(&self, line: u32) -> Option<&str> {
        self.ordered.get(&line).map(String::as_str)
    }
}

fn collect_pragmas(path: &str, lexed: &Lexed) -> Pragmas {
    let mut out = Pragmas::default();
    for comment in &lexed.comments {
        // Doc comments may quote pragma syntax; only ordinary comments
        // carry live pragmas.
        if comment.doc {
            continue;
        }
        let Some(body) = comment.text.strip_prefix("dynlint:") else {
            continue;
        };
        // A standalone pragma governs the next line that has code on
        // it; a trailing pragma governs its own line.
        let target_line = if comment.standalone {
            lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > comment.line)
        } else {
            Some(comment.line)
        };
        let mut invalid = |message: String| {
            out.invalid.push(Violation {
                file: path.to_owned(),
                line: comment.line,
                rule: "invalid-pragma".to_owned(),
                message,
            });
        };
        let Some(target_line) = target_line else {
            invalid("pragma at end of file governs no code line".to_owned());
            continue;
        };
        match parse_pragma(body.trim()) {
            Ok(Pragma::Allow {
                rules,
                justification,
            }) => {
                for rule in rules {
                    out.allows
                        .entry(rule)
                        .or_default()
                        .insert(target_line, justification.clone());
                }
            }
            Ok(Pragma::Ordered { justification }) => {
                out.ordered.insert(target_line, justification);
            }
            Err(message) => invalid(message),
        }
    }
    out
}

enum Pragma {
    Allow {
        rules: Vec<String>,
        justification: String,
    },
    Ordered {
        justification: String,
    },
}

fn parse_pragma(body: &str) -> Result<Pragma, String> {
    if let Some(rest) = body.strip_prefix("allow(") {
        let close = rest
            .find(')')
            .ok_or_else(|| "allow(...) is missing its closing parenthesis".to_owned())?;
        let mut rules = Vec::new();
        for raw in rest[..close].split(',') {
            let rule = raw.trim();
            if rule.is_empty() {
                return Err("allow(...) lists an empty rule name".to_owned());
            }
            if !KNOWN_RULES.contains(&rule) || rule == "invalid-pragma" {
                return Err(format!("allow(...) names unknown rule `{rule}`"));
            }
            rules.push(rule.to_owned());
        }
        if rules.is_empty() {
            return Err("allow(...) lists no rules".to_owned());
        }
        let justification = parse_justification(&rest[close + 1..])?;
        Ok(Pragma::Allow {
            rules,
            justification,
        })
    } else if let Some(rest) = body.strip_prefix("ordered") {
        let justification = parse_justification(rest)?;
        Ok(Pragma::Ordered { justification })
    } else {
        Err(format!(
            "unknown pragma `{body}` (want allow(<rule>) -- <why>, or ordered -- <why>)"
        ))
    }
}

fn parse_justification(rest: &str) -> Result<String, String> {
    let rest = rest.trim_start();
    let Some(j) = rest.strip_prefix("--") else {
        return Err("suppression without a `-- <justification>` is itself a violation".to_owned());
    };
    let j = j.trim();
    if j.is_empty() {
        return Err("justification after `--` is empty".to_owned());
    }
    Ok(j.to_owned())
}

// ----------------------------------------------------------- token helpers

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| t.ident())
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

/// `::` at position i (two consecutive `:`).
fn path_sep_at(toks: &[Token], i: usize) -> bool {
    punct_at(toks, i, ':') && punct_at(toks, i + 1, ':')
}

// ------------------------------------------------------------------ rules

/// Idents bound to a `HashMap`/`HashSet` in this file, found by walking
/// backwards from each `HashMap`/`HashSet` token through the binding
/// forms `name: [&][mut] HashMap<…>` and `name = HashMap::new()`.
fn hash_container_idents(toks: &[Token]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for (i, tok) in toks.iter().enumerate() {
        if !(tok.is_ident("HashMap") || tok.is_ident("HashSet")) {
            continue;
        }
        // Walk back over `&`/`mut`/`'a` to the `:` or `=` that binds.
        let mut j = i;
        while let Some(prev) = j.checked_sub(1) {
            match &toks[prev].kind {
                TokenKind::Punct('&') | TokenKind::Lifetime => j = prev,
                TokenKind::Ident(s) if s == "mut" => j = prev,
                TokenKind::Punct(':') if !punct_at(toks, prev.wrapping_sub(1), ':') => {
                    if let Some(name) = prev.checked_sub(1).and_then(|k| ident_at(toks, k)) {
                        tracked.insert(name.to_owned());
                    }
                    break;
                }
                TokenKind::Punct('=') => {
                    if let Some(name) = prev.checked_sub(1).and_then(|k| ident_at(toks, k)) {
                        tracked.insert(name.to_owned());
                    }
                    break;
                }
                _ => break,
            }
        }
    }
    tracked
}

/// Methods whose iteration order leaks the hasher's whim.
const UNORDERED_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn rule_unordered_iteration(ctx: &mut Ctx, lexed: &Lexed) {
    if !matches!(ctx.zone, Zone::Kernel | Zone::Merge) {
        return;
    }
    let toks = &lexed.tokens;
    let tracked = hash_container_idents(toks);
    if tracked.is_empty() {
        return;
    }
    for (i, tok) in toks.iter().enumerate() {
        // `map.iter()` and friends on a tracked container.
        if let Some(name) = tok.ident() {
            if tracked.contains(name)
                && punct_at(toks, i + 1, '.')
                && ident_at(toks, i + 2).is_some_and(|m| UNORDERED_METHODS.contains(&m))
            {
                let method = ident_at(toks, i + 2).unwrap_or_default();
                ctx.report(
                    tok.line,
                    "no-unordered-iteration",
                    format!(
                        "`{name}.{method}()` iterates a hash container in a {} zone; \
                         hash order is not deterministic across runs",
                        ctx.zone
                    ),
                );
            }
        }
        // `for … in … map …` — a for-loop header that mentions a
        // tracked container (covers `for k in &map` with no method).
        // `for<'a>` higher-ranked bounds are not loops; skip them.
        if tok.is_ident("for") && !punct_at(toks, i + 1, '<') {
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_ident("in") && !toks[j].is_punct('{') {
                j += 1;
            }
            if !toks.get(j).is_some_and(|t| t.is_ident("in")) {
                continue;
            }
            let mut k = j + 1;
            while k < toks.len() && !toks[k].is_punct('{') {
                if let Some(name) = toks[k].ident() {
                    if tracked.contains(name) {
                        ctx.report(
                            toks[k].line,
                            "no-unordered-iteration",
                            format!(
                                "for-loop over hash container `{name}` in a {} zone; \
                                 hash order is not deterministic across runs",
                                ctx.zone
                            ),
                        );
                    }
                }
                k += 1;
            }
        }
    }
}

fn rule_wallclock(ctx: &mut Ctx, lexed: &Lexed) {
    if !matches!(ctx.zone, Zone::Kernel | Zone::Merge | Zone::Durable) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if (name == "Instant" || name == "SystemTime")
            && path_sep_at(toks, i + 1)
            && ident_at(toks, i + 3) == Some("now")
        {
            ctx.report(
                tok.line,
                "no-wallclock-in-kernels",
                format!(
                    "`{name}::now()` in a {} zone makes results depend on the scheduler; \
                     thread budgets/timeouts belong to the budget and engine layers",
                    ctx.zone
                ),
            );
        }
    }
}

/// RNG constructions that are not seed-addressable: ambient OS/thread
/// entropy, or seeding from the clock.
fn rule_ambient_rng(ctx: &mut Ctx, lexed: &Lexed) {
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        let flagged = match name {
            "thread_rng" | "from_entropy" | "OsRng" => true,
            // `rand::random()` — ambient thread-local generator.
            "random" => {
                i >= 2
                    && path_sep_at(toks, i - 2)
                    && ident_at(toks, i.wrapping_sub(3)) == Some("rand")
            }
            // Seeding from the clock: `seed_from_u64(…UNIX_EPOCH…)`.
            "UNIX_EPOCH" => toks[..i]
                .iter()
                .rev()
                .take(12)
                .any(|t| t.is_ident("seed_from_u64") || t.is_ident("from_seed")),
            _ => false,
        };
        if flagged {
            ctx.report(
                tok.line,
                "no-ambient-rng",
                format!(
                    "`{name}` is not seed-addressable; every random stream must derive \
                     from an explicit seed (see PatternSource) so runs replay bit-identically"
                ),
            );
        }
    }
}

fn rule_panic_in_durable(ctx: &mut Ctx, lexed: &Lexed) {
    if ctx.zone != Zone::Durable {
        return;
    }
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        let flagged = match name {
            // `.unwrap()` / `.expect(` — method position only, so a
            // local `fn expect_byte` or an `unwrap` in a path is fine.
            "unwrap" | "expect" => {
                i >= 1 && punct_at(toks, i - 1, '.') && punct_at(toks, i + 1, '(')
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => punct_at(toks, i + 1, '!'),
            _ => false,
        };
        if flagged {
            ctx.report(
                tok.line,
                "no-panic-in-durable-paths",
                format!(
                    "`{name}` can abort mid-append and fabricate a torn record the \
                     recovery path then trusts; propagate a structured io::Error instead"
                ),
            );
        }
    }
}

fn rule_snapshot_complete(ctx: &mut Ctx) {
    let impls = ctx.scanned.impls.clone();
    for imp in &impls {
        if imp.trait_name != "JobKernel" {
            continue;
        }
        let mut missing = Vec::new();
        for required in ["snapshot", "restore"] {
            if !imp.fns.iter().any(|f| f == required) {
                missing.push(required);
            }
        }
        if !missing.is_empty() {
            ctx.report(
                imp.line,
                "snapshot-complete",
                format!(
                    "`impl JobKernel for {}` must define both `snapshot` and `restore` \
                     (missing: {}); the trait defaults silently discard whole-job progress \
                     on crash-recovery",
                    imp.type_name,
                    missing.join(", ")
                ),
            );
        }
    }
}

/// Idents known to hold f64 values or f64 collections, by declaration
/// pattern, with for-pattern propagation (`for (t, p) in totals.…` makes
/// `t` and `p` f64 when `totals` is).
fn f64_idents(toks: &[Token]) -> BTreeSet<String> {
    let mut f64s: BTreeSet<String> = BTreeSet::new();
    let is_float_literal =
        |t: &Token| matches!(&t.kind, TokenKind::Num(n) if n.contains('.') || n.contains("f64"));
    for (i, tok) in toks.iter().enumerate() {
        // `name: … f64 …` (type ascription mentioning f64 before the
        // next binder boundary).
        if tok.is_punct(':')
            && !punct_at(toks, i + 1, ':')
            && !punct_at(toks, i.wrapping_sub(1), ':')
        {
            if let Some(name) = i.checked_sub(1).and_then(|k| ident_at(toks, k)) {
                for t in toks.iter().skip(i + 1).take(8) {
                    if t.is_punct(',') || t.is_punct(';') || t.is_punct('{') || t.is_punct('=') {
                        break;
                    }
                    if t.is_ident("f64") {
                        f64s.insert(name.to_owned());
                        break;
                    }
                }
            }
        }
        // `let [mut] name = <float literal>` or `= vec![<float>; …]`.
        if tok.is_punct('=')
            && !punct_at(toks, i + 1, '=')
            && !punct_at(toks, i.wrapping_sub(1), '=')
        {
            let Some(name) = i.checked_sub(1).and_then(|k| ident_at(toks, k)) else {
                continue;
            };
            let rhs = &toks[i + 1..toks.len().min(i + 6)];
            let direct_float = rhs.first().is_some_and(is_float_literal);
            let vec_of_float =
                rhs.first().is_some_and(|t| t.is_ident("vec")) && rhs.iter().any(is_float_literal);
            if direct_float || vec_of_float {
                f64s.insert(name.to_owned());
            }
        }
        // For-pattern propagation.
        if tok.is_ident("for") {
            let mut pattern = Vec::new();
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_ident("in") && !toks[j].is_punct('{') {
                if let Some(name) = toks[j].ident() {
                    if name != "mut" && name != "_" && name != "ref" {
                        pattern.push(name.to_owned());
                    }
                }
                j += 1;
            }
            if !toks.get(j).is_some_and(|t| t.is_ident("in")) {
                continue;
            }
            let mut header_mentions_f64 = false;
            let mut k = j + 1;
            while k < toks.len() && !toks[k].is_punct('{') {
                if let Some(name) = toks[k].ident() {
                    if f64s.contains(name) {
                        header_mentions_f64 = true;
                    }
                }
                k += 1;
            }
            if header_mentions_f64 {
                f64s.extend(pattern);
            }
        }
    }
    f64s
}

fn rule_ordered_float_fold(ctx: &mut Ctx, lexed: &Lexed) {
    if ctx.zone != Zone::Merge {
        return;
    }
    let toks = &lexed.tokens;
    let f64s = f64_idents(toks);
    for (i, tok) in toks.iter().enumerate() {
        // `.sum::<f64>()`.
        if tok.is_ident("sum")
            && i >= 1
            && punct_at(toks, i - 1, '.')
            && path_sep_at(toks, i + 1)
            && punct_at(toks, i + 3, '<')
            && ident_at(toks, i + 4) == Some("f64")
        {
            self_report_fold(ctx, tok.line, "`.sum::<f64>()`");
        }
        // `lhs += rhs` where the lhs chain touches a known f64 ident.
        if tok.is_punct('+') && punct_at(toks, i + 1, '=') {
            let mut chain = Vec::new();
            let mut j = i;
            while let Some(prev) = j.checked_sub(1) {
                match &toks[prev].kind {
                    TokenKind::Punct(']') => {
                        // Skip the whole index expression.
                        let mut depth = 0usize;
                        let mut k = prev;
                        loop {
                            if toks[k].is_punct(']') {
                                depth += 1;
                            } else if toks[k].is_punct('[') {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            let Some(next_k) = k.checked_sub(1) else {
                                break;
                            };
                            k = next_k;
                        }
                        j = k;
                    }
                    TokenKind::Ident(name) => {
                        chain.push(name.clone());
                        j = prev;
                        // Continue through field access (`self.total`).
                        if !j.checked_sub(1).is_some_and(|p| toks[p].is_punct('.')) {
                            break;
                        }
                        j -= 1;
                    }
                    TokenKind::Punct(')') => break, // method-call result: unknowable
                    _ => break,
                }
            }
            if chain.iter().any(|name| f64s.contains(name)) {
                self_report_fold(ctx, tok.line, "`+=` over f64");
            }
        }
    }
}

/// Reports an unattested f64 fold, honoring `ordered` attestations the
/// same way `report` honors `allow` pragmas.
fn self_report_fold(ctx: &mut Ctx, line: u32, what: &str) {
    if ctx.scanned.in_test_code(line) {
        return;
    }
    if let Some(justification) = ctx.pragmas.ordered_at(line) {
        if ctx.seen.insert((line, "ordered-float-fold")) {
            ctx.out.suppressed.push(Suppressed {
                file: ctx.path.to_owned(),
                line,
                rule: "ordered-float-fold".to_owned(),
                justification: justification.to_owned(),
            });
        }
        return;
    }
    ctx.report(
        line,
        "ordered-float-fold",
        format!(
            "{what} in a merge zone: float addition is not associative, so the fold \
             order must be attested (`dynlint: ordered -- <what fixes the order>`)"
        ),
    );
}

fn rule_env_through_contract(ctx: &mut Ctx, lexed: &Lexed) {
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if !(tok.is_ident("var") || tok.is_ident("var_os")) {
            continue;
        }
        if i >= 3 && path_sep_at(toks, i - 2) && ident_at(toks, i - 3) == Some("env") {
            ctx.report(
                tok.line,
                "env-through-contract",
                "direct `env::var` read; route it through `env_contract` so every \
                 knob fails as `status=failed reason=env:<VAR>` at startup"
                    .to_owned(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(zone: &str) -> Manifest {
        Manifest::parse(&format!("[zones]\n\"**\" = \"{zone}\"\n")).unwrap()
    }

    fn rules_hit(zone: &str, src: &str) -> Vec<String> {
        check_file("x.rs", src, &manifest(zone))
            .violations
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn unordered_iteration_zones() {
        let src = "fn f(m: &HashMap<u32, f64>) { for (k, v) in m.iter() { let _ = (k, v); } }";
        assert!(rules_hit("kernel", src).contains(&"no-unordered-iteration".to_owned()));
        assert!(rules_hit("merge", src).contains(&"no-unordered-iteration".to_owned()));
        assert!(!rules_hit("infra", src).contains(&"no-unordered-iteration".to_owned()));
    }

    #[test]
    fn lookup_is_not_iteration() {
        let src = "fn f(m: &HashMap<u32, f64>) -> Option<&f64> { m.get(&3) }";
        assert!(rules_hit("kernel", src).is_empty());
    }

    #[test]
    fn wallclock_zones() {
        let src = "fn f() { let t = Instant::now(); drop(t); }";
        assert!(rules_hit("kernel", src).contains(&"no-wallclock-in-kernels".to_owned()));
        assert!(rules_hit("durable", src).contains(&"no-wallclock-in-kernels".to_owned()));
        assert!(rules_hit("infra", src).is_empty());
    }

    #[test]
    fn panic_only_in_durable() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(rules_hit("durable", src).contains(&"no-panic-in-durable-paths".to_owned()));
        assert!(rules_hit("kernel", src).is_empty());
        // Local method named expect_byte, and `expect` without a
        // receiver dot, must not trip the rule.
        let ok = "fn g(p: &mut P) { p.expect_byte(b'x'); }";
        assert!(rules_hit("durable", ok).is_empty());
    }

    #[test]
    fn pragma_suppresses_with_justification() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // dynlint: allow(no-panic-in-durable-paths) -- checked two lines up";
        let r = check_file("x.rs", src, &manifest("durable"));
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].justification, "checked two lines up");
    }

    #[test]
    fn standalone_pragma_governs_next_line() {
        let src = "// dynlint: allow(no-panic-in-durable-paths) -- startup only\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
        let r = check_file("x.rs", src, &manifest("durable"));
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn pragma_without_justification_is_violation() {
        let src =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // dynlint: allow(no-panic-in-durable-paths)";
        let hits = rules_hit("durable", src);
        assert!(hits.contains(&"invalid-pragma".to_owned()));
        assert!(hits.contains(&"no-panic-in-durable-paths".to_owned()));
    }

    #[test]
    fn pragma_with_unknown_rule_is_violation() {
        let src = "fn f() {} // dynlint: allow(no-such-rule) -- whatever";
        assert!(rules_hit("infra", src).contains(&"invalid-pragma".to_owned()));
    }

    #[test]
    fn snapshot_complete() {
        let bad = "impl JobKernel for MyJob { fn kind(&self) -> &str { \"x\" } }";
        let good = "impl JobKernel for MyJob { fn kind(&self) -> &str { \"x\" } fn snapshot(&self) -> Json { Json::Null } fn restore(&mut self, s: &Json) -> bool { s.is_null() } }";
        assert!(rules_hit("infra", bad).contains(&"snapshot-complete".to_owned()));
        assert!(rules_hit("infra", good).is_empty());
    }

    #[test]
    fn ordered_float_fold_needs_attestation() {
        let bad = "fn f(xs: &[f64]) -> f64 { let mut acc = 0.0; for x in xs { acc += x; } acc }";
        assert!(rules_hit("merge", bad).contains(&"ordered-float-fold".to_owned()));
        assert!(rules_hit("kernel", bad).is_empty());
        let attested = "fn f(xs: &[f64]) -> f64 {\n let mut acc = 0.0;\n for x in xs {\n  acc += x; // dynlint: ordered -- xs arrives in fault-index order\n }\n acc\n}";
        let r = check_file("x.rs", attested, &manifest("merge"));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn usize_accumulation_is_fine() {
        let src = "fn f(n: usize) -> usize { let mut row = 0; for _ in 0..n { row += 64; } row }";
        assert!(rules_hit("merge", src).is_empty());
    }

    #[test]
    fn sum_turbofish() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert!(rules_hit("merge", src).contains(&"ordered-float-fold".to_owned()));
    }

    #[test]
    fn ambient_rng_everywhere_but_tests() {
        let src = "fn f() { let mut rng = thread_rng(); }";
        assert!(rules_hit("infra", src).contains(&"no-ambient-rng".to_owned()));
        assert!(rules_hit("kernel", src).contains(&"no-ambient-rng".to_owned()));
        assert!(rules_hit("test", src).is_empty());
    }

    #[test]
    fn env_var_reads_flagged() {
        let src = "fn f() -> Option<String> { std::env::var(\"DYNMOS_THREADS\").ok() }";
        assert!(rules_hit("infra", src).contains(&"env-through-contract".to_owned()));
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n #[test]\n fn t() { let x: Option<u8> = Some(1); x.unwrap(); }\n}";
        assert!(rules_hit("durable", src).is_empty());
    }

    #[test]
    fn pragma_inside_string_is_inert() {
        let src = "fn f() -> &'static str { \"dynlint: allow(no-ambient-rng) -- nope\" }";
        let r = check_file("x.rs", src, &manifest("kernel"));
        assert!(r.violations.is_empty());
        assert!(r.suppressed.is_empty());
    }
}
