//! The analysis report: sorted diagnostics plus a deterministic,
//! hand-emitted JSON form so CI can diff violation trends across PRs
//! without pulling in a serializer.

use std::fmt::Write as _;

use crate::rules::{Suppressed, Violation};

/// The whole-run result.
#[derive(Debug, Default)]
pub struct Report {
    /// Files analyzed, sorted repo-relative paths.
    pub files: Vec<String>,
    /// Violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Suppressed findings, sorted the same way — every pragma that
    /// actually silenced something, with its justification.
    pub suppressed: Vec<Suppressed>,
}

impl Report {
    /// Merges one file's results in; call [`Report::finish`] once done.
    pub fn absorb(&mut self, file: String, result: crate::rules::FileResult) {
        self.files.push(file);
        self.violations.extend(result.violations);
        self.suppressed.extend(result.suppressed);
    }

    /// Sorts everything into deterministic order.
    pub fn finish(&mut self) {
        self.files.sort();
        self.violations.sort();
        self.suppressed.sort();
    }

    /// `true` when the workspace is clean.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable diagnostics, one `file:line: rule: message` per
    /// violation, followed by a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: {}: {}", v.file, v.line, v.rule, v.message);
        }
        let _ = writeln!(
            out,
            "dynlint: {} file(s), {} violation(s), {} suppression(s)",
            self.files.len(),
            self.violations.len(),
            self.suppressed.len()
        );
        out
    }

    /// Machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"files_scanned\": ");
        let _ = write!(out, "{}", self.files.len());
        let _ = write!(out, ",\n  \"violation_count\": {}", self.violations.len());
        let _ = write!(out, ",\n  \"suppression_count\": {}", self.suppressed.len());
        out.push_str(",\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"file\": ");
            json_str(&mut out, &v.file);
            let _ = write!(out, ", \"line\": {}, \"rule\": ", v.line);
            json_str(&mut out, &v.rule);
            out.push_str(", \"message\": ");
            json_str(&mut out, &v.message);
            out.push('}');
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"file\": ");
            json_str(&mut out, &s.file);
            let _ = write!(out, ", \"line\": {}, \"rule\": ", s.line);
            json_str(&mut out, &s.rule);
            out.push_str(", \"justification\": ");
            json_str(&mut out, &s.justification);
            out.push('}');
        }
        if !self.suppressed.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn report_renders_sorted() {
        let mut r = Report::default();
        r.absorb(
            "b.rs".into(),
            crate::rules::FileResult {
                violations: vec![Violation {
                    file: "b.rs".into(),
                    line: 3,
                    rule: "no-ambient-rng".into(),
                    message: "m".into(),
                }],
                suppressed: vec![],
            },
        );
        r.absorb(
            "a.rs".into(),
            crate::rules::FileResult {
                violations: vec![Violation {
                    file: "a.rs".into(),
                    line: 9,
                    rule: "no-ambient-rng".into(),
                    message: "m".into(),
                }],
                suppressed: vec![],
            },
        );
        r.finish();
        let text = r.render_text();
        let a = text.find("a.rs:9").unwrap();
        let b = text.find("b.rs:3").unwrap();
        assert!(a < b);
        assert!(!r.clean());
        let json = r.render_json();
        assert!(json.contains("\"violation_count\": 2"));
    }
}
