#![forbid(unsafe_code)]
//! `dynlint` — a repo-specific static analyzer that enforces the
//! determinism & durability contract (ROADMAP "Service & robustness
//! contract") at review time instead of waiting for a lucky chaos seed.
//!
//! Dependency-free by construction: a hand-rolled Rust [`lexer`], a
//! lightweight item [`scanner`], a [`zones`] manifest (`dynlint.toml`)
//! classifying files into kernel / merge / durable / infra / test
//! zones, and a [`rules`] engine with per-line suppression pragmas.
//! See `crates/analyze/README.md` for the pragma convention.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod zones;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use report::Report;
use zones::Manifest;

/// Directory names the walker never descends into: build output, VCS
/// metadata, and the analyzer's own deliberately-violating fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Loads `dynlint.toml` from `root` and analyzes every `.rs` file
/// beneath it.
pub fn analyze_root(root: &Path) -> io::Result<Report> {
    let manifest_path = root.join("dynlint.toml");
    let manifest_text = fs::read_to_string(&manifest_path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("cannot read {}: {e}", manifest_path.display()),
        )
    })?;
    let manifest = Manifest::parse(&manifest_text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in files {
        let source = fs::read_to_string(root.join(&rel))?;
        let result = rules::check_file(&rel, &source, &manifest);
        report.absorb(rel, result);
    }
    report.finish();
    Ok(report)
}

/// Analyzes one in-memory source under a manifest — the entry point
/// the fixture tests use, bypassing the filesystem walk.
pub fn analyze_source(path: &str, source: &str, manifest: &Manifest) -> rules::FileResult {
    rules::check_file(path, source, manifest)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            // Normalize to `/` so manifest globs match on any host.
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}
