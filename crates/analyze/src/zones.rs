//! Zone manifest: classifies workspace files into contract zones and
//! carries per-file rule allowances. Parsed from `dynlint.toml` at the
//! repo root — a hand-rolled parser for the tiny TOML subset we use
//! (two tables of `"pattern" = value` entries), keeping the analyzer
//! dependency-free.
//!
//! ```toml
//! [zones]
//! "crates/protest/src/service/journal.rs" = "durable"
//! "crates/logic/src/*.rs" = "kernel"
//! "tests/**" = "test"
//! "**" = "infra"
//!
//! [allow]
//! "crates/protest/src/service/engine.rs" = ["no-wallclock-in-kernels"]
//! ```
//!
//! Zone patterns are matched **first-match-wins**, top to bottom, on
//! repo-relative paths with `/` separators. Globs are segment-wise:
//! `*` matches within one path segment, `**` matches any number of
//! whole segments (including zero).

use std::fmt;

/// The contract zone a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Zone {
    /// Numeric kernels: bit-identical to serial, no wallclock, no
    /// unordered iteration, no ambient RNG.
    Kernel,
    /// Merge/reduction paths: everything kernels require, plus f64
    /// folds must attest their ordering.
    Merge,
    /// Durable paths (journal, JSON, cache, engine): additionally no
    /// panics — a panic mid-append fabricates a torn line.
    Durable,
    /// Infrastructure: CLI, benches, vendor shims. Ambient-RNG rule
    /// still applies; the rest do not.
    Infra,
    /// Test code: no rules apply.
    Test,
}

impl Zone {
    fn parse(s: &str) -> Option<Zone> {
        match s {
            "kernel" => Some(Zone::Kernel),
            "merge" => Some(Zone::Merge),
            "durable" => Some(Zone::Durable),
            "infra" => Some(Zone::Infra),
            "test" => Some(Zone::Test),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Zone::Kernel => "kernel",
            Zone::Merge => "merge",
            Zone::Durable => "durable",
            Zone::Infra => "infra",
            Zone::Test => "test",
        }
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A manifest parse failure, with the offending line.
#[derive(Debug)]
pub struct ManifestError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dynlint.toml:{}: {}", self.line, self.message)
    }
}

/// The parsed manifest.
#[derive(Debug, Default)]
pub struct Manifest {
    zones: Vec<(String, Zone)>,
    allows: Vec<(String, Vec<String>)>,
}

impl Manifest {
    /// Parses the manifest text. Unknown zones, malformed lines, and
    /// unknown section headers are hard errors — a typo in the
    /// manifest must not silently reclassify files.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        enum Section {
            None,
            Zones,
            Allow,
        }
        let mut section = Section::None;
        let mut out = Manifest::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = match header.trim() {
                    "zones" => Section::Zones,
                    "allow" => Section::Allow,
                    other => {
                        return Err(ManifestError {
                            line: lineno,
                            message: format!("unknown section [{other}]"),
                        })
                    }
                };
                continue;
            }
            let (key, value) = split_assignment(line).ok_or_else(|| ManifestError {
                line: lineno,
                message: format!("expected `\"pattern\" = value`, got `{line}`"),
            })?;
            match section {
                Section::None => {
                    return Err(ManifestError {
                        line: lineno,
                        message: "entry before any [zones]/[allow] section".to_owned(),
                    })
                }
                Section::Zones => {
                    let zone_str = parse_quoted(value).ok_or_else(|| ManifestError {
                        line: lineno,
                        message: format!("zone must be a quoted string, got `{value}`"),
                    })?;
                    let zone = Zone::parse(&zone_str).ok_or_else(|| ManifestError {
                        line: lineno,
                        message: format!(
                            "unknown zone `{zone_str}` (want kernel/merge/durable/infra/test)"
                        ),
                    })?;
                    out.zones.push((key, zone));
                }
                Section::Allow => {
                    let rules = parse_string_array(value).ok_or_else(|| ManifestError {
                        line: lineno,
                        message: format!("allow value must be [\"rule\", …], got `{value}`"),
                    })?;
                    out.allows.push((key, rules));
                }
            }
        }
        Ok(out)
    }

    /// Classifies a repo-relative path (first matching pattern wins).
    /// Paths with no match default to `Infra` — the manifest in-tree
    /// ends with a `"**"` catch-all so this is belt-and-suspenders.
    pub fn zone_of(&self, path: &str) -> Zone {
        for (pattern, zone) in &self.zones {
            if glob_match(pattern, path) {
                return *zone;
            }
        }
        Zone::Infra
    }

    /// `true` when the manifest grants `path` a blanket allowance for
    /// `rule` (used for whole-file exemptions that would otherwise
    /// need a pragma on every line, e.g. the engine's budget clocks).
    pub fn allows(&self, path: &str, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|(pattern, rules)| glob_match(pattern, path) && rules.iter().any(|r| r == rule))
    }
}

/// Strips a `#`-comment that sits outside any quoted string.
fn strip_comment(raw: &str) -> &str {
    let mut in_string = false;
    for (i, c) in raw.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &raw[..i],
            _ => {}
        }
    }
    raw
}

/// Splits `"key" = value`, returning the unquoted key and raw value.
fn split_assignment(line: &str) -> Option<(String, &str)> {
    let rest = line.strip_prefix('"')?;
    let close = rest.find('"')?;
    let key = rest[..close].to_owned();
    let after = rest[close + 1..].trim_start();
    let value = after.strip_prefix('=')?.trim();
    if value.is_empty() {
        return None;
    }
    Some((key, value))
}

fn parse_quoted(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_owned())
}

fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_quoted(part)?);
    }
    Some(out)
}

/// Segment-wise glob match: `*` within a segment, `**` spans segments.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segments(&pat, &segs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => {
            // `**` matches zero or more whole segments.
            (0..=segs.len()).any(|k| match_segments(&pat[1..], &segs[k..]))
        }
        Some(first) => match segs.first() {
            None => false,
            Some(seg) => match_one(first, seg) && match_segments(&pat[1..], &segs[1..]),
        },
    }
}

/// Matches one segment against a pattern where `*` spans any run of
/// characters within the segment.
fn match_one(pattern: &str, seg: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == seg;
    }
    let mut rest = seg;
    for (i, part) in parts.iter().enumerate() {
        if i == 0 {
            rest = match rest.strip_prefix(part) {
                Some(r) => r,
                None => return false,
            };
        } else if i == parts.len() - 1 {
            return rest.ends_with(part);
        } else if !part.is_empty() {
            match rest.find(part) {
                Some(at) => rest = &rest[at + part.len()..],
                None => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_segments() {
        assert!(glob_match("tests/**", "tests/serve.rs"));
        assert!(glob_match("tests/**", "tests/deep/nested.rs"));
        assert!(!glob_match("tests/**", "crates/tests.rs"));
        assert!(glob_match("crates/*/src/*.rs", "crates/logic/src/bdd.rs"));
        assert!(!glob_match(
            "crates/*/src/*.rs",
            "crates/logic/src/sub/bdd.rs"
        ));
        assert!(glob_match("**", "anything/at/all.rs"));
        assert!(glob_match(
            "crates/**/tests/**",
            "crates/analyze/tests/dynlint.rs"
        ));
        assert!(glob_match("src/fsim*.rs", "src/fsim.rs"));
    }

    #[test]
    fn first_match_wins() {
        let m = Manifest::parse(
            "[zones]\n\"crates/protest/src/service/journal.rs\" = \"durable\"\n\"crates/protest/src/**\" = \"kernel\"\n\"**\" = \"infra\"\n",
        )
        .unwrap();
        assert_eq!(
            m.zone_of("crates/protest/src/service/journal.rs"),
            Zone::Durable
        );
        assert_eq!(m.zone_of("crates/protest/src/fsim.rs"), Zone::Kernel);
        assert_eq!(m.zone_of("src/bin/faultlib.rs"), Zone::Infra);
    }

    #[test]
    fn allows_table() {
        let m = Manifest::parse(
            "[zones]\n\"**\" = \"infra\"\n[allow]\n\"a/b.rs\" = [\"no-wallclock-in-kernels\", \"no-ambient-rng\"]\n",
        )
        .unwrap();
        assert!(m.allows("a/b.rs", "no-wallclock-in-kernels"));
        assert!(m.allows("a/b.rs", "no-ambient-rng"));
        assert!(!m.allows("a/b.rs", "no-unordered-iteration"));
        assert!(!m.allows("a/c.rs", "no-wallclock-in-kernels"));
    }

    #[test]
    fn rejects_unknown_zone_and_sections() {
        assert!(Manifest::parse("[zones]\n\"a\" = \"kernle\"\n").is_err());
        assert!(Manifest::parse("[zoness]\n").is_err());
        assert!(Manifest::parse("\"a\" = \"kernel\"\n").is_err());
    }

    #[test]
    fn comments_and_blanks() {
        let m = Manifest::parse("# header\n[zones]\n\n\"a.rs\" = \"kernel\" # trailing\n").unwrap();
        assert_eq!(m.zone_of("a.rs"), Zone::Kernel);
    }
}
