#![forbid(unsafe_code)]
//! `dynlint` CLI.
//!
//! ```text
//! dynlint check [--root DIR] [--json FILE]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        eprintln!("usage: dynlint check [--root DIR] [--json FILE]");
        return ExitCode::from(2);
    };
    if cmd != "check" {
        eprintln!("dynlint: unknown command `{cmd}` (only `check` exists)");
        return ExitCode::from(2);
    }
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("dynlint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => match it.next() {
                Some(file) => json_out = Some(PathBuf::from(file)),
                None => {
                    eprintln!("dynlint: --json needs a file path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("dynlint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let started = Instant::now();
    let report = match dynmos_analyze::analyze_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dynlint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text());
    println!("dynlint: completed in {:.2?}", started.elapsed());
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("dynlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
