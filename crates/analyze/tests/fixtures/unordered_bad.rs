use std::collections::HashMap;

pub fn merge_counts(counts: &HashMap<u32, u64>) -> u64 {
    let mut total = 0u64;
    for (_fault, hits) in counts.iter() {
        total += hits;
    }
    total
}
