pub fn merge_totals(parts: &[Vec<f64>], out: &mut [f64]) {
    for part in parts {
        for (i, p) in part.iter().enumerate() {
            out[i] += p;
        }
    }
}

pub fn grand_total(values: &[f64]) -> f64 {
    values.iter().sum::<f64>()
}
