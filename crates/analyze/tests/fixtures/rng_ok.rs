pub fn stream_seed(base_seed: u64, shard: u64) -> u64 {
    base_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(shard)
}
