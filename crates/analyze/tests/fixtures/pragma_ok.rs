use std::collections::HashSet;

pub fn any_even(seen: &HashSet<u64>) -> bool {
    // dynlint: allow(no-unordered-iteration) -- `any` of a pure predicate holds under every visit order
    seen.iter().any(|v| v % 2 == 0)
}
