pub fn threads() -> Option<usize> {
    std::env::var("DYNMOS_THREADS").ok()?.parse().ok()
}
