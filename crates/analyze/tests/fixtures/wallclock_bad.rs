use std::time::Instant;

pub fn simulate_block(block: &[u64]) -> u64 {
    let started = Instant::now();
    let mut acc = 0u64;
    for word in block {
        acc ^= word;
    }
    let _ = started.elapsed();
    acc
}
