use crate::service::{JobKernel, Json};

pub struct CountJob {
    done: u64,
}

impl JobKernel for CountJob {
    fn step(&mut self) -> Json {
        self.done += 1;
        Json::Null
    }

    fn snapshot(&self) -> Json {
        Json::num(self.done)
    }

    fn restore(&mut self, snapshot: &Json) -> Result<(), String> {
        self.done = snapshot.as_u64().ok_or("count snapshot: want u64")?;
        Ok(())
    }
}
