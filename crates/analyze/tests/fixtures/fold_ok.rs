pub fn merge_totals(parts: &[Vec<f64>], out: &mut [f64]) {
    for part in parts {
        for (i, p) in part.iter().enumerate() {
            // dynlint: ordered -- parts arrive in ascending shard index, lanes in ascending position
            out[i] += p;
        }
    }
}
