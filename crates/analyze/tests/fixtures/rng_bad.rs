pub fn scramble() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
