pub fn parse_record(line: &str) -> u64 {
    let field = line.split(',').next().unwrap();
    field.parse().expect("numeric field")
}
