use std::io;

pub fn parse_record(line: &str) -> io::Result<u64> {
    let field = line
        .split(',')
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty record"))?;
    field
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad numeric field"))
}
