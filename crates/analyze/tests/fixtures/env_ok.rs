pub fn threads() -> Option<usize> {
    crate::env_contract::trimmed("DYNMOS_THREADS")?.parse().ok()
}
