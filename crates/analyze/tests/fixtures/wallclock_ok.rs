pub fn simulate_block(block: &[u64], node_budget: usize) -> (u64, bool) {
    let mut acc = 0u64;
    for (visited, word) in block.iter().enumerate() {
        if visited >= node_budget {
            return (acc, false);
        }
        acc ^= word;
    }
    (acc, true)
}
