pub fn a() -> u64 {
    0 // dynlint: allow(no-ambient-rng)
}

pub fn b() -> u64 {
    0 // dynlint: allow(no-such-rule) -- a justification for a rule that does not exist
}
