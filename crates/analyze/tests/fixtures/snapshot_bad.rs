use crate::service::{JobKernel, Json};

pub struct CountJob {
    done: u64,
}

impl JobKernel for CountJob {
    fn step(&mut self) -> Json {
        self.done += 1;
        Json::Null
    }

    fn snapshot(&self) -> Json {
        Json::Null
    }
}
