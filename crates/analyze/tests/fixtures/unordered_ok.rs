use std::collections::BTreeMap;

pub fn merge_counts(counts: &BTreeMap<u32, u64>) -> u64 {
    let mut total = 0u64;
    for (_fault, hits) in counts.iter() {
        total += hits;
    }
    total
}
