//! dynlint's own test suite: one violating + one clean fixture per
//! rule (under `tests/fixtures/`, a directory the workspace walker
//! deliberately skips), pragma semantics, lexer property tests, and a
//! self-check that the workspace's own source is dynlint-clean.

use std::time::{Duration, Instant};

use dynmos_analyze::lexer::lex;
use dynmos_analyze::zones::Manifest;
use dynmos_analyze::{analyze_root, analyze_source};
use proptest::prelude::*;

/// A manifest classifying every path into one zone.
fn zoned(zone: &str) -> Manifest {
    Manifest::parse(&format!("[zones]\n\"**\" = \"{zone}\"\n")).unwrap()
}

/// Rule names violated by `src` when the file sits in `zone`.
fn rules_in(zone: &str, src: &str) -> Vec<String> {
    analyze_source("fixture.rs", src, &zoned(zone))
        .violations
        .into_iter()
        .map(|v| v.rule)
        .collect()
}

fn assert_clean(zone: &str, src: &str) {
    let result = analyze_source("fixture.rs", src, &zoned(zone));
    assert!(
        result.violations.is_empty(),
        "expected clean fixture in {zone} zone, got: {:#?}",
        result.violations
    );
}

// ------------------------------------------------------- fixture pairs

#[test]
fn unordered_iteration_fixtures() {
    let bad = include_str!("fixtures/unordered_bad.rs");
    assert_eq!(rules_in("kernel", bad), vec!["no-unordered-iteration"]);
    assert_clean("kernel", include_str!("fixtures/unordered_ok.rs"));
    // Zone-scoped: the same hash iteration is legal in infra code.
    assert_clean("infra", bad);
}

#[test]
fn wallclock_fixtures() {
    let bad = include_str!("fixtures/wallclock_bad.rs");
    assert_eq!(rules_in("kernel", bad), vec!["no-wallclock-in-kernels"]);
    assert_eq!(rules_in("durable", bad), vec!["no-wallclock-in-kernels"]);
    assert_clean("kernel", include_str!("fixtures/wallclock_ok.rs"));
    assert_clean("infra", bad);
}

#[test]
fn ambient_rng_fixtures() {
    let bad = include_str!("fixtures/rng_bad.rs");
    // Seed-addressability is global: even infra code may not use
    // ambient entropy.
    assert_eq!(rules_in("infra", bad), vec!["no-ambient-rng"]);
    assert_eq!(rules_in("kernel", bad), vec!["no-ambient-rng"]);
    assert_clean("kernel", include_str!("fixtures/rng_ok.rs"));
}

#[test]
fn panic_in_durable_fixtures() {
    let bad = include_str!("fixtures/panic_bad.rs");
    let hits = rules_in("durable", bad);
    // `.unwrap()` and `.expect(…)` sit on different lines: two findings.
    assert_eq!(
        hits,
        vec!["no-panic-in-durable-paths", "no-panic-in-durable-paths"]
    );
    assert_clean("durable", include_str!("fixtures/panic_ok.rs"));
    // Panic-freedom is a durable-zone rule only.
    assert_clean("kernel", bad);
}

#[test]
fn snapshot_complete_fixtures() {
    let bad = include_str!("fixtures/snapshot_bad.rs");
    let result = analyze_source("fixture.rs", bad, &zoned("infra"));
    assert_eq!(result.violations.len(), 1, "{:#?}", result.violations);
    assert_eq!(result.violations[0].rule, "snapshot-complete");
    assert!(
        result.violations[0].message.contains("missing: restore"),
        "{}",
        result.violations[0].message
    );
    assert_clean("infra", include_str!("fixtures/snapshot_ok.rs"));
}

#[test]
fn ordered_float_fold_fixtures() {
    let bad = include_str!("fixtures/fold_bad.rs");
    let hits = rules_in("merge", bad);
    // The unattested `+=` and the `.sum::<f64>()`: two findings.
    assert_eq!(hits, vec!["ordered-float-fold", "ordered-float-fold"]);
    // Merge-only rule.
    assert_clean("kernel", bad);

    // The clean twin carries an `ordered` attestation: no violation,
    // but the suppression is recorded for the audit trail.
    let ok = include_str!("fixtures/fold_ok.rs");
    let result = analyze_source("fixture.rs", ok, &zoned("merge"));
    assert!(result.violations.is_empty(), "{:#?}", result.violations);
    assert_eq!(result.suppressed.len(), 1);
    assert_eq!(result.suppressed[0].rule, "ordered-float-fold");
    assert!(result.suppressed[0].justification.contains("shard index"));
}

#[test]
fn env_contract_fixtures() {
    let bad = include_str!("fixtures/env_bad.rs");
    assert_eq!(rules_in("infra", bad), vec!["env-through-contract"]);
    assert_clean("infra", include_str!("fixtures/env_ok.rs"));
}

#[test]
fn invalid_pragma_fixtures() {
    let bad = include_str!("fixtures/pragma_bad.rs");
    // One pragma without justification, one naming an unknown rule.
    assert_eq!(
        rules_in("infra", bad),
        vec!["invalid-pragma", "invalid-pragma"]
    );
    // Malformed pragmas are violations even in test code.
    assert_eq!(
        rules_in("test", bad),
        vec!["invalid-pragma", "invalid-pragma"]
    );

    let ok = include_str!("fixtures/pragma_ok.rs");
    let result = analyze_source("fixture.rs", ok, &zoned("kernel"));
    assert!(result.violations.is_empty(), "{:#?}", result.violations);
    assert_eq!(result.suppressed.len(), 1);
    assert_eq!(result.suppressed[0].rule, "no-unordered-iteration");
    assert!(result.suppressed[0].justification.contains("visit order"));
}

// --------------------------------------------------- pragma edge cases

#[test]
fn pragma_in_raw_string_is_inert() {
    let src = "pub fn f() -> &'static str {\n    r#\"dynlint: allow(no-ambient-rng) -- not a pragma\"#\n}\n";
    let lexed = lex(src);
    assert!(lexed.comments.is_empty());
    assert_clean("kernel", src);
}

#[test]
fn trailing_pragma_covers_its_own_line_only() {
    let src = "use std::time::Instant;\n\
               pub fn f() -> (std::time::Instant, std::time::Instant) {\n\
               let a = Instant::now(); // dynlint: allow(no-wallclock-in-kernels) -- fixture\n\
               let b = Instant::now();\n\
               (a, b)\n}\n";
    let result = analyze_source("fixture.rs", src, &zoned("kernel"));
    assert_eq!(result.suppressed.len(), 1);
    assert_eq!(result.violations.len(), 1);
    assert_eq!(result.violations[0].line, 4);
}

// ------------------------------------------------ lexer property tests

/// A random string over `chars` with length in `len` — the vendored
/// proptest shim has no regex strategies, so spell it out.
fn gen_string(chars: &'static [u8], len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..chars.len(), len)
        .prop_map(move |ixs| ixs.into_iter().map(|i| chars[i] as char).collect())
}

/// Rule-name-shaped text: lowercase letters and dashes, letter first.
fn gen_rule_name() -> impl Strategy<Value = String> {
    (
        0usize..26,
        gen_string(b"abcdefghijklmnopqrstuvwxyz-", 0..24),
    )
        .prop_map(|(first, rest)| format!("{}{rest}", (b'a' + first as u8) as char))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pragma-shaped text inside a string literal is opaque: the lexer
    /// records no comment, and the rules neither suppress nor trip on it.
    #[test]
    fn pragma_text_in_strings_is_inert(
        rule in gen_rule_name(),
        just in gen_string(b" abcdefghijklmnopqrstuvwxyzABCDEFGHIJ0123456789_().,-", 0..40),
    ) {
        let src = format!(
            "pub fn f() -> &'static str {{\n    \"dynlint: allow({rule}) -- {just}\"\n}}\n"
        );
        let lexed = lex(&src);
        prop_assert!(lexed.comments.is_empty());
        let result = analyze_source("fixture.rs", &src, &zoned("kernel"));
        prop_assert!(result.violations.is_empty(), "{:?}", result.violations);
        prop_assert!(result.suppressed.is_empty());
    }

    /// Doc comments may illustrate pragma syntax (even malformed) without
    /// being parsed as pragmas.
    #[test]
    fn pragma_text_in_doc_comments_is_inert(rule in gen_rule_name()) {
        let src = format!(
            "/// Example: `dynlint: allow({rule})` with no justification.\n\
             //! Module doc: dynlint: ordered\n\
             pub fn f() {{}}\n"
        );
        let lexed = lex(&src);
        prop_assert!(lexed.comments.iter().all(|c| c.doc));
        let result = analyze_source("fixture.rs", &src, &zoned("kernel"));
        prop_assert!(result.violations.is_empty(), "{:?}", result.violations);
        prop_assert!(result.suppressed.is_empty());
    }
}

// ------------------------------------------------------------ self-check

/// The workspace's own source must be dynlint-clean, every suppression
/// must carry a justification, and the whole sweep must stay fast
/// enough to run on every push (< 2s, typically well under 200ms).
#[test]
fn workspace_is_dynlint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let started = Instant::now();
    let report = analyze_root(&root).expect("analyze workspace");
    let elapsed = started.elapsed();
    assert!(
        report.files.len() > 100,
        "suspiciously few files scanned: {}",
        report.files.len()
    );
    assert!(
        report.clean(),
        "dynlint violations in the workspace:\n{}",
        report.render_text()
    );
    for s in &report.suppressed {
        assert!(
            !s.justification.trim().is_empty(),
            "{}:{} suppresses {} without justification",
            s.file,
            s.line,
            s.rule
        );
    }
    assert!(
        elapsed < Duration::from_secs(2),
        "dynlint took {elapsed:?}; the contract is < 2s"
    );
}
