#![forbid(unsafe_code)]
//! The paper's primary contribution: a logical fault model for dynamic MOS.
//!
//! Wunderlich & Rosenstiel (DAC 1986) show that for dynamic nMOS and domino
//! CMOS gates, *every* fault of the common physical fault model (open
//! connection, transistor stuck-open, transistor stuck-closed) leaves the
//! gate **combinational** — in sharp contrast to static CMOS, where
//! stuck-open faults create sequential behaviour. Each fault maps to
//!
//! * a stuck-at on an input or the output,
//! * a different combinational function, or
//! * a pure performance degradation (same logic, slower — needing at-speed
//!   detection),
//!
//! under two assumptions: **A1** (open gates read low) and **A2** (every
//! node has been charged and discharged at least once).
//!
//! This crate implements that model end to end:
//!
//! * [`PhysicalFault`] — the paper's fault universe per technology, with
//!   the paper's own names (`nMOS-1…2n+2`, `CMOS-1…4`),
//! * [`classify()`](classify()) — the section-3 theorems mapping each physical fault to
//!   its [`FaultEffect`],
//! * [`FaultLibrary`] — automatic generation of all faulty functions with
//!   fault-equivalence collapsing and minimal-DNF output, reproducing the
//!   paper's section-5 table exactly,
//! * [`theorems`] — machine-checked validation of the classification
//!   against exhaustive switch-level simulation.
//!
//! # Example: the paper's Fig. 9 gate
//!
//! ```
//! use dynmos_core::FaultLibrary;
//! use dynmos_netlist::generate::fig9_cell;
//!
//! let lib = FaultLibrary::generate(&fig9_cell());
//! assert_eq!(lib.classes().len(), 10); // the paper's 10 fault classes
//! assert_eq!(lib.classes()[7].function_string(), "a*b+a*c+d"); // class 8
//! ```

pub mod classify;
pub mod fault;
pub mod library;
pub mod theorems;

pub use classify::{classify, DetectionRequirement, FaultEffect, StuckAt};
pub use fault::{enumerate_faults, substitute_site, FaultUniverse, PhysicalFault};
pub use library::{FaultClass, FaultLibrary};
pub use theorems::{check_combinational, validate_cell, CellValidation, FaultValidation};
