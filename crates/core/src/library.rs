//! Automatic fault library generation (the paper's section 5).
//!
//! > "the functional library … must contain the fault free functions and
//! > all possible faulty functions of the used cells. All these functions
//! > are automatically generated using both a structural and a behavioural
//! > description of the cell. … It should be noted, that fault equivalent
//! > classes are constructed (i.e. not every fault has to be described in
//! > the library). All created functions have the minimum disjunctive
//! > form."
//!
//! [`FaultLibrary::generate`] reproduces exactly that: enumerate the
//! physical faults of the cell's technology, classify each into its faulty
//! function, collapse functions that coincide (truth-table equality) into
//! numbered classes, and store each class's minimum disjunctive form.
//! Faults whose function equals the fault-free function (the paper's
//! `CMOS-1`) land in a separate *timing-only* bucket rather than a class.
//!
//! The paper's internal representation was "a PASCAL program performing
//! the fault free and the faulty functions"; ours is the same artifact in
//! evaluable form — every class carries a [`Bexpr`] you can run.

use crate::classify::{classify, DetectionRequirement, FaultEffect};
use crate::fault::{enumerate_faults, FaultUniverse, PhysicalFault};
use dynmos_logic::{min_dnf, Bexpr, TruthTable, VarTable};
use dynmos_netlist::Cell;
use std::fmt;

/// One fault-equivalence class of a [`FaultLibrary`].
#[derive(Debug, Clone)]
pub struct FaultClass {
    /// 1-based class number, matching the paper's table numbering.
    pub id: usize,
    /// The physical faults collapsed into this class, in enumeration order.
    pub faults: Vec<PhysicalFault>,
    /// The faulty output function, in minimum disjunctive form.
    pub function: Bexpr,
    /// Truth table of the faulty function (the equivalence key).
    pub table: TruthTable,
    /// `true` if *every* fault in the class needs at-speed testing to
    /// materialize its logical effect (e.g. a class containing only
    /// `CMOS-3`); `false` if at least one member shows up functionally.
    pub at_speed_only: bool,
    /// Precomputed minimum-DNF display string (the `VarTable` is not
    /// stored per class).
    display_cache: String,
}

impl FaultClass {
    /// The minimum-disjunctive-form string of the faulty function in the
    /// cell's input names — the paper's "Faulty function" column.
    pub fn function_string(&self) -> String {
        self.display_cache.clone()
    }
}

/// The complete fault library of one cell.
///
/// # Example
///
/// ```
/// use dynmos_core::FaultLibrary;
/// use dynmos_netlist::generate::fig9_cell;
///
/// let lib = FaultLibrary::generate(&fig9_cell());
/// // The paper's class 1: "a closed" with u = b+c+d*e.
/// assert_eq!(lib.classes()[0].function_string(), "b+c+d*e");
/// // CMOS-1 is not a class — it is timing-only (possibly undetectable).
/// assert_eq!(lib.timing_only().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultLibrary {
    cell_name: String,
    technology: dynmos_netlist::Technology,
    vars: VarTable,
    nvars: usize,
    fault_free: Bexpr,
    fault_free_table: TruthTable,
    fault_free_string: String,
    classes: Vec<FaultClass>,
    timing_only: Vec<PhysicalFault>,
    total_faults: usize,
}

impl FaultLibrary {
    /// Generates the library for `cell` over the paper's default fault
    /// universe (see [`FaultUniverse::paper_table`]).
    pub fn generate(cell: &Cell) -> Self {
        Self::generate_with(cell, FaultUniverse::paper_table())
    }

    /// Generates the library for `cell` over an explicit fault universe.
    pub fn generate_with(cell: &Cell, universe: FaultUniverse) -> Self {
        let nvars = cell.input_count();
        let vars = cell.var_table();
        let fault_free = cell.logic_function();
        let fault_free_table = TruthTable::from_expr(&fault_free, nvars);
        let fault_free_dnf = min_dnf(&fault_free_table);
        let fault_free_string = fault_free_dnf.display(&vars).to_string();

        let faults = enumerate_faults(cell, universe);
        let total_faults = faults.len();
        let mut classes: Vec<FaultClass> = Vec::new();
        let mut timing_only: Vec<PhysicalFault> = Vec::new();

        for fault in faults {
            let effect: FaultEffect = classify(cell, fault);
            let table = TruthTable::from_expr(&effect.function, nvars);
            if table == fault_free_table {
                // No functional difference: CMOS-1 and friends.
                timing_only.push(fault);
                continue;
            }
            let at_speed = effect.requirement == DetectionRequirement::AtSpeed;
            if let Some(existing) = classes.iter_mut().find(|c| c.table == table) {
                existing.faults.push(fault);
                existing.at_speed_only &= at_speed;
            } else {
                let dnf = min_dnf(&table);
                let display_cache = dnf.display(&vars).to_string();
                classes.push(FaultClass {
                    id: classes.len() + 1,
                    faults: vec![fault],
                    function: dnf.to_expr(),
                    table,
                    at_speed_only: at_speed,
                    display_cache,
                });
            }
        }

        Self {
            cell_name: cell.name().to_owned(),
            technology: cell.technology(),
            vars,
            nvars,
            fault_free,
            fault_free_table,
            fault_free_string,
            classes,
            timing_only,
            total_faults,
        }
    }

    /// Cell name.
    pub fn cell_name(&self) -> &str {
        &self.cell_name
    }

    /// The cell's technology.
    pub fn technology(&self) -> dynmos_netlist::Technology {
        self.technology
    }

    /// Number of input variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The fault-free logic function.
    pub fn fault_free(&self) -> &Bexpr {
        &self.fault_free
    }

    /// Truth table of the fault-free function.
    pub fn fault_free_table(&self) -> &TruthTable {
        &self.fault_free_table
    }

    /// The distinguishable fault classes, numbered from 1 as in the paper.
    pub fn classes(&self) -> &[FaultClass] {
        &self.classes
    }

    /// Faults with no functional effect (timing-only / possibly redundant).
    pub fn timing_only(&self) -> &[PhysicalFault] {
        &self.timing_only
    }

    /// Total physical faults enumerated (classes + timing-only members).
    pub fn total_faults(&self) -> usize {
        self.total_faults
    }

    /// The input-name table used for display.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// The class containing `fault`, if it has a functional effect.
    pub fn class_of(&self, fault: PhysicalFault) -> Option<&FaultClass> {
        self.classes.iter().find(|c| c.faults.contains(&fault))
    }

    /// Test patterns for class `id`: the input rows on which the faulty
    /// function differs from the fault-free one (the Boolean difference).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid class number.
    pub fn test_patterns(&self, id: usize) -> Vec<u64> {
        let class = &self.classes[id - 1];
        self.fault_free_table
            .xor(&class.table)
            .ones_iter()
            .collect()
    }

    /// Renders the library as the paper's section-5 table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Cell '{}': u = {}   ({} faults -> {} classes, {} timing-only)\n",
            self.cell_name,
            self.fault_free_string,
            self.total_faults,
            self.classes.len(),
            self.timing_only.len()
        ));
        out.push_str("Class  Fault                 Faulty function\n");
        for class in &self.classes {
            let mut first = true;
            for fault in &class.faults {
                let name = fault.display_for(&self.vars, self.technology).to_string();
                if first {
                    let fn_str = if class.at_speed_only {
                        format!("{} (at speed)", class.display_cache)
                    } else {
                        class.display_cache.clone()
                    };
                    out.push_str(&format!("{:>5}  {:<20}  u = {}\n", class.id, name, fn_str));
                    first = false;
                } else {
                    out.push_str(&format!("       {name:<20}\n"));
                }
            }
        }
        for fault in &self.timing_only {
            out.push_str(&format!(
                "    -  {:<20}  (timing only, possibly undetectable)\n",
                fault.display_for(&self.vars, self.technology).to_string()
            ));
        }
        out
    }
}

impl fmt::Display for FaultLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmos_logic::VarId;
    use dynmos_netlist::generate::fig9_cell;
    use dynmos_netlist::parse_cell;

    #[test]
    fn fig9_reproduces_the_papers_ten_classes() {
        let lib = FaultLibrary::generate(&fig9_cell());
        assert_eq!(lib.classes().len(), 10, "\n{lib}");
        let vt = lib.vars().clone();
        let table: Vec<(Vec<String>, String)> = lib
            .classes()
            .iter()
            .map(|c| {
                (
                    c.faults
                        .iter()
                        .map(|f| f.display(&vt).to_string())
                        .collect(),
                    c.function_string(),
                )
            })
            .collect();
        let expect: Vec<(Vec<&str>, &str)> = vec![
            (vec!["a closed"], "b+c+d*e"),
            (vec!["a open"], "d*e"),
            (vec!["b closed", "c closed"], "a+d*e"),
            (vec!["b open"], "a*c+d*e"),
            (vec!["c open"], "a*b+d*e"),
            (vec!["d closed"], "a*b+a*c+e"),
            (vec!["d open", "e open"], "a*b+a*c"),
            (vec!["e closed"], "a*b+a*c+d"),
            (vec!["CMOS-2", "CMOS-3"], "0"),
            (vec!["CMOS-4"], "1"),
        ];
        for (i, ((faults, function), (e_faults, e_fn))) in
            table.iter().zip(expect.iter()).enumerate()
        {
            assert_eq!(faults, e_faults, "class {} faults", i + 1);
            assert_eq!(function, e_fn, "class {} function", i + 1);
        }
    }

    #[test]
    fn cmos1_lands_in_timing_only() {
        let lib = FaultLibrary::generate(&fig9_cell());
        assert_eq!(lib.timing_only().len(), 1);
        assert!(matches!(
            lib.timing_only()[0],
            PhysicalFault::EvaluateClosed
        ));
    }

    #[test]
    fn class9_is_not_at_speed_only_but_cmos3_alone_is() {
        // Class 9 merges CMOS-2 (functional) and CMOS-3 (at-speed): the
        // class is detectable functionally because CMOS-2 is.
        let lib = FaultLibrary::generate(&fig9_cell());
        assert!(!lib.classes()[8].at_speed_only);
        // A library over a universe without CMOS-2 cannot happen with the
        // stock enumerator, but class_of still reports CMOS-3's home:
        let c = lib.class_of(PhysicalFault::PrechargeClosed).unwrap();
        assert_eq!(c.id, 9);
    }

    #[test]
    fn class_count_at_most_fault_count() {
        let lib = FaultLibrary::generate(&fig9_cell());
        assert!(lib.classes().len() <= lib.total_faults());
        let members: usize = lib.classes().iter().map(|c| c.faults.len()).sum();
        assert_eq!(members + lib.timing_only().len(), lib.total_faults());
    }

    #[test]
    fn functions_are_minimal_dnf_strings() {
        let lib = FaultLibrary::generate(&fig9_cell());
        // Class 7 (d open / e open): a*b+a*c, not a*(b+c).
        assert_eq!(lib.classes()[6].function_string(), "a*b+a*c");
    }

    #[test]
    fn test_patterns_distinguish_faulty_from_good() {
        let lib = FaultLibrary::generate(&fig9_cell());
        for class in lib.classes() {
            let patterns = lib.test_patterns(class.id);
            assert!(!patterns.is_empty(), "class {} untestable", class.id);
            for p in patterns {
                assert_ne!(
                    lib.fault_free_table().get(p),
                    class.table.get(p),
                    "class {} pattern {p}",
                    class.id
                );
            }
        }
    }

    #[test]
    fn dynamic_nmos_library() {
        let cell = parse_cell(
            "nor2",
            "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a+b;",
        )
        .unwrap();
        let lib = FaultLibrary::generate(&cell);
        // Faults: a open, b open, a closed, b closed, pre open, pre closed.
        // z = /(a+b). a open -> /b; b open -> /a; a closed -> 0;
        // b closed -> 0; precharge faults -> 0. Classes: /b, /a, 0 = 3.
        assert_eq!(lib.classes().len(), 3, "\n{lib}");
        assert_eq!(lib.total_faults(), 6);
        // Both precharge faults and both closed faults share the 0 class.
        let zero_class = lib
            .classes()
            .iter()
            .find(|c| c.function_string() == "0")
            .unwrap();
        assert_eq!(zero_class.faults.len(), 4);
    }

    #[test]
    fn static_cmos_library_uses_stuck_at_universe() {
        let cell = parse_cell(
            "nand2",
            "TECHNOLOGY static-CMOS; INPUT a,b; OUTPUT z; z := a*b;",
        )
        .unwrap();
        let lib = FaultLibrary::generate(&cell);
        // z = /(a*b). Universe: s0-a, s1-a, s0-b, s1-b, s0-z, s1-z.
        // s0-a -> 1 ; s0-b -> 1 ; s1-z -> 1 : one class.
        // s1-a -> /b ; s1-b -> /a ; s0-z -> 0.
        assert_eq!(lib.total_faults(), 6);
        assert_eq!(lib.classes().len(), 4, "\n{lib}");
    }

    #[test]
    fn line_opens_merge_into_switch_open_classes() {
        let lib = FaultLibrary::generate_with(
            &fig9_cell(),
            FaultUniverse {
                include_line_opens: true,
                include_inverter: false,
            },
        );
        // "a line open" has the same function as "a open" (single
        // occurrence): class 2 gains a member.
        let class2 = &lib.classes()[1];
        let vt = lib.vars().clone();
        let names: Vec<String> = class2
            .faults
            .iter()
            .map(|f| f.display(&vt).to_string())
            .collect();
        assert!(names.contains(&"a open".to_string()));
        assert!(names.contains(&"a line open".to_string()));
    }

    #[test]
    fn inverter_faults_merge_into_stuck_output_classes() {
        let lib = FaultLibrary::generate_with(&fig9_cell(), FaultUniverse::full());
        let zero = lib
            .classes()
            .iter()
            .find(|c| c.function_string() == "0")
            .unwrap();
        assert!(zero.faults.contains(&PhysicalFault::InverterPOpen));
        assert!(zero.faults.contains(&PhysicalFault::InverterNClosed));
        let one = lib
            .classes()
            .iter()
            .find(|c| c.function_string() == "1")
            .unwrap();
        assert!(one.faults.contains(&PhysicalFault::InverterNOpen));
        assert!(one.faults.contains(&PhysicalFault::InverterPClosed));
    }

    #[test]
    fn render_table_mentions_all_classes() {
        let lib = FaultLibrary::generate(&fig9_cell());
        let table = lib.render_table();
        for c in 1..=10 {
            assert!(
                table.contains(&format!("{c}  ")),
                "class {c} missing:\n{table}"
            );
        }
        assert!(table.contains("CMOS-1"));
        assert!(table.contains("timing only"));
    }

    #[test]
    fn class_of_finds_home_class() {
        let lib = FaultLibrary::generate(&fig9_cell());
        let sites = fig9_cell().literal_sites();
        let (site, var) = sites[0];
        let c = lib
            .class_of(PhysicalFault::SwitchClosed { site, var })
            .unwrap();
        assert_eq!(c.id, 1);
        assert!(lib.class_of(PhysicalFault::EvaluateClosed).is_none());
        let _ = VarId(0);
    }
}
