//! The physical fault universe.

use dynmos_logic::{Bexpr, VarId, VarTable};
use dynmos_netlist::{Cell, Technology};
use std::fmt;

/// One physical fault of the paper's model, addressed the way the paper
/// addresses them.
///
/// `site` indices refer to the literal occurrences of the cell's
/// transmission function in left-to-right order (each literal is one
/// switch transistor of `SN`); see [`Cell::literal_sites`].
///
/// [`Cell::literal_sites`]: dynmos_netlist::Cell::literal_sites
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysicalFault {
    /// Switch transistor at `site` (gated by `var`) permanently closed.
    /// Paper: `nMOS-(n+i)` for dynamic nMOS; "a closed" in the Fig. 9
    /// table.
    SwitchClosed {
        /// Literal site index.
        site: usize,
        /// The input variable gating this transistor.
        var: VarId,
    },
    /// Switch transistor at `site` permanently open (also models an open
    /// source/drain connection at that transistor). Paper: `nMOS-i`;
    /// "a open".
    SwitchOpen {
        /// Literal site index.
        site: usize,
        /// The input variable gating this transistor.
        var: VarId,
    },
    /// Open connection on the input line of `var`: *every* transistor
    /// gated by `var` loses its gate signal, which reads low under A1.
    InputLineOpen {
        /// The affected input variable.
        var: VarId,
    },
    /// Precharge transistor permanently open (`nMOS-(2n+1)`; `CMOS-4`).
    PrechargeOpen,
    /// Precharge transistor permanently closed (`nMOS-(2n+2)`; `CMOS-3`).
    PrechargeClosed,
    /// Evaluate/foot transistor permanently open (`CMOS-2`; domino only).
    EvaluateOpen,
    /// Evaluate/foot transistor permanently closed (`CMOS-1`; domino
    /// only) — the redundant, timing-only fault.
    EvaluateClosed,
    /// Output inverter p-transistor permanently open (domino only).
    InverterPOpen,
    /// Output inverter p-transistor permanently closed (domino only).
    InverterPClosed,
    /// Output inverter n-transistor permanently open (domino only).
    InverterNOpen,
    /// Output inverter n-transistor permanently closed (domino only).
    InverterNClosed,
    /// Classic stuck-at on input `var` (used for the static technologies,
    /// where the paper applies "the common stuck-at fault model").
    InputStuck {
        /// The affected input.
        var: VarId,
        /// Stuck value.
        value: bool,
    },
    /// Classic stuck-at on the output.
    OutputStuck {
        /// Stuck value.
        value: bool,
    },
}

impl PhysicalFault {
    /// The paper-style display name, using `vars` for input names (e.g.
    /// "a closed", "CMOS-2", "s0-b"). Clocking-transistor faults use the
    /// domino names; for technology-aware naming (the paper's
    /// `nMOS-(2n+1)` style) use [`PhysicalFault::display_for`].
    pub fn display<'a>(&'a self, vars: &'a VarTable) -> DisplayFault<'a> {
        DisplayFault {
            fault: self,
            vars,
            tech: Technology::DominoCmos,
        }
    }

    /// Technology-aware display: dynamic nMOS precharge faults print as
    /// the paper's `Tn+1 open` / `Tn+1 closed` instead of the domino
    /// `CMOS-4` / `CMOS-3` names.
    pub fn display_for<'a>(&'a self, vars: &'a VarTable, tech: Technology) -> DisplayFault<'a> {
        DisplayFault {
            fault: self,
            vars,
            tech,
        }
    }
}

/// Borrowed pretty-printer returned by [`PhysicalFault::display`].
#[derive(Debug, Clone, Copy)]
pub struct DisplayFault<'a> {
    fault: &'a PhysicalFault,
    vars: &'a VarTable,
    tech: Technology,
}

impl fmt::Display for DisplayFault<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.fault {
            PhysicalFault::SwitchClosed { var, .. } => {
                write!(f, "{} closed", self.vars.name(*var))
            }
            PhysicalFault::SwitchOpen { var, .. } => write!(f, "{} open", self.vars.name(*var)),
            PhysicalFault::InputLineOpen { var } => {
                write!(f, "{} line open", self.vars.name(*var))
            }
            PhysicalFault::PrechargeOpen => match self.tech {
                Technology::DynamicNmos => write!(f, "Tn+1 open"),
                _ => write!(f, "CMOS-4"),
            },
            PhysicalFault::PrechargeClosed => match self.tech {
                Technology::DynamicNmos => write!(f, "Tn+1 closed"),
                _ => write!(f, "CMOS-3"),
            },
            PhysicalFault::EvaluateOpen => write!(f, "CMOS-2"),
            PhysicalFault::EvaluateClosed => write!(f, "CMOS-1"),
            PhysicalFault::InverterPOpen => write!(f, "INV-p open"),
            PhysicalFault::InverterPClosed => write!(f, "INV-p closed"),
            PhysicalFault::InverterNOpen => write!(f, "INV-n open"),
            PhysicalFault::InverterNClosed => write!(f, "INV-n closed"),
            PhysicalFault::InputStuck { var, value } => {
                write!(f, "s{}-{}", u8::from(*value), self.vars.name(*var))
            }
            PhysicalFault::OutputStuck { value } => write!(f, "s{}-z", u8::from(*value)),
        }
    }
}

/// Which faults to enumerate for a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultUniverse {
    /// Include per-input gate-line opens (merge into switch-open classes
    /// for single-occurrence inputs; the paper's table omits them).
    pub include_line_opens: bool,
    /// Include the domino output-inverter faults (the paper discusses them
    /// in prose but omits them from the Fig. 9 table).
    pub include_inverter: bool,
}

impl FaultUniverse {
    /// The universe the paper's section-5 table enumerates: switch faults
    /// plus the clocking-transistor faults.
    pub fn paper_table() -> Self {
        Self {
            include_line_opens: false,
            include_inverter: false,
        }
    }

    /// Everything: line opens and inverter faults included.
    pub fn full() -> Self {
        Self {
            include_line_opens: true,
            include_inverter: true,
        }
    }
}

impl Default for FaultUniverse {
    fn default() -> Self {
        Self::paper_table()
    }
}

/// Enumerates the physical faults of `cell` for its technology, in the
/// paper's presentation order.
///
/// * Domino CMOS: per input variable (sites in left-to-right order)
///   `closed` then `open`, then `CMOS-2`, `CMOS-3`, `CMOS-4`, `CMOS-1`
///   (the order in which the Fig. 9 table assigns class numbers), then
///   optional line opens and inverter faults.
/// * Dynamic nMOS: `nMOS-1…n` (opens), `nMOS-(n+1)…2n` (closes),
///   `nMOS-(2n+1)` (precharge open), `nMOS-(2n+2)` (precharge closed),
///   then optional line opens.
/// * Static technologies: the common stuck-at model on inputs and output.
pub fn enumerate_faults(cell: &Cell, universe: FaultUniverse) -> Vec<PhysicalFault> {
    let sites = cell.literal_sites();
    let mut out = Vec::new();
    match cell.technology() {
        Technology::DominoCmos => {
            for &(site, var) in &sites {
                out.push(PhysicalFault::SwitchClosed { site, var });
                out.push(PhysicalFault::SwitchOpen { site, var });
            }
            out.push(PhysicalFault::EvaluateOpen); // CMOS-2
            out.push(PhysicalFault::PrechargeClosed); // CMOS-3
            out.push(PhysicalFault::PrechargeOpen); // CMOS-4
            out.push(PhysicalFault::EvaluateClosed); // CMOS-1
            if universe.include_inverter {
                out.push(PhysicalFault::InverterPOpen);
                out.push(PhysicalFault::InverterPClosed);
                out.push(PhysicalFault::InverterNOpen);
                out.push(PhysicalFault::InverterNClosed);
            }
            if universe.include_line_opens {
                for v in 0..cell.input_count() {
                    out.push(PhysicalFault::InputLineOpen {
                        var: VarId(v as u32),
                    });
                }
            }
        }
        Technology::DynamicNmos => {
            for &(site, var) in &sites {
                out.push(PhysicalFault::SwitchOpen { site, var });
            }
            for &(site, var) in &sites {
                out.push(PhysicalFault::SwitchClosed { site, var });
            }
            out.push(PhysicalFault::PrechargeOpen);
            out.push(PhysicalFault::PrechargeClosed);
            if universe.include_line_opens {
                for v in 0..cell.input_count() {
                    out.push(PhysicalFault::InputLineOpen {
                        var: VarId(v as u32),
                    });
                }
            }
        }
        Technology::StaticCmos | Technology::NmosPullDown | Technology::Bipolar => {
            for v in 0..cell.input_count() {
                let var = VarId(v as u32);
                out.push(PhysicalFault::InputStuck { var, value: false });
                out.push(PhysicalFault::InputStuck { var, value: true });
            }
            out.push(PhysicalFault::OutputStuck { value: false });
            out.push(PhysicalFault::OutputStuck { value: true });
        }
    }
    out
}

/// Replaces the `site`-th literal occurrence (left-to-right) of `expr`
/// with the constant `value`, leaving other occurrences of the same
/// variable untouched.
///
/// This is how a single stuck-open/closed switch transistor edits the
/// transmission function: only *its* branch of `SN` changes.
///
/// # Panics
///
/// Panics if `site` is not a valid literal index of `expr`.
///
/// # Example
///
/// ```
/// use dynmos_core::substitute_site;
/// use dynmos_logic::{parse_expr, VarTable};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut vars = VarTable::new();
/// let t = parse_expr("a*b+a*c", &mut vars)?;
/// // Open only the FIRST a-transistor: a*b + a*c -> 0*b + a*c = a*c.
/// let faulty = substitute_site(&t, 0, false);
/// let expect = parse_expr("a*c", &mut vars)?;
/// for w in 0..8 {
///     assert_eq!(faulty.eval_word(w), expect.eval_word(w));
/// }
/// # Ok(())
/// # }
/// ```
pub fn substitute_site(expr: &Bexpr, site: usize, value: bool) -> Bexpr {
    let mut counter = 0usize;
    let result = walk(expr, site, value, &mut counter);
    assert!(
        counter > site,
        "site {site} out of range: expression has only {counter} literals"
    );
    result
}

fn walk(expr: &Bexpr, site: usize, value: bool, counter: &mut usize) -> Bexpr {
    match expr {
        Bexpr::Const(b) => Bexpr::Const(*b),
        Bexpr::Var(v) => {
            let here = *counter;
            *counter += 1;
            if here == site {
                Bexpr::Const(value)
            } else {
                Bexpr::Var(*v)
            }
        }
        Bexpr::Not(e) => Bexpr::not(walk(e, site, value, counter)),
        Bexpr::And(ts) => Bexpr::and(ts.iter().map(|t| walk(t, site, value, counter)).collect()),
        Bexpr::Or(ts) => Bexpr::or(ts.iter().map(|t| walk(t, site, value, counter)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmos_logic::parse_expr;
    use dynmos_netlist::generate::fig9_cell;
    use dynmos_netlist::parse_cell;

    #[test]
    fn fig9_paper_table_enumeration_order() {
        let cell = fig9_cell();
        let faults = enumerate_faults(&cell, FaultUniverse::paper_table());
        let vt = cell.var_table();
        let names: Vec<String> = faults.iter().map(|f| f.display(&vt).to_string()).collect();
        assert_eq!(
            names,
            vec![
                "a closed", "a open", "b closed", "b open", "c closed", "c open", "d closed",
                "d open", "e closed", "e open", "CMOS-2", "CMOS-3", "CMOS-4", "CMOS-1",
            ]
        );
    }

    #[test]
    fn full_universe_adds_line_opens_and_inverter() {
        let cell = fig9_cell();
        let base = enumerate_faults(&cell, FaultUniverse::paper_table()).len();
        let full = enumerate_faults(&cell, FaultUniverse::full()).len();
        // +5 line opens +4 inverter faults
        assert_eq!(full, base + 9);
    }

    #[test]
    fn dynamic_nmos_numbering_matches_paper() {
        // nMOS-1..n opens, nMOS-n+1..2n closes, 2n+1 precharge open,
        // 2n+2 precharge closed.
        let cell = parse_cell(
            "g",
            "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a*b;",
        )
        .unwrap();
        let faults = enumerate_faults(&cell, FaultUniverse::paper_table());
        assert_eq!(faults.len(), 2 * 2 + 2);
        assert!(matches!(
            faults[0],
            PhysicalFault::SwitchOpen { site: 0, .. }
        ));
        assert!(matches!(
            faults[1],
            PhysicalFault::SwitchOpen { site: 1, .. }
        ));
        assert!(matches!(
            faults[2],
            PhysicalFault::SwitchClosed { site: 0, .. }
        ));
        assert!(matches!(faults[4], PhysicalFault::PrechargeOpen));
        assert!(matches!(faults[5], PhysicalFault::PrechargeClosed));
    }

    #[test]
    fn static_technologies_get_stuck_at_universe() {
        let cell = parse_cell(
            "g",
            "TECHNOLOGY static-CMOS; INPUT a,b; OUTPUT z; z := a+b;",
        )
        .unwrap();
        let faults = enumerate_faults(&cell, FaultUniverse::paper_table());
        // 2 inputs x 2 polarities + 2 output faults
        assert_eq!(faults.len(), 6);
        assert!(matches!(
            faults[0],
            PhysicalFault::InputStuck { value: false, .. }
        ));
        assert!(matches!(
            faults[5],
            PhysicalFault::OutputStuck { value: true }
        ));
    }

    #[test]
    fn substitute_site_targets_single_occurrence() {
        let mut vars = VarTable::new();
        let t = parse_expr("a*b+a*c", &mut vars).unwrap();
        // Site 2 is the second 'a'.
        let faulty = substitute_site(&t, 2, false);
        let expect = parse_expr("a*b", &mut vars).unwrap();
        for w in 0..8u64 {
            assert_eq!(faulty.eval_word(w), expect.eval_word(w), "w={w}");
        }
    }

    #[test]
    fn substitute_site_closed_shorts_literal() {
        let mut vars = VarTable::new();
        let t = parse_expr("a*(b+c)", &mut vars).unwrap();
        // Close 'b' (site 1): a*(1+c) = a.
        let faulty = substitute_site(&t, 1, true);
        for w in 0..8u64 {
            assert_eq!(faulty.eval_word(w), w & 1 == 1, "w={w}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn substitute_site_out_of_range_panics() {
        let mut vars = VarTable::new();
        let t = parse_expr("a*b", &mut vars).unwrap();
        substitute_site(&t, 2, false);
    }

    #[test]
    fn display_names() {
        let cell = fig9_cell();
        let vt = cell.var_table();
        assert_eq!(
            PhysicalFault::InputStuck {
                var: VarId(0),
                value: false
            }
            .display(&vt)
            .to_string(),
            "s0-a"
        );
        assert_eq!(
            PhysicalFault::OutputStuck { value: true }
                .display(&vt)
                .to_string(),
            "s1-z"
        );
        assert_eq!(
            PhysicalFault::InputLineOpen { var: VarId(2) }
                .display(&vt)
                .to_string(),
            "c line open"
        );
    }
}
