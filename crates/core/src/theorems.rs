//! Machine-checked validation of the section-3 theorems.
//!
//! The paper *proves* (on paper) that under assumptions A1/A2 no physical
//! fault makes a dynamic MOS gate sequential, and gives the resulting
//! logical fault for each physical fault. This module *checks* both claims
//! mechanically, per cell, by exhaustive switch-level simulation:
//!
//! 1. **Combinationality** ([`check_combinational`]): for every input word
//!    and several different charge histories, the faulty gate's valid
//!    output is identical — the output at time `tᵢ` depends only on the
//!    inputs at time `tᵢ`.
//! 2. **Prediction** ([`validate_cell`]): the observed response equals the
//!    faulty function that [`classify()`](crate::classify()) predicts. Faults whose
//!    logical effect is ratio-dependent (`CMOS-3`, closed inverter
//!    transistors) legitimately read `X` at the pure switch level on the
//!    contended words; they are accepted there and resolved by the
//!    `dynmos-switch` timing model instead.

use crate::classify::{classify, DetectionRequirement};
use crate::fault::PhysicalFault;
use dynmos_logic::Bexpr;
use dynmos_netlist::{Cell, Technology};
use dynmos_switch::gates::{domino_gate, dynamic_nmos_gate, DominoGate, DynamicNmosGate};
use dynmos_switch::{FaultSet, Logic, Sim, SwitchFault};

/// Switch-level validation result for one physical fault.
#[derive(Debug, Clone)]
pub struct FaultValidation {
    /// The fault validated.
    pub fault: PhysicalFault,
    /// `true` if the faulty gate behaved combinationally across all tested
    /// histories (the paper's central claim).
    pub combinational: bool,
    /// `true` if every observed output matched the classified prediction
    /// (with `X` accepted on at-speed faults' contended words).
    pub matches_prediction: bool,
    /// Words on which the observation was `X` (contention).
    pub contended_words: Vec<u64>,
}

/// Validation result for all faults of a cell.
#[derive(Debug, Clone)]
pub struct CellValidation {
    /// Cell name.
    pub cell_name: String,
    /// Per-fault results.
    pub faults: Vec<FaultValidation>,
}

impl CellValidation {
    /// `true` if every fault behaved combinationally.
    pub fn all_combinational(&self) -> bool {
        self.faults.iter().all(|f| f.combinational)
    }

    /// `true` if every fault matched its predicted faulty function.
    pub fn all_match(&self) -> bool {
        self.faults.iter().all(|f| f.matches_prediction)
    }
}

/// A gate under test: either technology, one `evaluate` interface.
enum GateUnderTest {
    Domino(DominoGate),
    Dynamic(DynamicNmosGate),
}

impl GateUnderTest {
    fn build(cell: &Cell) -> Self {
        match cell.technology() {
            Technology::DominoCmos => GateUnderTest::Domino(
                domino_gate(cell.transmission(), cell.input_count())
                    .expect("cell transmissions are positive series-parallel"),
            ),
            Technology::DynamicNmos => GateUnderTest::Dynamic(
                dynamic_nmos_gate(cell.transmission(), cell.input_count())
                    .expect("cell transmissions are positive series-parallel"),
            ),
            other => panic!("switch-level validation supports dynamic technologies, not {other}"),
        }
    }

    fn circuit(&self) -> &dynmos_switch::Circuit {
        match self {
            GateUnderTest::Domino(g) => &g.circuit,
            GateUnderTest::Dynamic(g) => &g.circuit,
        }
    }

    fn evaluate(&self, sim: &mut Sim<'_>, word: u64) -> Logic {
        match self {
            GateUnderTest::Domino(g) => g.evaluate(sim, word),
            GateUnderTest::Dynamic(g) => g.evaluate(sim, word),
        }
    }

    /// Maps a [`PhysicalFault`] to switch-level fault injections.
    fn fault_set(&self, cell: &Cell, fault: PhysicalFault) -> FaultSet {
        let mut set = FaultSet::new();
        match (self, fault) {
            (GateUnderTest::Domino(g), PhysicalFault::SwitchOpen { site, .. }) => {
                set.inject(SwitchFault::StuckOpen(g.sn.transistors[site]));
            }
            (GateUnderTest::Domino(g), PhysicalFault::SwitchClosed { site, .. }) => {
                set.inject(SwitchFault::StuckClosed(g.sn.transistors[site]));
            }
            (GateUnderTest::Domino(g), PhysicalFault::InputLineOpen { var }) => {
                for &(v, t) in &g.sn.literal_sites {
                    if v == var {
                        set.inject(SwitchFault::GateOpen(t));
                    }
                }
            }
            (GateUnderTest::Domino(g), PhysicalFault::PrechargeOpen) => {
                set.inject(SwitchFault::StuckOpen(g.t1));
            }
            (GateUnderTest::Domino(g), PhysicalFault::PrechargeClosed) => {
                set.inject(SwitchFault::StuckClosed(g.t1));
            }
            (GateUnderTest::Domino(g), PhysicalFault::EvaluateOpen) => {
                set.inject(SwitchFault::StuckOpen(g.t2));
            }
            (GateUnderTest::Domino(g), PhysicalFault::EvaluateClosed) => {
                set.inject(SwitchFault::StuckClosed(g.t2));
            }
            (GateUnderTest::Domino(g), PhysicalFault::InverterPOpen) => {
                set.inject(SwitchFault::StuckOpen(g.inv_p));
            }
            (GateUnderTest::Domino(g), PhysicalFault::InverterPClosed) => {
                set.inject(SwitchFault::StuckClosed(g.inv_p));
            }
            (GateUnderTest::Domino(g), PhysicalFault::InverterNOpen) => {
                set.inject(SwitchFault::StuckOpen(g.inv_n));
            }
            (GateUnderTest::Domino(g), PhysicalFault::InverterNClosed) => {
                set.inject(SwitchFault::StuckClosed(g.inv_n));
            }
            (GateUnderTest::Dynamic(g), PhysicalFault::SwitchOpen { site, .. }) => {
                set.inject(SwitchFault::StuckOpen(g.sn.transistors[site]));
            }
            (GateUnderTest::Dynamic(g), PhysicalFault::SwitchClosed { site, .. }) => {
                set.inject(SwitchFault::StuckClosed(g.sn.transistors[site]));
            }
            (GateUnderTest::Dynamic(g), PhysicalFault::InputLineOpen { var }) => {
                for &(v, t) in &g.sn.literal_sites {
                    if v == var {
                        set.inject(SwitchFault::GateOpen(t));
                    }
                }
            }
            (GateUnderTest::Dynamic(g), PhysicalFault::PrechargeOpen) => {
                set.inject(SwitchFault::StuckOpen(g.t_pre));
            }
            (GateUnderTest::Dynamic(g), PhysicalFault::PrechargeClosed) => {
                set.inject(SwitchFault::StuckClosed(g.t_pre));
            }
            (_, other) => panic!("fault {other:?} has no switch-level site in this cell"),
        }
        let _ = cell;
        set
    }
}

/// Exhaustively checks that the gate with `fault` injected behaves
/// combinationally: for every input word, the valid output after one full
/// clock cycle is independent of the preceding history.
///
/// Histories tried per word `w`: the all-zeros word, the all-ones word and
/// the bitwise complement of `w` — each preceded by an A2 conditioning
/// sequence (one all-ones cycle, one all-zeros cycle) so assumption A2
/// holds.
///
/// Returns `(combinational, responses)` where `responses[w]` is the agreed
/// output (or the first-history output when disagreeing).
pub fn check_combinational(cell: &Cell, fault: Option<PhysicalFault>) -> (bool, Vec<Logic>) {
    let gate = GateUnderTest::build(cell);
    let n = cell.input_count();
    let all_ones = (1u64 << n) - 1;
    let mut combinational = true;
    let mut responses = Vec::with_capacity(1 << n);
    for w in 0..(1u64 << n) {
        let mut seen: Option<Logic> = None;
        for history in [0u64, all_ones, !w & all_ones] {
            let faults = match fault {
                Some(f) => gate.fault_set(cell, f),
                None => FaultSet::new(),
            };
            let mut sim = Sim::with_faults(gate.circuit(), faults);
            // A2 conditioning: charge and discharge every node.
            gate.evaluate(&mut sim, all_ones);
            gate.evaluate(&mut sim, 0);
            // History cycle, then the measured cycle.
            gate.evaluate(&mut sim, history);
            let out = gate.evaluate(&mut sim, w);
            match seen {
                None => seen = Some(out),
                Some(prev) if prev != out => {
                    combinational = false;
                    break;
                }
                Some(_) => {}
            }
        }
        responses.push(seen.expect("at least one history ran"));
    }
    (combinational, responses)
}

/// Validates every enumerable fault of `cell` (paper-table universe plus
/// line opens and inverter faults) against the switch-level simulator.
///
/// # Panics
///
/// Panics if the cell is not a dynamic technology (domino CMOS or dynamic
/// nMOS) — the theorems are about those.
pub fn validate_cell(cell: &Cell) -> CellValidation {
    use crate::fault::{enumerate_faults, FaultUniverse};
    let faults = enumerate_faults(cell, FaultUniverse::full());
    let n = cell.input_count();
    let mut results = Vec::with_capacity(faults.len());
    for fault in faults {
        let effect = classify(cell, fault);
        let (combinational, responses) = check_combinational(cell, Some(fault));
        let accept_x = effect.requirement == DetectionRequirement::AtSpeed;
        let mut matches = true;
        let mut contended = Vec::new();
        for (w, &got) in responses.iter().enumerate() {
            let predicted = Logic::from_bool(eval_fn(&effect.function, w as u64));
            if got == Logic::X {
                contended.push(w as u64);
                if !accept_x {
                    matches = false;
                }
            } else if got != predicted {
                matches = false;
            }
        }
        let _ = n;
        results.push(FaultValidation {
            fault,
            combinational,
            matches_prediction: matches,
            contended_words: contended,
        });
    }
    CellValidation {
        cell_name: cell.name().to_owned(),
        faults: results,
    }
}

fn eval_fn(f: &Bexpr, word: u64) -> bool {
    f.eval_word(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmos_netlist::generate::{fig9_cell, random_domino_cell};
    use dynmos_netlist::parse_cell;

    #[test]
    fn fault_free_fig9_is_combinational_and_correct() {
        let cell = fig9_cell();
        let (comb, responses) = check_combinational(&cell, None);
        assert!(comb);
        for (w, &r) in responses.iter().enumerate() {
            assert_eq!(
                r,
                Logic::from_bool(cell.logic_function().eval_word(w as u64)),
                "word {w}"
            );
        }
    }

    #[test]
    fn fig9_every_fault_is_combinational() {
        // Theorem (a): "There is no fault, that changes a combinational
        // behaviour into a sequential one."
        let v = validate_cell(&fig9_cell());
        for f in &v.faults {
            assert!(f.combinational, "{:?} made the gate sequential", f.fault);
        }
    }

    #[test]
    fn fig9_every_fault_matches_its_classified_function() {
        let v = validate_cell(&fig9_cell());
        for f in &v.faults {
            assert!(
                f.matches_prediction,
                "{:?} deviated from prediction (contended words: {:?})",
                f.fault, f.contended_words
            );
        }
    }

    #[test]
    fn cmos3_contends_exactly_on_transmission_true_words() {
        let cell = fig9_cell();
        let v = validate_cell(&cell);
        let cmos3 = v
            .faults
            .iter()
            .find(|f| matches!(f.fault, PhysicalFault::PrechargeClosed))
            .unwrap();
        // Contention happens exactly where SN fights the closed precharge:
        // words with T = 1.
        let expect: Vec<u64> = (0..32u64)
            .filter(|&w| cell.transmission().eval_word(w))
            .collect();
        assert_eq!(cmos3.contended_words, expect);
    }

    #[test]
    fn dynamic_nmos_nor_validates() {
        let cell = parse_cell(
            "nor2",
            "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a+b;",
        )
        .unwrap();
        let v = validate_cell(&cell);
        assert!(v.all_combinational());
        assert!(v.all_match(), "{:#?}", v.faults);
    }

    #[test]
    fn dynamic_nmos_series_gate_validates() {
        let cell = parse_cell(
            "aoi",
            "TECHNOLOGY dynamic-nMOS; INPUT a,b,c; OUTPUT z; z := a*b+c;",
        )
        .unwrap();
        let v = validate_cell(&cell);
        assert!(v.all_combinational());
        assert!(v.all_match(), "{:#?}", v.faults);
    }

    #[test]
    fn random_domino_cells_validate() {
        for seed in 0..4 {
            let cell = random_domino_cell(seed, 4, 6);
            let v = validate_cell(&cell);
            assert!(v.all_combinational(), "seed {seed}");
            assert!(v.all_match(), "seed {seed}: {:#?}", v.faults);
        }
    }

    #[test]
    #[should_panic(expected = "dynamic technologies")]
    fn static_cell_validation_panics() {
        let cell = parse_cell("g", "TECHNOLOGY static-CMOS; INPUT a; OUTPUT z; z := a;").unwrap();
        validate_cell(&cell);
    }
}
