//! The section-3 theorems: physical fault → logical fault effect.
//!
//! For dynamic nMOS (under assumptions A1 and A2):
//!
//! | fault | effect |
//! |---|---|
//! | `nMOS-i` (Tᵢ open)         | `s0` at that literal site |
//! | `nMOS-(n+i)` (Tᵢ closed)   | `s1` at that literal site |
//! | `nMOS-(2n+1)` (Tₙ₊₁ open)  | `s0-z` |
//! | `nMOS-(2n+2)` (Tₙ₊₁ closed)| `s0-z` (the paper's "very interesting fact": both precharge faults collapse) |
//!
//! For domino CMOS:
//!
//! | fault | effect |
//! |---|---|
//! | SN transistor open/closed | literal site `s0`/`s1` |
//! | `CMOS-1` (T2 closed)      | timing only, possibly undetectable |
//! | `CMOS-2` (T2 open)        | `s0-z` |
//! | `CMOS-3` (T1 closed)      | `s0-z`; detection may require maximum speed (case b) |
//! | `CMOS-4` (T1 open)        | `s1-z` (by A1) |
//! | inverter p open           | `s0-z` |
//! | inverter n open           | `s1-z` (by A2) |
//! | inverter p/n closed       | like `CMOS-3`: ratioed, at-speed |

use crate::fault::{substitute_site, PhysicalFault};
use dynmos_logic::{Bexpr, TruthTable};
use dynmos_netlist::{Cell, Technology};
use std::fmt;

/// A named stuck-at fault (the paper's `s0-i`/`s1-i`/`s0-z`/`s1-z`
/// shorthand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuckAt {
    /// Input `var` stuck at `value` (all its fanout inside the cell).
    Input {
        /// The affected input.
        var: dynmos_logic::VarId,
        /// The stuck value.
        value: bool,
    },
    /// Output stuck at `value`.
    Output {
        /// The stuck value.
        value: bool,
    },
}

/// How the fault must be detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectionRequirement {
    /// Any functional test pattern distinguishing the functions works.
    Standard,
    /// The logical effect only materializes at full clock rate (the
    /// paper's CMOS-3 case b: the slow path "needs more time (perhaps
    /// infinite)"); slow external testers miss it.
    AtSpeed,
    /// No logical effect at all: the fault changes timing margins only and
    /// may be undetectable (the paper's CMOS-1 redundancy).
    TimingOnly,
}

/// The logical effect of one physical fault on one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEffect {
    /// The faulty output function over the cell's input variables; equals
    /// the fault-free function for timing-only faults.
    pub function: Bexpr,
    /// Detection requirement.
    pub requirement: DetectionRequirement,
    /// The stuck-at name when the faulty function coincides with one
    /// (`None` for general function changes).
    pub stuck_at: Option<StuckAt>,
}

impl FaultEffect {
    /// `true` if the faulty function differs from `fault_free` on some
    /// input — i.e. a functional test pattern exists.
    pub fn is_detectable_functionally(&self, fault_free: &TruthTable, nvars: usize) -> bool {
        let faulty = TruthTable::from_expr(&self.function, nvars);
        faulty != *fault_free
    }
}

impl fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.requirement {
            DetectionRequirement::Standard => write!(f, "functional"),
            DetectionRequirement::AtSpeed => write!(f, "functional (at speed)"),
            DetectionRequirement::TimingOnly => write!(f, "timing only"),
        }
    }
}

/// Classifies one physical fault of `cell` per the paper's section-3
/// theorems, returning the faulty output function and detection
/// requirement.
///
/// # Panics
///
/// Panics if the fault kind does not exist in the cell's technology (e.g.
/// `CMOS-2` on a dynamic nMOS cell) or a site index is out of range.
pub fn classify(cell: &Cell, fault: PhysicalFault) -> FaultEffect {
    let tech = cell.technology();
    let transmission = cell.transmission();
    let invert = tech.output_is_inverted();
    // Output function from a (possibly edited) transmission function.
    let out_fn = |t: Bexpr| -> Bexpr {
        if invert {
            Bexpr::not(t)
        } else {
            t
        }
    };

    match fault {
        PhysicalFault::SwitchOpen { site, var } => {
            assert!(
                tech.uses_dynamic_fault_model(),
                "switch faults are enumerated for dynamic technologies"
            );
            let t = substitute_site(transmission, site, false);
            let function = out_fn(t);
            let stuck_at = single_occurrence_stuck(cell, var, false);
            FaultEffect {
                function,
                requirement: DetectionRequirement::Standard,
                stuck_at,
            }
        }
        PhysicalFault::SwitchClosed { site, var } => {
            assert!(
                tech.uses_dynamic_fault_model(),
                "switch faults are enumerated for dynamic technologies"
            );
            let t = substitute_site(transmission, site, true);
            let function = out_fn(t);
            let stuck_at = single_occurrence_stuck(cell, var, true);
            FaultEffect {
                function,
                requirement: DetectionRequirement::Standard,
                stuck_at,
            }
        }
        PhysicalFault::InputLineOpen { var } => {
            // A1: the whole line reads low -> input stuck-at-0.
            let t = transmission.substitute(var, false);
            FaultEffect {
                function: out_fn(t),
                requirement: DetectionRequirement::Standard,
                stuck_at: Some(StuckAt::Input { var, value: false }),
            }
        }
        PhysicalFault::PrechargeOpen => match tech {
            // nMOS-(2n+1): z was discharged once (A2) and can never be
            // pulled up again -> s0-z.
            Technology::DynamicNmos => stuck_output(false, DetectionRequirement::Standard),
            // CMOS-4: y never precharged, reads low by A1; the inverter
            // turns that into a constant high output -> s1-z.
            Technology::DominoCmos => stuck_output(true, DetectionRequirement::Standard),
            other => panic!("precharge fault undefined for {other}"),
        },
        PhysicalFault::PrechargeClosed => match tech {
            // nMOS-(2n+2): conducting path from the clock rail pulls the
            // output down whenever the clock is low -> s0-z. The paper:
            // "both cases ... result in the same fault s0-z".
            Technology::DynamicNmos => stuck_output(false, DetectionRequirement::Standard),
            // CMOS-3: y is held high against the pull-down; case (a)
            // strong short -> z stuck low; case (b) resistive -> slow,
            // detected as s0-z only by maximum-speed testing.
            Technology::DominoCmos => stuck_output(false, DetectionRequirement::AtSpeed),
            other => panic!("precharge fault undefined for {other}"),
        },
        PhysicalFault::EvaluateOpen => {
            assert_eq!(tech, Technology::DominoCmos, "CMOS-2 is a domino fault");
            // y can never be pulled down -> z never rises -> s0-z.
            stuck_output(false, DetectionRequirement::Standard)
        }
        PhysicalFault::EvaluateClosed => {
            assert_eq!(tech, Technology::DominoCmos, "CMOS-1 is a domino fault");
            // During precharge all domino inputs are low, so SN conducts
            // nothing; T2's job is timing insurance only. Logic unchanged.
            FaultEffect {
                function: cell.logic_function(),
                requirement: DetectionRequirement::TimingOnly,
                stuck_at: None,
            }
        }
        PhysicalFault::InverterPOpen => {
            assert_eq!(tech, Technology::DominoCmos, "inverter is a domino part");
            stuck_output(false, DetectionRequirement::Standard)
        }
        PhysicalFault::InverterNOpen => {
            assert_eq!(tech, Technology::DominoCmos, "inverter is a domino part");
            // A2: z was driven high at least once and can never be pulled
            // low again -> s1-z.
            stuck_output(true, DetectionRequirement::Standard)
        }
        PhysicalFault::InverterPClosed => {
            assert_eq!(tech, Technology::DominoCmos, "inverter is a domino part");
            // Ratioed fight when the n-side pulls down: like CMOS-3, the
            // observable stuck value appears at full speed.
            stuck_output(true, DetectionRequirement::AtSpeed)
        }
        PhysicalFault::InverterNClosed => {
            assert_eq!(tech, Technology::DominoCmos, "inverter is a domino part");
            stuck_output(false, DetectionRequirement::AtSpeed)
        }
        PhysicalFault::InputStuck { var, value } => {
            let function = cell.logic_function().substitute(var, value);
            FaultEffect {
                function,
                requirement: DetectionRequirement::Standard,
                stuck_at: Some(StuckAt::Input { var, value }),
            }
        }
        PhysicalFault::OutputStuck { value } => stuck_output(value, DetectionRequirement::Standard),
    }
}

fn stuck_output(value: bool, requirement: DetectionRequirement) -> FaultEffect {
    FaultEffect {
        function: Bexpr::Const(value),
        requirement,
        stuck_at: Some(StuckAt::Output { value }),
    }
}

/// If `var` occurs exactly once in the transmission function, a per-site
/// fault is exactly the input stuck-at the paper names (`s0-i`/`s1-i`).
fn single_occurrence_stuck(cell: &Cell, var: dynmos_logic::VarId, value: bool) -> Option<StuckAt> {
    let occurrences = cell
        .literal_sites()
        .iter()
        .filter(|(_, v)| *v == var)
        .count();
    if occurrences == 1 {
        Some(StuckAt::Input { var, value })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{enumerate_faults, FaultUniverse};
    use dynmos_logic::{min_dnf_string, parse_expr, TruthTable, VarTable};
    use dynmos_netlist::generate::fig9_cell;
    use dynmos_netlist::{parse_cell, Cell, Technology};

    fn assert_fn_eq(effect: &FaultEffect, expect_src: &str, nvars: usize) {
        let mut vars = VarTable::new();
        for i in 0..nvars {
            // names a..e for readability in expectations
            vars.intern(&"abcdefgh"[i..=i]);
        }
        let expect = parse_expr(expect_src, &mut vars).unwrap();
        let got = TruthTable::from_expr(&effect.function, nvars);
        let want = TruthTable::from_expr(&expect, nvars);
        assert_eq!(
            got,
            want,
            "expected {} got {}",
            expect_src,
            min_dnf_string(&got, &vars)
        );
    }

    #[test]
    fn fig9_class_functions_match_paper_table() {
        let cell = fig9_cell();
        let faults = enumerate_faults(&cell, FaultUniverse::paper_table());
        let vt = cell.var_table();
        // (fault display name, expected faulty function)
        let expect = [
            ("a closed", "b+c+d*e"),
            ("a open", "d*e"),
            ("b closed", "a+d*e"),
            ("b open", "a*c+d*e"),
            ("c closed", "a+d*e"),
            ("c open", "a*b+d*e"),
            ("d closed", "a*b+a*c+e"),
            ("d open", "a*b+a*c"),
            ("e closed", "a*b+a*c+d"),
            ("e open", "a*b+a*c"),
            ("CMOS-2", "0"),
            ("CMOS-3", "0"),
            ("CMOS-4", "1"),
        ];
        for (name, fn_src) in expect {
            let fault = faults
                .iter()
                .find(|f| f.display(&vt).to_string() == name)
                .unwrap_or_else(|| panic!("fault {name} not enumerated"));
            let effect = classify(&cell, *fault);
            assert_fn_eq(&effect, fn_src, 5);
        }
    }

    #[test]
    fn cmos1_is_timing_only_with_unchanged_function() {
        let cell = fig9_cell();
        let effect = classify(&cell, PhysicalFault::EvaluateClosed);
        assert_eq!(effect.requirement, DetectionRequirement::TimingOnly);
        let good = TruthTable::from_expr(&cell.logic_function(), 5);
        assert!(!effect.is_detectable_functionally(&good, 5));
    }

    #[test]
    fn cmos3_requires_at_speed() {
        let cell = fig9_cell();
        let effect = classify(&cell, PhysicalFault::PrechargeClosed);
        assert_eq!(effect.requirement, DetectionRequirement::AtSpeed);
        assert_eq!(effect.stuck_at, Some(StuckAt::Output { value: false }));
    }

    #[test]
    fn dynamic_nmos_both_precharge_faults_collapse_to_s0z() {
        // The paper's "very interesting fact".
        let cell = parse_cell(
            "g",
            "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a*b;",
        )
        .unwrap();
        let open = classify(&cell, PhysicalFault::PrechargeOpen);
        let closed = classify(&cell, PhysicalFault::PrechargeClosed);
        assert_eq!(open.function, Bexpr::FALSE);
        assert_eq!(closed.function, Bexpr::FALSE);
        assert_eq!(open.stuck_at, Some(StuckAt::Output { value: false }));
        assert_eq!(closed.stuck_at, Some(StuckAt::Output { value: false }));
        assert_eq!(open.requirement, DetectionRequirement::Standard);
        assert_eq!(closed.requirement, DetectionRequirement::Standard);
    }

    #[test]
    fn dynamic_nmos_switch_faults_are_input_stucks() {
        // nMOS-i open -> s0-i; nMOS-(n+i) closed -> s1-i, inverted output.
        let cell = parse_cell(
            "g",
            "TECHNOLOGY dynamic-nMOS; INPUT a,b; OUTPUT z; z := a+b;",
        )
        .unwrap();
        let sites = cell.literal_sites();
        let open = classify(
            &cell,
            PhysicalFault::SwitchOpen {
                site: sites[0].0,
                var: sites[0].1,
            },
        );
        // z = /(a+b); a open -> /(0+b) = /b
        assert_fn_eq(&open, "/b", 2);
        assert_eq!(
            open.stuck_at,
            Some(StuckAt::Input {
                var: sites[0].1,
                value: false
            })
        );
        let closed = classify(
            &cell,
            PhysicalFault::SwitchClosed {
                site: sites[1].0,
                var: sites[1].1,
            },
        );
        // b closed -> /(a+1) = 0
        assert_fn_eq(&closed, "0", 2);
    }

    #[test]
    fn repeated_literal_site_fault_is_not_a_named_stuck_at() {
        let cell = Cell::from_transmission("g", Technology::DominoCmos, &["a", "b", "c"], {
            let mut vars = VarTable::new();
            parse_expr("a*b+a*c", &mut vars).unwrap()
        });
        let sites = cell.literal_sites();
        // Open only the first 'a' transistor.
        let effect = classify(
            &cell,
            PhysicalFault::SwitchOpen {
                site: sites[0].0,
                var: sites[0].1,
            },
        );
        assert_eq!(effect.stuck_at, None);
        assert_fn_eq(&effect, "a*c", 3);
    }

    #[test]
    fn input_line_open_zeroes_all_occurrences() {
        let cell = Cell::from_transmission("g", Technology::DominoCmos, &["a", "b", "c"], {
            let mut vars = VarTable::new();
            parse_expr("a*b+a*c", &mut vars).unwrap()
        });
        let effect = classify(
            &cell,
            PhysicalFault::InputLineOpen {
                var: dynmos_logic::VarId(0),
            },
        );
        assert_fn_eq(&effect, "0", 3);
        assert_eq!(
            effect.stuck_at,
            Some(StuckAt::Input {
                var: dynmos_logic::VarId(0),
                value: false
            })
        );
    }

    #[test]
    fn inverter_faults() {
        let cell = fig9_cell();
        assert_eq!(
            classify(&cell, PhysicalFault::InverterPOpen).function,
            Bexpr::FALSE
        );
        assert_eq!(
            classify(&cell, PhysicalFault::InverterNOpen).function,
            Bexpr::TRUE
        );
        assert_eq!(
            classify(&cell, PhysicalFault::InverterPClosed).requirement,
            DetectionRequirement::AtSpeed
        );
        assert_eq!(
            classify(&cell, PhysicalFault::InverterNClosed).requirement,
            DetectionRequirement::AtSpeed
        );
    }

    #[test]
    fn static_stuck_at_model() {
        let cell = parse_cell(
            "g",
            "TECHNOLOGY static-CMOS; INPUT a,b; OUTPUT z; z := a*b;",
        )
        .unwrap();
        // z = /(a*b) = NAND; a stuck-1 -> /b.
        let effect = classify(
            &cell,
            PhysicalFault::InputStuck {
                var: dynmos_logic::VarId(0),
                value: true,
            },
        );
        assert_fn_eq(&effect, "/b", 2);
    }

    #[test]
    #[should_panic(expected = "domino fault")]
    fn cmos2_on_dynamic_nmos_panics() {
        let cell = parse_cell("g", "TECHNOLOGY dynamic-nMOS; INPUT a; OUTPUT z; z := a;").unwrap();
        classify(&cell, PhysicalFault::EvaluateOpen);
    }
}
