//! Property-based tests for the fault model and library generator.

use dynmos_core::{
    classify, enumerate_faults, substitute_site, validate_cell, DetectionRequirement, FaultLibrary,
    FaultUniverse, PhysicalFault,
};
use dynmos_logic::{Bexpr, TruthTable, VarId};
use dynmos_netlist::{Cell, Technology};
use proptest::prelude::*;

/// Strategy: a positive series-parallel expression over `nvars` variables.
fn arb_sp_expr(nvars: usize) -> impl Strategy<Value = Bexpr> {
    let leaf = (0..nvars as u32).prop_map(|v| Bexpr::var(VarId(v)));
    leaf.prop_recursive(3, 10, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Bexpr::and),
            prop::collection::vec(inner, 2..4).prop_map(Bexpr::or),
        ]
    })
}

/// Strategy: a domino or dynamic nMOS cell with 3 inputs.
fn arb_dynamic_cell() -> impl Strategy<Value = Cell> {
    (arb_sp_expr(3), prop::bool::ANY).prop_map(|(t, domino)| {
        let tech = if domino {
            Technology::DominoCmos
        } else {
            Technology::DynamicNmos
        };
        Cell::from_transmission("prop", tech, &["a", "b", "c"], t)
    })
}

fn count_literals(e: &Bexpr) -> usize {
    match e {
        Bexpr::Var(_) => 1,
        Bexpr::Not(i) => count_literals(i),
        Bexpr::And(ts) | Bexpr::Or(ts) => ts.iter().map(count_literals).sum(),
        Bexpr::Const(_) => 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// substitute_site changes at most the rows where the targeted
    /// literal matters, and reduces the literal count by one (constants
    /// fold).
    #[test]
    fn substitute_site_reduces_literals(t in arb_sp_expr(4), value: bool) {
        let lits = count_literals(&t);
        prop_assume!(lits >= 1);
        for site in 0..lits {
            let sub = substitute_site(&t, site, value);
            prop_assert!(count_literals(&sub) < lits, "site {}", site);
        }
    }

    /// A switch-open fault's function implies the fault-free one
    /// (monotone damage); switch-closed is implied by it. For domino
    /// (non-inverted) outputs.
    #[test]
    fn switch_faults_are_monotone_on_domino(t in arb_sp_expr(3)) {
        let cell = Cell::from_transmission("g", Technology::DominoCmos, &["a", "b", "c"], t);
        let good = TruthTable::from_expr(&cell.logic_function(), 3);
        for fault in enumerate_faults(&cell, FaultUniverse::paper_table()) {
            let effect = classify(&cell, fault);
            let bad = TruthTable::from_expr(&effect.function, 3);
            match fault {
                PhysicalFault::SwitchOpen { .. } => {
                    // bad <= good pointwise.
                    prop_assert!(bad.and(&good.not()).is_zero(), "{fault:?}");
                }
                PhysicalFault::SwitchClosed { .. } => {
                    prop_assert!(good.and(&bad.not()).is_zero(), "{fault:?}");
                }
                _ => {}
            }
        }
    }

    /// Library generation partitions the fault universe: every enumerated
    /// fault lands in exactly one class or the timing-only bucket.
    #[test]
    fn library_partitions_faults(cell in arb_dynamic_cell()) {
        let lib = FaultLibrary::generate(&cell);
        let universe = enumerate_faults(&cell, FaultUniverse::paper_table());
        for fault in &universe {
            let in_class = lib.class_of(*fault).is_some();
            let in_timing = lib.timing_only().contains(fault);
            prop_assert!(in_class ^ in_timing, "{fault:?} in {} places",
                usize::from(in_class) + usize::from(in_timing));
        }
        let members: usize = lib.classes().iter().map(|c| c.faults.len()).sum();
        prop_assert_eq!(members + lib.timing_only().len(), universe.len());
    }

    /// Classes are pairwise distinguishable and differ from fault-free.
    #[test]
    fn classes_are_distinct(cell in arb_dynamic_cell()) {
        let lib = FaultLibrary::generate(&cell);
        let good = lib.fault_free_table();
        for (i, a) in lib.classes().iter().enumerate() {
            prop_assert_ne!(&a.table, good, "class {} equals fault-free", a.id);
            for b in &lib.classes()[i + 1..] {
                prop_assert_ne!(&a.table, &b.table, "classes {} and {} collide", a.id, b.id);
            }
        }
    }

    /// Every class has at least one test pattern, and every pattern
    /// distinguishes it.
    #[test]
    fn classes_are_testable(cell in arb_dynamic_cell()) {
        let lib = FaultLibrary::generate(&cell);
        for class in lib.classes() {
            let patterns = lib.test_patterns(class.id);
            prop_assert!(!patterns.is_empty(), "class {} untestable", class.id);
            for p in patterns {
                prop_assert_ne!(lib.fault_free_table().get(p), class.table.get(p));
            }
        }
    }

    /// The classified stuck-at annotation, when present, is consistent
    /// with the faulty function.
    #[test]
    fn stuck_at_annotation_is_consistent(cell in arb_dynamic_cell()) {
        use dynmos_core::StuckAt;
        for fault in enumerate_faults(&cell, FaultUniverse::full()) {
            let effect = classify(&cell, fault);
            match effect.stuck_at {
                Some(StuckAt::Output { value }) => {
                    prop_assert_eq!(effect.function, Bexpr::Const(value), "{:?}", fault);
                }
                Some(StuckAt::Input { var, value }) => {
                    let direct = cell.logic_function().substitute(var, value);
                    let ta = TruthTable::from_expr(&effect.function, 3);
                    let tb = TruthTable::from_expr(&direct, 3);
                    prop_assert_eq!(ta, tb, "{:?}", fault);
                }
                None => {}
            }
        }
    }

    /// In the paper-table universe, CMOS-1 is always timing-only for
    /// domino cells; any *other* timing-only fault must be a switch fault
    /// on a logically redundant literal (e.g. a duplicated series
    /// transistor in `T = b*b`) — the clocking faults always have an
    /// effect.
    #[test]
    fn timing_only_is_cmos1_or_redundant_switch(cell in arb_dynamic_cell()) {
        let lib = FaultLibrary::generate(&cell);
        let timing = lib.timing_only();
        match cell.technology() {
            Technology::DominoCmos => {
                prop_assert!(timing.contains(&PhysicalFault::EvaluateClosed));
            }
            Technology::DynamicNmos => {
                prop_assert!(!timing.contains(&PhysicalFault::PrechargeOpen));
                prop_assert!(!timing.contains(&PhysicalFault::PrechargeClosed));
            }
            _ => unreachable!("strategy only produces dynamic cells"),
        }
        for f in timing {
            prop_assert!(
                matches!(
                    f,
                    PhysicalFault::EvaluateClosed
                        | PhysicalFault::SwitchOpen { .. }
                        | PhysicalFault::SwitchClosed { .. }
                ),
                "{f:?} cannot be timing-only"
            );
        }
    }

    /// At-speed requirement appears only on the documented faults.
    #[test]
    fn at_speed_faults_are_the_documented_ones(cell in arb_dynamic_cell()) {
        for fault in enumerate_faults(&cell, FaultUniverse::full()) {
            let effect = classify(&cell, fault);
            let expect_at_speed = matches!(
                (cell.technology(), fault),
                (Technology::DominoCmos, PhysicalFault::PrechargeClosed)
                    | (Technology::DominoCmos, PhysicalFault::InverterPClosed)
                    | (Technology::DominoCmos, PhysicalFault::InverterNClosed)
            );
            prop_assert_eq!(
                effect.requirement == DetectionRequirement::AtSpeed,
                expect_at_speed,
                "{:?}", fault
            );
        }
    }
}

/// Slow but decisive: sampled switch-level validation on random cells
/// (bounded count — the exhaustive corpus run lives in `dynmos-bench`).
#[test]
fn sampled_cells_validate_at_switch_level() {
    use dynmos_netlist::generate::random_domino_cell;
    for seed in 100..104 {
        let cell = random_domino_cell(seed, 3, 5);
        let v = validate_cell(&cell);
        assert!(v.all_combinational(), "seed {seed}");
        assert!(v.all_match(), "seed {seed}");
    }
}
