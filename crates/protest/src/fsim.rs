//! Static fault simulation, 64-way pattern-parallel and fault-sharded
//! across threads.
//!
//! "Since we are only dealing with combinational networks, a static fault
//! simulation is sufficient, if the user wants to validate the predictions
//! of PROTEST." — and the paper's dynamic fault model is exactly what
//! makes this legal: every fault stays combinational, so the classic
//! inject-and-compare simulation works (unlike for static CMOS stuck-opens,
//! where "the fault injection algorithms … don't work any more").
//!
//! The simulator is serial-fault, parallel-pattern: each 64-pattern batch
//! is evaluated once for the fault-free machine on the network's compiled
//! instruction tape, and each live fault is then replayed *incrementally*
//! — only its fanout cone's tape slice, comparing only the primary
//! outputs the cone reaches ([`dynmos_netlist::PackedEvaluator`]). Fault
//! dropping removes detected faults from the live list.
//!
//! On top of that, [`FaultSimulator::run_random`] shards work over
//! threads along whichever axis the two-axis planner
//! ([`crate::parallel::plan_shards`]) picks: the **fault axis** (each
//! worker owns an evaluator and replays the whole counter-based stream
//! for its fault slice) when the list can feed every worker, or the
//! **pattern axis** (each worker simulates every fault over a contiguous
//! batch range of the stream, [`crate::random::StreamSpan`]) in the
//! few-fault regime. Pattern shards merge by the minimum detection index
//! per fault — a fault's first detection over the whole stream is the
//! earliest of its per-range first detections — so either axis is
//! **bit-identical to the serial run at any thread count** (see the
//! determinism contract in [`crate::parallel`]).

use crate::budget::{self, RunBudget, RunStatus, StopReason};
use crate::list::FaultEntry;
use crate::parallel::{plan_shards, try_run_sharded, Parallelism, ShardError, ShardPlan};
use crate::random::PatternSource;
use crate::service::json::Json;
use dynmos_netlist::{Network, PackedEvaluator};
use std::time::Duration;

/// Stream batches per budgeted chunk (256 batches = 16384 patterns):
/// the granularity at which budgets are checked and checkpoints land.
/// A property of the workload, never of the thread count — chunking is
/// invisible to the merged result (see [`crate::parallel`]).
const CHUNK_BATCHES: u64 = 256;

/// Result of a fault-simulation run.
#[derive(Debug, Clone)]
pub struct FsimOutcome {
    /// For each fault (by list index): the 1-based pattern number at which
    /// it was first detected, or `None` if it escaped.
    pub detected_at: Vec<Option<u64>>,
    /// Total patterns applied.
    pub patterns_applied: u64,
    /// Coverage curve: `(patterns, detected count)` sampled after each
    /// 64-pattern batch.
    pub coverage_curve: Vec<(u64, usize)>,
}

impl FsimOutcome {
    /// Fraction of faults detected. An empty fault list is vacuously
    /// fully covered (`1.0`): every fault in it — all zero of them — was
    /// detected, and "0% coverage" would read as a failed run.
    pub fn coverage(&self) -> f64 {
        if self.detected_at.is_empty() {
            return 1.0;
        }
        let detected = self.detected_at.iter().filter(|d| d.is_some()).count();
        detected as f64 / self.detected_at.len() as f64
    }

    /// Indices of undetected faults.
    pub fn escapes(&self) -> Vec<usize> {
        self.detected_at
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.is_none().then_some(i))
            .collect()
    }
}

/// Reconstructs the per-batch coverage curve from detection indices: the
/// count at pattern budget `t` is exactly the number of faults with
/// `detected_at <= t`, which is what the serial loop accumulates batch by
/// batch.
fn curve_from(detected_at: &[Option<u64>], patterns_applied: u64) -> Vec<(u64, usize)> {
    let mut sorted: Vec<u64> = detected_at.iter().flatten().copied().collect();
    sorted.sort_unstable();
    let mut curve = Vec::with_capacity(patterns_applied.div_ceil(64) as usize);
    let mut applied = 0u64;
    while applied < patterns_applied {
        applied += (patterns_applied - applied).min(64);
        let detected = sorted.partition_point(|&d| d <= applied);
        curve.push((applied, detected));
    }
    curve
}

/// Merges per-pattern-shard detection indices: a fault's first detection
/// over the whole stream is the **minimum** of its first detections over
/// any disjoint cover of the stream (absent in a range ⇒ `None` there).
/// The merge is order-independent, so the result cannot depend on how
/// the pattern axis was cut.
fn merge_min_detection(
    faults: usize,
    spans: impl IntoIterator<Item = Vec<Option<u64>>>,
) -> Vec<Option<u64>> {
    let mut merged: Vec<Option<u64>> = vec![None; faults];
    for span in spans {
        debug_assert_eq!(span.len(), faults);
        for (m, d) in merged.iter_mut().zip(span) {
            *m = match (*m, d) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
    }
    merged
}

/// Resumable state of an interrupted [`FaultSimulator::run_random`]:
/// the stream position the run started at, how many batches are fully
/// simulated, and the per-fault detection state so far. Feeding it to
/// [`FaultSimulator::resume_random`] continues the identical walk — the
/// completed result is bit-identical to an uninterrupted serial run.
#[derive(Debug, Clone)]
pub struct FsimCheckpoint {
    /// Stream position at the original run's start (batch addressing is
    /// absolute, so resuming does not depend on the source's cursor).
    start: u64,
    /// Batches fully simulated so far.
    batches_done: u64,
    /// The original run's pattern budget.
    max_patterns: u64,
    /// Detection state so far (1-based absolute pattern indices).
    detected_at: Vec<Option<u64>>,
}

impl FsimCheckpoint {
    /// The checkpoint as a JSON object — every field is exact (counts
    /// stay within `2^53`, where JSON numbers are integers), so
    /// [`FsimCheckpoint::from_json`] round-trips bit-identically and a
    /// resume from the deserialized checkpoint equals a resume from the
    /// original.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::str("fsim")),
            ("start".into(), Json::num(self.start)),
            ("batches_done".into(), Json::num(self.batches_done)),
            ("max_patterns".into(), Json::num(self.max_patterns)),
            (
                "detected_at".into(),
                Json::Arr(
                    self.detected_at
                        .iter()
                        .map(|d| d.map_or(Json::Null, Json::num))
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a checkpoint from [`FsimCheckpoint::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message for missing/mistyped fields or a wrong `kind`.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        if v.get("kind").and_then(Json::as_str) != Some("fsim") {
            return Err("not an fsim checkpoint".into());
        }
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("fsim checkpoint: bad or missing {k:?}"))
        };
        let detected_at = v
            .get("detected_at")
            .and_then(Json::as_arr)
            .ok_or("fsim checkpoint: bad or missing \"detected_at\"")?
            .iter()
            .map(|d| match d {
                Json::Null => Ok(None),
                other => other
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("fsim checkpoint: bad detection index {other}")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            start: field("start")?,
            batches_done: field("batches_done")?,
            max_patterns: field("max_patterns")?,
            detected_at,
        })
    }

    /// Patterns fully simulated so far.
    pub fn patterns_done(&self) -> u64 {
        (self.batches_done * 64).min(self.max_patterns)
    }

    /// The original run's pattern budget.
    pub fn max_patterns(&self) -> u64 {
        self.max_patterns
    }

    /// Faults detected so far.
    pub fn detected_count(&self) -> usize {
        self.detected_at.iter().filter(|d| d.is_some()).count()
    }
}

/// Result of a budgeted fault-simulation call: the outcome over the
/// patterns actually applied, whether the run completed, and — when
/// interrupted — the checkpoint to resume from.
#[derive(Debug, Clone)]
pub struct BudgetedFsim {
    /// Detection state over the patterns applied so far (a completed
    /// run's outcome equals the unbudgeted run's exactly).
    pub outcome: FsimOutcome,
    /// Completed, or interrupted at a chunk boundary.
    pub status: RunStatus,
    /// `Some` exactly when interrupted: resume with
    /// [`FaultSimulator::resume_random`].
    pub checkpoint: Option<FsimCheckpoint>,
    /// `Some` exactly when the status is
    /// [`RunStatus::Interrupted`]`(`[`StopReason::WorkerFailed`]`)`: the
    /// shard whose worker panicked twice. The failed chunk was **not**
    /// merged — outcome and checkpoint hold the state at the last
    /// completed chunk boundary, so resuming retries the failed chunk.
    pub worker_error: Option<ShardError>,
}

/// Serial-fault, pattern-parallel fault simulator with fault dropping and
/// optional two-axis (fault- or pattern-sharded) multithreading.
#[derive(Debug, Clone)]
pub struct FaultSimulator<'n> {
    net: &'n Network,
    parallelism: Parallelism,
}

impl<'n> FaultSimulator<'n> {
    /// Creates a simulator for `net` with the default parallelism
    /// ([`Parallelism::Auto`]: all available cores — safe, because the
    /// parallel path is bit-identical to the serial one).
    pub fn new(net: &'n Network) -> Self {
        Self::with_parallelism(net, Parallelism::default())
    }

    /// Creates a simulator with an explicit thread policy.
    pub fn with_parallelism(net: &'n Network, parallelism: Parallelism) -> Self {
        Self { net, parallelism }
    }

    /// The configured thread policy.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Runs random patterns from `source` until all faults are detected or
    /// `max_patterns` have been applied. The final batch is lane-masked,
    /// so `patterns_applied` and detection indices never exceed
    /// `max_patterns` even when it is not a multiple of 64.
    ///
    /// Work is sharded over worker threads along the axis
    /// [`plan_shards`] picks: fault slices replaying the whole stream, or
    /// — when the fault list cannot feed every worker — contiguous batch
    /// ranges of the stream covering the whole list, merged by the
    /// minimum detection index per fault. The result (and the source's
    /// final cursor) is bit-identical at any thread count on either axis.
    ///
    /// When `DYNMOS_BUDGET_MS` is set, the run is executed as an
    /// interrupt/resume loop with that per-leg deadline — exercising
    /// every checkpoint path while returning the identical result.
    ///
    /// # Panics
    ///
    /// Panics if the source arity does not match the network.
    pub fn run_random(
        &self,
        faults: &[FaultEntry],
        source: &mut PatternSource,
        max_patterns: u64,
    ) -> FsimOutcome {
        // A worker that failed even its serial retry keeps the
        // historical panicking contract on this entry point.
        let check = |run: &BudgetedFsim| {
            if let Some(e) = &run.worker_error {
                panic!("{e}");
            }
        };
        if let Some(ms) = budget::env_budget_ms() {
            let leg = || RunBudget::deadline_in(Duration::from_millis(ms));
            let mut run = self.run_random_budgeted(faults, source, max_patterns, &leg());
            check(&run);
            while let Some(cp) = run.checkpoint.take() {
                run = self.resume_random(faults, source, cp, &leg());
                check(&run);
            }
            return run.outcome;
        }
        let run = self.run_random_budgeted(faults, source, max_patterns, &RunBudget::unlimited());
        check(&run);
        run.outcome
    }

    /// [`Self::run_random`] under a [`RunBudget`]: stops at the first
    /// chunk boundary past the deadline, cancellation, or per-call
    /// pattern cap, returning the partial outcome plus a checkpoint to
    /// [`Self::resume_random`] from. At least one chunk of work is done
    /// per call (forward progress), and a run completed across any
    /// number of interruptions is bit-identical to an uninterrupted
    /// serial run — detection indices, `patterns_applied`, coverage
    /// curve, and the source's final cursor.
    ///
    /// # Panics
    ///
    /// Panics if the source arity does not match the network.
    pub fn run_random_budgeted(
        &self,
        faults: &[FaultEntry],
        source: &mut PatternSource,
        max_patterns: u64,
        run_budget: &RunBudget,
    ) -> BudgetedFsim {
        assert_eq!(
            source.input_count(),
            self.net.primary_inputs().len(),
            "pattern source arity mismatch"
        );
        if faults.is_empty() {
            return BudgetedFsim {
                outcome: FsimOutcome {
                    detected_at: Vec::new(),
                    patterns_applied: 0,
                    coverage_curve: Vec::new(),
                },
                status: RunStatus::Completed,
                checkpoint: None,
                worker_error: None,
            };
        }
        let checkpoint = FsimCheckpoint {
            start: source.position(),
            batches_done: 0,
            max_patterns,
            detected_at: vec![None; faults.len()],
        };
        self.advance(faults, source, checkpoint, run_budget)
    }

    /// Continues an interrupted [`Self::run_random_budgeted`] run from
    /// its checkpoint under a fresh budget. The fault list must be the
    /// one the checkpoint was taken with; batch addressing is absolute,
    /// so the source need only be the same stream (same seed and
    /// weights) — its cursor is ignored and rewritten.
    ///
    /// # Panics
    ///
    /// Panics on source arity mismatch or if the checkpoint's fault
    /// count differs from `faults`.
    pub fn resume_random(
        &self,
        faults: &[FaultEntry],
        source: &mut PatternSource,
        checkpoint: FsimCheckpoint,
        run_budget: &RunBudget,
    ) -> BudgetedFsim {
        assert_eq!(
            source.input_count(),
            self.net.primary_inputs().len(),
            "pattern source arity mismatch"
        );
        assert_eq!(
            checkpoint.detected_at.len(),
            faults.len(),
            "checkpoint fault count mismatch"
        );
        self.advance(faults, source, checkpoint, run_budget)
    }

    /// The chunked walk both entry points share. Each chunk simulates
    /// only the still-live faults over a fixed batch range and merges
    /// by the usual order-independent rules, so chunk boundaries are
    /// invisible to the final state; budget checks happen only between
    /// chunks, after at least one has run.
    fn advance(
        &self,
        faults: &[FaultEntry],
        source: &mut PatternSource,
        checkpoint: FsimCheckpoint,
        run_budget: &RunBudget,
    ) -> BudgetedFsim {
        let FsimCheckpoint {
            start,
            mut batches_done,
            max_patterns,
            mut detected_at,
        } = checkpoint;
        let total_batches = max_patterns.div_ceil(64);
        let threads = self.parallelism.resolve();
        // Unlimited budgets take the historical single-pass path: one
        // chunk spanning the whole remaining stream.
        let chunk = if run_budget.is_unlimited() {
            total_batches.max(1)
        } else {
            CHUNK_BATCHES
        };
        let call_start = batches_done;
        let cap_batches = run_budget.max_patterns.map(|p| p.div_ceil(64).max(1));
        let src: &PatternSource = source;
        let mut stop: Option<StopReason> = None;
        let mut worker_error: Option<ShardError> = None;
        while batches_done < total_batches {
            let live: Vec<usize> = detected_at
                .iter()
                .enumerate()
                .filter_map(|(i, d)| d.is_none().then_some(i))
                .collect();
            if live.is_empty() {
                break;
            }
            let mut span_end = (batches_done + chunk).min(total_batches);
            if let Some(cap) = cap_batches {
                span_end = span_end.min(call_start + cap);
            }
            let span = batches_done..span_end;
            // A shard failing both its threaded attempt and serial
            // retry stops the run *before* `batches_done` advances: the
            // failed chunk's partial results are discarded whole, the
            // checkpoint stays at the last merged boundary, and a
            // resume (or supervisor retry) replays the failed chunk.
            match plan_shards(live.len(), span.end - span.start, threads) {
                ShardPlan::Faults(workers) => {
                    match try_run_sharded(live.len(), workers, |range| {
                        self.random_span(
                            faults,
                            &live[range],
                            src,
                            start,
                            span.clone(),
                            max_patterns,
                        )
                    }) {
                        Ok(results) => {
                            for (&fi, d) in live.iter().zip(results.into_iter().flatten()) {
                                if d.is_some() {
                                    detected_at[fi] = d;
                                }
                            }
                        }
                        Err(e) => {
                            worker_error = Some(e);
                            stop = Some(StopReason::WorkerFailed);
                            break;
                        }
                    }
                }
                ShardPlan::Patterns(workers) => {
                    match try_run_sharded((span.end - span.start) as usize, workers, |range| {
                        self.random_span(
                            faults,
                            &live,
                            src,
                            start,
                            span.start + range.start as u64..span.start + range.end as u64,
                            max_patterns,
                        )
                    }) {
                        Ok(spans) => {
                            for (&fi, d) in live.iter().zip(merge_min_detection(live.len(), spans))
                            {
                                if d.is_some() {
                                    detected_at[fi] = d;
                                }
                            }
                        }
                        Err(e) => {
                            worker_error = Some(e);
                            stop = Some(StopReason::WorkerFailed);
                            break;
                        }
                    }
                }
            }
            batches_done = span.end;
            // Budget checks only between chunks, and only while work
            // remains — a run that just finished is Completed even if
            // the deadline passed during its last chunk.
            let remains = batches_done < total_batches && detected_at.iter().any(Option::is_none);
            if !remains {
                break;
            }
            if cap_batches.is_some_and(|cap| batches_done - call_start >= cap) {
                stop = Some(StopReason::PatternCap);
                break;
            }
            if let Some(reason) = run_budget.stop_requested() {
                stop = Some(reason);
                break;
            }
        }
        if let Some(reason) = stop {
            let patterns_applied = (batches_done * 64).min(max_patterns);
            source.set_position(start + batches_done);
            return BudgetedFsim {
                outcome: FsimOutcome {
                    coverage_curve: curve_from(&detected_at, patterns_applied),
                    detected_at: detected_at.clone(),
                    patterns_applied,
                },
                status: RunStatus::Interrupted(reason),
                checkpoint: Some(FsimCheckpoint {
                    start,
                    batches_done,
                    max_patterns,
                    detected_at,
                }),
                worker_error,
            };
        }
        // Reconstruct the serial stopping point from the merged indices:
        // the serial loop consumes batches until its live list empties
        // (the batch holding the last first-detection) or the budget runs
        // out — identical on both axes and at any chunking, because the
        // merged indices are.
        let batches = if detected_at.iter().all(Option::is_some) {
            detected_at
                .iter()
                .flatten()
                .max()
                .map_or(0, |d| d.div_ceil(64))
        } else {
            total_batches
        };
        let patterns_applied = (batches * 64).min(max_patterns);
        source.set_position(start + batches);
        BudgetedFsim {
            outcome: FsimOutcome {
                coverage_curve: curve_from(&detected_at, patterns_applied),
                detected_at,
                patterns_applied,
            },
            status: RunStatus::Completed,
            checkpoint: None,
            worker_error: None,
        }
    }

    /// The kernel both axes share: simulates the fault-list `subset`
    /// (indices into `faults`) over the stream batches `span` (relative
    /// to the stream offset `start`), recording absolute 1-based
    /// first-detection indices in subset order and dropping each fault
    /// at its first detection within the span. The fault axis calls it
    /// with the full span and a subset slice; the pattern axis with a
    /// span slice and the full subset.
    fn random_span(
        &self,
        faults: &[FaultEntry],
        subset: &[usize],
        source: &PatternSource,
        start: u64,
        span: std::ops::Range<u64>,
        max_patterns: u64,
    ) -> Vec<Option<u64>> {
        let mut ev = PackedEvaluator::new(self.net);
        let prepared: Vec<_> = subset
            .iter()
            .map(|&fi| self.net.prepare_fault(&faults[fi].fault))
            .collect();
        let stream = source.span(start + span.start..start + span.end);
        let mut detected_at: Vec<Option<u64>> = vec![None; subset.len()];
        let mut live: Vec<usize> = (0..subset.len()).collect();
        let mut batch = vec![0u64; source.input_count()];
        for k in 0..stream.len() {
            if live.is_empty() {
                break;
            }
            stream.fill_batch(k, &mut batch);
            ev.eval(&batch);
            let applied = (span.start + k) * 64;
            let lanes = (max_patterns - applied).min(64);
            let lanes_mask = if lanes == 64 {
                u64::MAX
            } else {
                (1u64 << lanes) - 1
            };
            live.retain(|&fi| {
                let differ = ev.fault_diff64(&prepared[fi]) & lanes_mask;
                if differ != 0 {
                    let first_lane = differ.trailing_zeros() as u64;
                    detected_at[fi] = Some(applied + first_lane + 1);
                    false // drop
                } else {
                    true
                }
            });
        }
        detected_at
    }

    /// Applies an explicit deterministic pattern set (each pattern a PI
    /// assignment); useful for validating ATPG test sets.
    pub fn run_patterns(&self, faults: &[FaultEntry], patterns: &[Vec<bool>]) -> FsimOutcome {
        let n = self.net.primary_inputs().len();
        let mut ev = PackedEvaluator::new(self.net);
        let prepared: Vec<_> = faults
            .iter()
            .map(|e| self.net.prepare_fault(&e.fault))
            .collect();
        let mut detected_at: Vec<Option<u64>> = vec![None; faults.len()];
        let mut live: Vec<usize> = (0..faults.len()).collect();
        let mut detected = 0usize;
        let mut applied = 0u64;
        let mut curve = Vec::new();
        let mut batch = vec![0u64; n];
        for chunk in patterns.chunks(64) {
            batch.fill(0);
            for (lane, pat) in chunk.iter().enumerate() {
                assert_eq!(pat.len(), n, "pattern arity mismatch");
                for (i, &b) in pat.iter().enumerate() {
                    if b {
                        batch[i] |= 1 << lane;
                    }
                }
            }
            let lanes_mask = if chunk.len() == 64 {
                u64::MAX
            } else {
                (1u64 << chunk.len()) - 1
            };
            ev.eval(&batch);
            live.retain(|&fi| {
                let differ = ev.fault_diff64(&prepared[fi]) & lanes_mask;
                if differ != 0 {
                    let first_lane = differ.trailing_zeros() as u64;
                    detected_at[fi] = Some(applied + first_lane + 1);
                    detected += 1;
                    false
                } else {
                    true
                }
            });
            applied += chunk.len() as u64;
            curve.push((applied, detected));
        }
        FsimOutcome {
            detected_at,
            patterns_applied: applied,
            coverage_curve: curve,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::network_fault_list;
    use dynmos_netlist::generate::{
        and_or_tree, c17_dynamic_nmos, domino_wide_and, fig9_cell, single_cell_network,
    };

    /// Index of the constant-0 gate-function class (the s0-z fault).
    fn s0z_index(list: &[FaultEntry]) -> usize {
        list.iter()
            .position(|e| {
                matches!(&e.fault,
                    dynmos_netlist::NetworkFault::GateFunction(_, f)
                        if *f == dynmos_logic::Bexpr::FALSE)
            })
            .expect("s0-z class exists")
    }

    #[test]
    fn random_simulation_reaches_full_coverage_on_fig9() {
        let net = single_cell_network(fig9_cell());
        let faults = network_fault_list(&net);
        let mut src = PatternSource::uniform(11, 5);
        let out = FaultSimulator::new(&net).run_random(&faults, &mut src, 10_000);
        assert_eq!(out.coverage(), 1.0, "escapes: {:?}", out.escapes());
    }

    #[test]
    fn coverage_curve_is_monotone() {
        let net = c17_dynamic_nmos();
        let faults = network_fault_list(&net);
        let mut src = PatternSource::uniform(3, 5);
        let out = FaultSimulator::new(&net).run_random(&faults, &mut src, 1024);
        for w in out.coverage_curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn hard_fault_detected_late_under_uniform() {
        let n = 10;
        let net = single_cell_network(domino_wide_and(n));
        let faults = network_fault_list(&net);
        let mut src = PatternSource::uniform(19, n);
        let out = FaultSimulator::new(&net).run_random(&faults, &mut src, 200_000);
        let hard = s0z_index(&faults);
        let t = out.detected_at[hard].expect("should eventually hit all-ones");
        // Expected detection time ~2^10 = 1024; allow wide slack but
        // require it to be non-trivial.
        assert!(t > 64, "detected suspiciously early: {t}");
    }

    #[test]
    fn weighted_patterns_detect_hard_fault_much_faster() {
        let n = 10;
        let net = single_cell_network(domino_wide_and(n));
        let faults = network_fault_list(&net);
        let hard = s0z_index(&faults);
        let mut uni = PatternSource::uniform(19, n);
        let mut opt = PatternSource::new(19, vec![0.9375; n]);
        let sim = FaultSimulator::new(&net);
        let t_uni = sim.run_random(&faults, &mut uni, 500_000).detected_at[hard].unwrap();
        let t_opt = sim.run_random(&faults, &mut opt, 500_000).detected_at[hard].unwrap();
        assert!(
            t_uni > 10 * t_opt,
            "weighted {t_opt} should be >10x faster than uniform {t_uni}"
        );
    }

    #[test]
    fn deterministic_pattern_set_detection() {
        let net = single_cell_network(fig9_cell());
        let faults = network_fault_list(&net);
        // Exhaustive 32-pattern set must catch everything.
        let patterns: Vec<Vec<bool>> = (0..32u64)
            .map(|w| (0..5).map(|i| (w >> i) & 1 == 1).collect())
            .collect();
        let out = FaultSimulator::new(&net).run_patterns(&faults, &patterns);
        assert_eq!(out.coverage(), 1.0);
        assert_eq!(out.patterns_applied, 32);
    }

    #[test]
    fn partial_pattern_set_leaves_escapes() {
        let net = single_cell_network(domino_wide_and(8));
        let faults = network_fault_list(&net);
        // All-zeros only: detects s1-z-ish faults, misses s0-z.
        let out = FaultSimulator::new(&net).run_patterns(&faults, &[vec![false; 8]]);
        assert!(out.coverage() < 1.0);
        assert!(!out.escapes().is_empty());
    }

    #[test]
    fn run_random_respects_non_multiple_of_64_budget() {
        let net = single_cell_network(domino_wide_and(10));
        let faults = network_fault_list(&net);
        let mut src = PatternSource::uniform(19, 10);
        let out = FaultSimulator::new(&net).run_random(&faults, &mut src, 100);
        assert!(out.patterns_applied <= 100, "{}", out.patterns_applied);
        for d in out.detected_at.iter().flatten() {
            assert!(*d <= 100, "detection index {d} exceeds budget");
        }
        assert!(out.coverage_curve.iter().all(|&(p, _)| p <= 100));
    }

    #[test]
    fn coverage_curve_counts_match_detected_at() {
        let net = c17_dynamic_nmos();
        let faults = network_fault_list(&net);
        let mut src = PatternSource::uniform(7, 5);
        let out = FaultSimulator::new(&net).run_random(&faults, &mut src, 512);
        let (_, final_count) = *out.coverage_curve.last().unwrap();
        assert_eq!(
            final_count,
            out.detected_at.iter().filter(|d| d.is_some()).count()
        );
    }

    #[test]
    fn detection_times_are_one_based_and_bounded() {
        let net = and_or_tree(2);
        let faults = network_fault_list(&net);
        let mut src = PatternSource::uniform(5, 4);
        let out = FaultSimulator::new(&net).run_random(&faults, &mut src, 2048);
        for d in out.detected_at.iter().flatten() {
            assert!(*d >= 1 && *d <= out.patterns_applied);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let net = c17_dynamic_nmos();
        let faults = network_fault_list(&net);
        let mut serial_src = PatternSource::uniform(23, 5);
        let serial = FaultSimulator::with_parallelism(&net, Parallelism::Serial).run_random(
            &faults,
            &mut serial_src,
            4096,
        );
        for threads in [2usize, 3, 8] {
            let mut src = PatternSource::uniform(23, 5);
            let sim = FaultSimulator::with_parallelism(&net, Parallelism::Fixed(threads));
            let out = sim.run_random(&faults, &mut src, 4096);
            assert_eq!(out.detected_at, serial.detected_at, "threads={threads}");
            assert_eq!(out.patterns_applied, serial.patterns_applied);
            assert_eq!(out.coverage_curve, serial.coverage_curve);
            assert_eq!(src.position(), serial_src.position());
        }
    }

    #[test]
    fn empty_fault_list_is_vacuously_covered() {
        // Convention: zero faults to find means nothing escaped — full
        // coverage, not the alarming 0.0 this used to report.
        let net = c17_dynamic_nmos();
        let mut src = PatternSource::uniform(1, 5);
        let out = FaultSimulator::new(&net).run_random(&[], &mut src, 128);
        assert_eq!(out.coverage(), 1.0);
        assert_eq!(out.patterns_applied, 0);
        assert!(out.escapes().is_empty());
        let from_patterns = FaultSimulator::new(&net).run_patterns(&[], &[vec![false; 5]]);
        assert_eq!(from_patterns.coverage(), 1.0);
    }

    #[test]
    fn few_fault_pattern_axis_matches_serial() {
        // 2 live faults < threads forces the pattern-axis plan; the
        // min-detection-index merge must reproduce the serial run.
        let net = single_cell_network(domino_wide_and(10));
        let faults = network_fault_list(&net);
        let hard = s0z_index(&faults);
        let few = vec![faults[0].clone(), faults[hard].clone()];
        let mut serial_src = PatternSource::uniform(19, 10);
        let serial = FaultSimulator::with_parallelism(&net, Parallelism::Serial).run_random(
            &few,
            &mut serial_src,
            100_000,
        );
        for threads in [4usize, 8, 16] {
            let mut src = PatternSource::uniform(19, 10);
            let sim = FaultSimulator::with_parallelism(&net, Parallelism::Fixed(threads));
            let out = sim.run_random(&few, &mut src, 100_000);
            assert_eq!(out.detected_at, serial.detected_at, "threads={threads}");
            assert_eq!(out.patterns_applied, serial.patterns_applied);
            assert_eq!(out.coverage_curve, serial.coverage_curve);
            assert_eq!(src.position(), serial_src.position());
        }
    }

    #[test]
    fn pattern_cap_interrupts_and_resume_matches_uninterrupted() {
        let net = single_cell_network(domino_wide_and(10));
        let faults = network_fault_list(&net);
        let sim = FaultSimulator::with_parallelism(&net, Parallelism::Serial);
        let mut full_src = PatternSource::uniform(19, 10);
        let full = sim.run_random(&faults, &mut full_src, 100_000);
        // 256 patterns per call: far below the hard fault's detection
        // time, so the cap interrupts repeatedly before completion.
        let cap = RunBudget::unlimited().with_max_patterns(256);
        let mut src = PatternSource::uniform(19, 10);
        let mut run = sim.run_random_budgeted(&faults, &mut src, 100_000, &cap);
        let mut legs = 0usize;
        while let Some(cp) = run.checkpoint.take() {
            assert_eq!(run.status, RunStatus::Interrupted(StopReason::PatternCap));
            assert_eq!(run.outcome.patterns_applied, cp.patterns_done());
            legs += 1;
            assert!(legs < 10_000, "resume loop failed to make progress");
            run = sim.resume_random(&faults, &mut src, cp, &cap);
        }
        assert!(legs > 0, "cap never interrupted");
        assert_eq!(run.status, RunStatus::Completed);
        assert_eq!(run.outcome.detected_at, full.detected_at);
        assert_eq!(run.outcome.patterns_applied, full.patterns_applied);
        assert_eq!(run.outcome.coverage_curve, full.coverage_curve);
        assert_eq!(src.position(), full_src.position());
    }

    #[test]
    fn cancel_interrupts_after_one_chunk_of_forward_progress() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let net = single_cell_network(domino_wide_and(10));
        let faults = network_fault_list(&net);
        // Heavily biased-low inputs: the all-ones fault never fires, so
        // the run cannot complete early and the cancel must be honored.
        let mut src = PatternSource::new(19, vec![0.0625; 10]);
        let pre_cancelled = Arc::new(AtomicBool::new(true));
        let b = RunBudget::unlimited().with_cancel(pre_cancelled);
        let sim = FaultSimulator::with_parallelism(&net, Parallelism::Serial);
        let run = sim.run_random_budgeted(&faults, &mut src, 1_000_000, &b);
        assert_eq!(run.status, RunStatus::Interrupted(StopReason::Cancelled));
        // Forward progress: exactly one chunk ran before the (already
        // raised) flag was checked.
        assert_eq!(run.outcome.patterns_applied, CHUNK_BATCHES * 64);
        let cp = run
            .checkpoint
            .expect("interrupted run carries a checkpoint");
        assert_eq!(cp.patterns_done(), CHUNK_BATCHES * 64);
        assert_eq!(src.position(), CHUNK_BATCHES);
    }

    #[test]
    fn interrupted_outcome_is_a_valid_partial_result() {
        let net = single_cell_network(domino_wide_and(10));
        let faults = network_fault_list(&net);
        let sim = FaultSimulator::with_parallelism(&net, Parallelism::Serial);
        let mut src = PatternSource::uniform(19, 10);
        let cap = RunBudget::unlimited().with_max_patterns(256);
        let run = sim.run_random_budgeted(&faults, &mut src, 100_000, &cap);
        // The partial outcome must agree with an unbudgeted run whose
        // whole budget is the patterns applied so far.
        let mut trunc_src = PatternSource::uniform(19, 10);
        let trunc = sim.run_random(&faults, &mut trunc_src, run.outcome.patterns_applied);
        assert_eq!(run.outcome.detected_at, trunc.detected_at);
        assert_eq!(run.outcome.coverage_curve, trunc.coverage_curve);
    }

    #[test]
    fn run_random_advances_source_cursor() {
        let net = c17_dynamic_nmos();
        let faults = network_fault_list(&net);
        let mut src = PatternSource::uniform(2, 5);
        let sim = FaultSimulator::new(&net);
        let first = sim.run_random(&faults, &mut src, 256);
        // The cursor moved past the consumed batches, so a second run
        // sees fresh patterns.
        assert_eq!(src.position(), first.patterns_applied.div_ceil(64));
    }
}
