//! Deterministic fault injection for the job service and the sharded
//! kernels — the harness that proves the robustness layer instead of
//! trusting it.
//!
//! A [`FaultPlan`] describes *where* and *how often* artificial faults
//! fire. Every injection point ("site") draws a decision from a pure
//! hash of `(plan seed, site identity, probe counter)` — no RNG state,
//! no wall clock — so a plan replays the identical fault schedule on
//! every run with the same probe sequence. Sites:
//!
//! - **worker shards** ([`FaultPlan::worker_fault`], probed by
//!   [`crate::parallel::try_run_sharded`] before spawning each shard):
//!   a transient panic dies on the threaded attempt only and is healed
//!   by the serial retry (bit-identical results — the whole test suite
//!   runs green under `DYNMOS_FAULT_PLAN=panic:0.05`), while a
//!   *persistent* panic also kills the retry and surfaces
//!   [`crate::ShardError`] /
//!   [`crate::StopReason::WorkerFailed`];
//! - **service legs** ([`FaultPlan::leg_fault`], probed by the
//!   [`crate::service`] supervisor before each leg): kill the leg
//!   (simulated worker death → retry with backoff from the last
//!   checkpoint), expire its deadline artificially, or delay it;
//! - **cache inserts** ([`FaultPlan::poison_cache`]): corrupt the
//!   compiled-network fingerprint so validation-on-hit must catch and
//!   evict the entry;
//! - **journal appends** ([`FaultPlan::crash_fault`], probed by
//!   [`crate::service::Journal`] around each write-ahead record):
//!   abort the whole process — before the write, mid-write (leaving a
//!   torn final line the recovery path must tolerate), or after it —
//!   the `kill -9` simulation that proves crash-durable recovery.
//!
//! Plans come from three places, in precedence order: a thread-local
//! scope ([`scoped`], what deterministic tests use), the
//! `DYNMOS_FAULT_PLAN` environment variable (the CI knob — parsed once,
//! a typo panics loudly like the other `DYNMOS_*` knobs), or nothing.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function, used
/// here to turn `(seed, site, probe)` into injection decisions.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a shard-worker site was told to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Panic on the threaded attempt only; the serial retry runs the
    /// real worker. Always healed — results stay bit-identical.
    PanicOnce,
    /// Panic on the threaded attempt *and* the serial retry: surfaces
    /// [`crate::ShardError`] through [`crate::try_run_sharded`].
    PanicPersistent,
}

/// Where, relative to one journal append, an injected process crash
/// fires. All three abort the process without unwinding (the moral
/// equivalent of `kill -9`), differing only in what the write-ahead
/// journal has durably committed when the process dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Abort before any byte of the record is written: the record is
    /// lost whole, the journal stays well-formed.
    BeforeWrite,
    /// Abort after writing (and syncing) a strict prefix of the record
    /// line: recovery must tolerate the torn final line.
    TornWrite,
    /// Abort after the record is fully written and synced: the record
    /// survives, everything in memory dies.
    AfterWrite,
}

/// What a service-leg site was told to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegFault {
    /// Kill the leg before the kernel runs (a simulated worker death);
    /// the supervisor retries with backoff from the last checkpoint.
    Kill,
    /// Replace the leg's deadline with one that has already passed;
    /// forward progress still completes one chunk.
    Expire,
    /// Sleep this long before running the leg.
    Delay(Duration),
}

/// A deterministic fault-injection plan. All rates default to zero
/// ([`FaultPlan::new`] injects nothing); builders switch individual
/// faults on. Decisions are pure functions of the plan seed, the site
/// identity, and a global probe counter, so a plan's schedule is
/// reproducible probe-for-probe.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Probes before the plan arms (lets tests run a clean prefix).
    after: u64,
    worker_panic: f64,
    worker_panic_persistent: f64,
    leg_kill: f64,
    leg_expire: f64,
    leg_delay: f64,
    delay: Duration,
    cache_poison: f64,
    crash: f64,
    /// Deterministic leg-kill schedule: kill exactly these leg indices
    /// of every job (builder-only, for differential tests).
    kill_legs: Vec<u32>,
    probes: AtomicU64,
}

impl FaultPlan {
    /// An inert plan (all rates zero) with this decision seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            after: 0,
            worker_panic: 0.0,
            worker_panic_persistent: 0.0,
            leg_kill: 0.0,
            leg_expire: 0.0,
            leg_delay: 0.0,
            delay: Duration::from_millis(1),
            cache_poison: 0.0,
            crash: 0.0,
            kill_legs: Vec::new(),
            probes: AtomicU64::new(0),
        }
    }

    /// Transient worker panics (threaded attempt only) at this rate.
    pub fn worker_panic(mut self, rate: f64) -> Self {
        self.worker_panic = rate;
        self
    }

    /// Persistent worker panics (threaded attempt + serial retry) at
    /// this rate.
    pub fn worker_panic_persistent(mut self, rate: f64) -> Self {
        self.worker_panic_persistent = rate;
        self
    }

    /// Service-leg kills at this rate.
    pub fn leg_kill(mut self, rate: f64) -> Self {
        self.leg_kill = rate;
        self
    }

    /// Artificial leg-deadline expiry at this rate.
    pub fn leg_expire(mut self, rate: f64) -> Self {
        self.leg_expire = rate;
        self
    }

    /// Leg delays of `delay` at this rate.
    pub fn leg_delay(mut self, rate: f64, delay: Duration) -> Self {
        self.leg_delay = rate;
        self.delay = delay;
        self
    }

    /// Cache-fingerprint poisoning at insert time at this rate.
    pub fn cache_poison(mut self, rate: f64) -> Self {
        self.cache_poison = rate;
        self
    }

    /// Process crashes (`process::abort()`, no unwinding) at journal
    /// append sites at this rate. The firing draw also picks the
    /// [`CrashPoint`] — before, mid (torn line), or after the write —
    /// with equal weight.
    pub fn crash(mut self, rate: f64) -> Self {
        self.crash = rate;
        self
    }

    /// Kill exactly these leg indices of every job (deterministic,
    /// thread-count independent — the schedule differential tests use).
    pub fn kill_at(mut self, legs: &[u32]) -> Self {
        self.kill_legs = legs.to_vec();
        self
    }

    /// Ignore the first `n` probes (a clean warm-up prefix).
    pub fn armed_after(mut self, n: u64) -> Self {
        self.after = n;
        self
    }

    /// `true` when the plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.worker_panic <= 0.0
            && self.worker_panic_persistent <= 0.0
            && self.leg_kill <= 0.0
            && self.leg_expire <= 0.0
            && self.leg_delay <= 0.0
            && self.cache_poison <= 0.0
            && self.crash <= 0.0
            && self.kill_legs.is_empty()
    }

    /// One uniform draw in `[0, 1)` for a site, advancing the probe
    /// counter; `None` while the plan is not yet armed.
    fn roll(&self, salt: u64, id: u64) -> Option<f64> {
        let nonce = self.probes.fetch_add(1, Ordering::Relaxed);
        if nonce < self.after {
            return None;
        }
        let h = mix64(self.seed ^ salt ^ mix64(nonce.wrapping_add(1)) ^ mix64(id));
        Some((h >> 11) as f64 / (1u64 << 53) as f64)
    }

    /// Decision for one shard-worker spawn. Persistent beats transient
    /// when both rates fire so the rarer fault is never masked.
    pub fn worker_fault(&self, shard: usize) -> Option<WorkerFault> {
        let u = self.roll(0x0057_4841_5244_u64, shard as u64)?;
        if u < self.worker_panic_persistent {
            Some(WorkerFault::PanicPersistent)
        } else if u < self.worker_panic_persistent + self.worker_panic {
            Some(WorkerFault::PanicOnce)
        } else {
            None
        }
    }

    /// Decision for one supervised service leg (`leg` is the job's
    /// 0-based leg index). Priority: deterministic kill schedule, then
    /// kill > expire > delay from one draw.
    pub fn leg_fault(&self, job: u64, leg: u32) -> Option<LegFault> {
        if self.kill_legs.contains(&leg) {
            return Some(LegFault::Kill);
        }
        let u = self.roll(
            0x004C_4547_u64,
            job.wrapping_mul(0x1_0000).wrapping_add(u64::from(leg)),
        )?;
        if u < self.leg_kill {
            Some(LegFault::Kill)
        } else if u < self.leg_kill + self.leg_expire {
            Some(LegFault::Expire)
        } else if u < self.leg_kill + self.leg_expire + self.leg_delay {
            Some(LegFault::Delay(self.delay))
        } else {
            None
        }
    }

    /// Decision for one cache insert keyed by the netlist hash.
    pub fn poison_cache(&self, key: u64) -> bool {
        self.roll(0x504F_4953_4F4Eu64, key)
            .is_some_and(|u| u < self.cache_poison)
    }

    /// Decision for one journal append. `site` is the append's identity
    /// — the journal mixes its recovery generation into it, so a
    /// restarted process replays a *different* crash schedule and a
    /// crash-at-every-append plan cannot livelock recovery. A firing
    /// draw is subdivided into thirds to pick the [`CrashPoint`].
    pub fn crash_fault(&self, site: u64) -> Option<CrashPoint> {
        let u = self.roll(0x0043_5241_5348_u64, site)?;
        if u >= self.crash {
            return None;
        }
        let third = self.crash / 3.0;
        Some(if u < third {
            CrashPoint::BeforeWrite
        } else if u < 2.0 * third {
            CrashPoint::TornWrite
        } else {
            CrashPoint::AfterWrite
        })
    }

    /// Parses a `DYNMOS_FAULT_PLAN` spec: comma-separated `key:value`
    /// pairs, e.g. `panic:0.05,expire:0.05,seed:7`. Keys: `panic`,
    /// `panic2` (persistent), `kill`, `expire`, `delay`, `poison`,
    /// `crash` (rates in `[0, 1]`); `delay_ms`, `seed`, `after`
    /// (integers).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending pair on unknown keys,
    /// unparsable values, or out-of-range rates.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0x000C_4A05);
        for pair in spec.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| format!("fault-plan entry {pair:?} is not key:value"))?;
            let rate = || -> Result<f64, String> {
                let r: f64 = value.trim().parse().map_err(|_| {
                    format!("fault-plan rate {value:?} for {key:?} is not a number")
                })?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault-plan rate {r} for {key:?} outside [0, 1]"));
                }
                Ok(r)
            };
            let int = || -> Result<u64, String> {
                value.trim().parse().map_err(|_| {
                    format!("fault-plan value {value:?} for {key:?} is not an integer")
                })
            };
            match key.trim() {
                "panic" => plan.worker_panic = rate()?,
                "panic2" => plan.worker_panic_persistent = rate()?,
                "kill" => plan.leg_kill = rate()?,
                "expire" => plan.leg_expire = rate()?,
                "delay" => plan.leg_delay = rate()?,
                "poison" => plan.cache_poison = rate()?,
                "crash" => plan.crash = rate()?,
                "delay_ms" => plan.delay = Duration::from_millis(int()?),
                "seed" => plan.seed = int()?,
                "after" => plan.after = int()?,
                other => return Err(format!("unknown fault-plan key {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Interprets a raw `DYNMOS_FAULT_PLAN` value. Unset, empty, or
/// whitespace-only means "no plan" (`None`).
///
/// # Panics
///
/// Panics on an unparsable spec: a typo in the CI fault-injection knob
/// must fail loudly, not silently run without injection.
pub(crate) fn parse_fault_plan_override(raw: Option<&str>) -> Option<FaultPlan> {
    let trimmed = raw?.trim();
    if trimmed.is_empty() {
        return None;
    }
    match FaultPlan::parse(trimmed) {
        Ok(plan) => Some(plan),
        Err(e) => panic!("DYNMOS_FAULT_PLAN invalid: {e}"),
    }
}

/// The process-wide `DYNMOS_FAULT_PLAN` plan, parsed once.
///
/// # Panics
///
/// Panics (on first use) when the variable is set but unparsable.
pub fn env_fault_plan() -> Option<Arc<FaultPlan>> {
    static ENV_PLAN: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
    ENV_PLAN
        .get_or_init(|| {
            parse_fault_plan_override(crate::env_contract::raw("DYNMOS_FAULT_PLAN").as_deref())
                .map(Arc::new)
        })
        .clone()
}

thread_local! {
    static SCOPED: RefCell<Vec<Arc<FaultPlan>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `plan` as this thread's active fault plan, shadowing
/// the `DYNMOS_FAULT_PLAN` plan (pass an inert [`FaultPlan::new`] to
/// locally disable env injection, e.g. in tests that count panics).
/// Probes happen on the thread that *plans* work (the shard spawner,
/// the service supervisor), so a thread-local scope covers the sharded
/// kernels it calls.
pub fn scoped<R>(plan: Arc<FaultPlan>, f: impl FnOnce() -> R) -> R {
    SCOPED.with(|s| s.borrow_mut().push(plan));
    // Pop even on unwind so a panicking scope cannot leak its plan
    // into unrelated code on this thread.
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            SCOPED.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    let _pop = Pop;
    f()
}

/// The active fault plan for this thread: the innermost [`scoped`]
/// plan, else the `DYNMOS_FAULT_PLAN` plan, else `None`.
pub fn current() -> Option<Arc<FaultPlan>> {
    if let Some(p) = SCOPED.with(|s| s.borrow().last().cloned()) {
        return Some(p);
    }
    env_fault_plan()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let p = FaultPlan::new(1);
        assert!(p.is_inert());
        for i in 0..100 {
            assert_eq!(p.worker_fault(i), None);
            assert_eq!(p.leg_fault(i as u64, 0), None);
            assert!(!p.poison_cache(i as u64));
        }
    }

    #[test]
    fn full_rate_always_fires() {
        let p = FaultPlan::new(2).worker_panic(1.0);
        for i in 0..50 {
            assert_eq!(p.worker_fault(i), Some(WorkerFault::PanicOnce));
        }
        let p = FaultPlan::new(2).worker_panic_persistent(1.0);
        assert_eq!(p.worker_fault(0), Some(WorkerFault::PanicPersistent));
        let p = FaultPlan::new(2).cache_poison(1.0);
        assert!(p.poison_cache(99));
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = FaultPlan::new(3).leg_kill(0.3);
        let fired = (0..10_000)
            .filter(|&i| p.leg_fault(i, 0) == Some(LegFault::Kill))
            .count();
        assert!((2_500..3_500).contains(&fired), "{fired} of 10000");
    }

    #[test]
    fn armed_after_skips_a_clean_prefix() {
        let p = FaultPlan::new(4).worker_panic(1.0).armed_after(10);
        let decisions: Vec<_> = (0..20).map(|i| p.worker_fault(i)).collect();
        assert!(decisions[..10].iter().all(Option::is_none));
        assert!(decisions[10..].iter().all(Option::is_some));
    }

    #[test]
    fn kill_schedule_is_deterministic() {
        let p = FaultPlan::new(5).kill_at(&[1, 3]);
        for job in [1u64, 7] {
            assert_eq!(p.leg_fault(job, 0), None);
            assert_eq!(p.leg_fault(job, 1), Some(LegFault::Kill));
            assert_eq!(p.leg_fault(job, 2), None);
            assert_eq!(p.leg_fault(job, 3), Some(LegFault::Kill));
        }
    }

    #[test]
    fn crash_decisions_cover_all_points_and_honor_rate() {
        let p = FaultPlan::new(6).crash(1.0);
        let mut seen = [false; 3];
        for site in 0..200 {
            match p.crash_fault(site) {
                Some(CrashPoint::BeforeWrite) => seen[0] = true,
                Some(CrashPoint::TornWrite) => seen[1] = true,
                Some(CrashPoint::AfterWrite) => seen[2] = true,
                None => panic!("rate 1.0 must always fire"),
            }
        }
        assert!(seen.iter().all(|&s| s), "all crash points drawn: {seen:?}");
        let p = FaultPlan::new(7).crash(0.3);
        let fired = (0..10_000).filter(|&s| p.crash_fault(s).is_some()).count();
        assert!((2_500..3_500).contains(&fired), "{fired} of 10000");
        assert!(FaultPlan::new(8).crash(0.0).crash_fault(0).is_none());
        assert!(!FaultPlan::new(9).crash(0.1).is_inert());
    }

    #[test]
    fn crash_schedule_varies_with_site_generation() {
        // Mixing a different generation into the site id must change
        // the schedule: recovery depends on this to escape a crash that
        // fires at the first append of a restarted process.
        let schedule = |generation: u64| -> Vec<bool> {
            let p = FaultPlan::new(10).crash(0.5);
            (0..64)
                .map(|i| p.crash_fault(generation << 32 | i).is_some())
                .collect()
        };
        assert_ne!(schedule(1), schedule(2));
    }

    #[test]
    fn spec_parses() {
        let p = FaultPlan::parse("panic:0.05, expire:0.1, crash:0.03, seed:42, after:3").unwrap();
        assert_eq!(p.worker_panic, 0.05);
        assert_eq!(p.leg_expire, 0.1);
        assert_eq!(p.crash, 0.03);
        assert_eq!(p.seed, 42);
        assert_eq!(p.after, 3);
        assert!(FaultPlan::parse("").unwrap().is_inert());
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("warp:0.5").is_err());
        assert!(FaultPlan::parse("panic:lots").is_err());
        assert!(FaultPlan::parse("panic:1.5").is_err());
        assert!(FaultPlan::parse("seed:abc").is_err());
    }

    // The env override is tested as a pure function: mutating the
    // process-global DYNMOS_FAULT_PLAN here would race other tests.
    #[test]
    fn env_override_parses_values() {
        assert!(parse_fault_plan_override(None).is_none());
        assert!(parse_fault_plan_override(Some("")).is_none());
        assert!(parse_fault_plan_override(Some("  ")).is_none());
        let p = parse_fault_plan_override(Some("panic:0.05")).unwrap();
        assert_eq!(p.worker_panic, 0.05);
    }

    #[test]
    #[should_panic(expected = "DYNMOS_FAULT_PLAN invalid")]
    fn env_override_garbage_panics() {
        parse_fault_plan_override(Some("panic=0.05"));
    }

    #[test]
    fn scoped_plan_shadows_and_restores() {
        let inert = Arc::new(FaultPlan::new(0));
        let hot = Arc::new(FaultPlan::new(1).worker_panic(1.0));
        scoped(inert.clone(), || {
            assert!(current().unwrap().is_inert());
            scoped(hot, || {
                assert!(!current().unwrap().is_inert());
            });
            assert!(current().unwrap().is_inert());
        });
    }

    #[test]
    fn scoped_plan_is_popped_on_unwind() {
        let hot = Arc::new(FaultPlan::new(1).worker_panic(1.0));
        let _ = std::panic::catch_unwind(|| {
            scoped(hot, || panic!("boom"));
        });
        assert!(SCOPED.with(|s| s.borrow().is_empty()));
    }
}
