//! Symbolic (BDD-based) exact analysis — PROTEST at production scale.
//!
//! The enumeration-based exact routines cap at 24 primary inputs; the
//! Monte Carlo estimators trade exactness for scale. This module gives
//! the third point of the design space: **exact at scale** for circuits
//! whose BDDs stay small (trees, chains, and most control logic). The
//! global good/faulty output functions are composed gate by gate, the
//! Boolean difference is one `xor`, and detection probability is a
//! linear-time weighted count on the BDD.

use crate::list::FaultEntry;
use dynmos_logic::{Bdd, BddRef, VarId};
use dynmos_netlist::{Network, NetworkFault};

/// Builds the BDD of every net's global function over the primary-input
/// variables (`VarId(i)` = i-th primary input), with an optional injected
/// fault. Returns one `BddRef` per net.
pub fn net_functions(net: &Network, bdd: &mut Bdd, fault: Option<&NetworkFault>) -> Vec<BddRef> {
    let mut refs = vec![BddRef::FALSE; net.net_count()];
    for (i, &pi) in net.primary_inputs().iter().enumerate() {
        refs[pi.index()] = bdd.var(VarId(i as u32));
    }
    if let Some(NetworkFault::NetStuck(netid, v)) = fault {
        if net.driver(*netid).is_none() {
            refs[netid.index()] = if *v { BddRef::TRUE } else { BddRef::FALSE };
        }
    }
    for &g in net.topo_order() {
        let inst = &net.gates()[g.index()];
        let function = match fault {
            Some(NetworkFault::GateFunction(fg, f)) if *fg == g => f.clone(),
            _ => net.cell_of(g).logic_function(),
        };
        let inputs = inst.inputs.clone();
        let out = bdd.eval_expr_over(&function, &|v| refs[inputs[v.index()].index()]);
        refs[inst.output.index()] = out;
        if let Some(NetworkFault::NetStuck(netid, v)) = fault {
            if *netid == inst.output {
                refs[netid.index()] = if *v { BddRef::TRUE } else { BddRef::FALSE };
            }
        }
    }
    refs
}

/// Exact signal probability of one net via BDDs — no input-count limit
/// (only BDD size limits apply).
///
/// # Panics
///
/// Panics if `pi_probs` has the wrong arity or invalid values.
pub fn bdd_signal_probability(
    net: &Network,
    target: dynmos_netlist::NetId,
    pi_probs: &[f64],
) -> f64 {
    assert_eq!(
        pi_probs.len(),
        net.primary_inputs().len(),
        "need one probability per primary input"
    );
    let mut bdd = Bdd::new();
    let refs = net_functions(net, &mut bdd, None);
    bdd.probability(refs[target.index()], pi_probs)
}

/// Exact detection probability of one fault via BDDs: probability of the
/// Boolean difference (OR over outputs) of good vs faulty machines.
///
/// # Panics
///
/// Panics if `pi_probs` has the wrong arity or invalid values.
///
/// # Example
///
/// ```
/// use dynmos_netlist::generate::and_or_tree;
/// use dynmos_netlist::NetworkFault;
/// use dynmos_protest::symbolic::bdd_detection_probability;
///
/// let net = and_or_tree(5); // 32 inputs: beyond exact enumeration
/// let po = net.primary_outputs()[0];
/// let fault = NetworkFault::NetStuck(po, true);
/// let p = bdd_detection_probability(&net, &fault, &vec![0.5; 32]);
/// // Detected whenever the good output is 0.
/// assert!(p > 0.0 && p < 1.0);
/// ```
pub fn bdd_detection_probability(net: &Network, fault: &NetworkFault, pi_probs: &[f64]) -> f64 {
    assert_eq!(
        pi_probs.len(),
        net.primary_inputs().len(),
        "need one probability per primary input"
    );
    let mut bdd = Bdd::new();
    let good = net_functions(net, &mut bdd, None);
    let bad = net_functions(net, &mut bdd, Some(fault));
    let mut diff = BddRef::FALSE;
    for &po in net.primary_outputs() {
        let x = bdd.xor(good[po.index()], bad[po.index()]);
        diff = bdd.or(diff, x);
    }
    bdd.probability(diff, pi_probs)
}

/// Exact detection probabilities for a whole fault list via BDDs.
pub fn bdd_detection_probabilities(
    net: &Network,
    faults: &[FaultEntry],
    pi_probs: &[f64],
) -> Vec<f64> {
    faults
        .iter()
        .map(|e| bdd_detection_probability(net, &e.fault, pi_probs))
        .collect()
}

/// A deterministic test pattern for `fault` extracted from the Boolean
/// difference BDD, or `None` if the fault is redundant — a second,
/// independent ATPG engine cross-checking the PODEM search.
pub fn bdd_test_pattern(net: &Network, fault: &NetworkFault) -> Option<Vec<bool>> {
    let mut bdd = Bdd::new();
    let good = net_functions(net, &mut bdd, None);
    let bad = net_functions(net, &mut bdd, Some(fault));
    let mut diff = BddRef::FALSE;
    for &po in net.primary_outputs() {
        let x = bdd.xor(good[po.index()], bad[po.index()]);
        diff = bdd.or(diff, x);
    }
    let word = bdd.any_sat(diff)?;
    let n = net.primary_inputs().len();
    Some((0..n).map(|i| (word >> i) & 1 == 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::exact_detection_probability;
    use crate::estimate::exact_signal_probability;
    use crate::list::network_fault_list;
    use dynmos_atpg::{generate_test, AtpgOutcome};
    use dynmos_netlist::generate::{
        and_or_tree, c17_dynamic_nmos, carry_chain, random_domino_network,
    };

    #[test]
    fn bdd_signal_probability_matches_enumeration() {
        let net = c17_dynamic_nmos();
        let probs: Vec<f64> = (0..5).map(|i| 0.2 + 0.12 * i as f64).collect();
        for &po in net.primary_outputs() {
            let exact = exact_signal_probability(&net, po, &probs);
            let sym = bdd_signal_probability(&net, po, &probs);
            assert!((exact - sym).abs() < 1e-12, "{exact} vs {sym}");
        }
    }

    #[test]
    fn bdd_detection_matches_enumeration() {
        let net = c17_dynamic_nmos();
        let faults = network_fault_list(&net);
        let probs = vec![0.5; 5];
        for e in &faults {
            let exact = exact_detection_probability(&net, &e.fault, &probs);
            let sym = bdd_detection_probability(&net, &e.fault, &probs);
            assert!((exact - sym).abs() < 1e-12, "{}: {exact} vs {sym}", e.label);
        }
    }

    #[test]
    fn bdd_scales_to_61_inputs() {
        // carry_chain(30): 61 primary inputs; the majority-chain BDD is
        // linear in the chain length.
        let net = carry_chain(30);
        assert_eq!(net.primary_inputs().len(), 61);
        let probs = vec![0.5; 61];
        let last_carry = *net.primary_outputs().last().expect("outputs");
        let p = bdd_signal_probability(&net, last_carry, &probs);
        // Majority recurrence at p=0.5 keeps every carry at exactly 0.5.
        assert!((p - 0.5).abs() < 1e-12, "carry probability {p}");
    }

    #[test]
    fn bdd_detection_on_wide_tree() {
        let net = and_or_tree(5); // 32 PIs
        let faults = network_fault_list(&net);
        let probs = vec![0.5; 32];
        // Spot-check a few faults: probabilities must be valid and
        // positive (the tree has no redundancy).
        for e in faults.iter().take(6) {
            let p = bdd_detection_probability(&net, &e.fault, &probs);
            assert!(p > 0.0 && p <= 1.0, "{}: {p}", e.label);
        }
    }

    #[test]
    fn bdd_atpg_agrees_with_podem() {
        for seed in 0..4 {
            let net = random_domino_network(seed, 3, 4);
            let faults = network_fault_list(&net);
            for e in &faults {
                let podem = generate_test(&net, &e.fault, 0);
                let bdd = bdd_test_pattern(&net, &e.fault);
                match (podem, bdd) {
                    (AtpgOutcome::Test(_), Some(pattern)) => {
                        // Validate the BDD pattern via simulation.
                        let sim = crate::fsim::FaultSimulator::new(&net);
                        let out = sim
                            .run_patterns(std::slice::from_ref(e), std::slice::from_ref(&pattern));
                        assert_eq!(out.coverage(), 1.0, "{} BDD pattern invalid", e.label);
                    }
                    (AtpgOutcome::Redundant, None) => {}
                    (p, b) => panic!("{}: engines disagree: {p:?} vs {b:?}", e.label),
                }
            }
        }
    }
}
