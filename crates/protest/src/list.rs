//! Network-level fault lists from cell fault libraries.
//!
//! PROTEST's variable fault model: "for pull-down and dynamic nMOS and for
//! domino CMOS the presented models are used; for bipolar and static CMOS
//! we use the common stuck-at fault model." Each cell's [`FaultLibrary`]
//! already collapses equivalent faults; the network fault list contains
//! one entry per (gate, class) plus the primary-input stuck-ats.
//!
//! [`FaultLibrary`]: dynmos_core::FaultLibrary

use dynmos_core::FaultLibrary;
use dynmos_netlist::{GateRef, Network, NetworkFault};

/// One entry of a network fault list.
#[derive(Debug, Clone)]
pub struct FaultEntry {
    /// Human-readable label, e.g. `g3/class5[c open]` or `pi2/s-a-1`.
    pub label: String,
    /// The injectable network fault.
    pub fault: NetworkFault,
    /// `true` if every physical fault in the class needs at-speed testing.
    pub at_speed_only: bool,
}

/// Builds the network fault list: per gate, one entry per fault-library
/// class; plus stuck-at-0/1 on every primary input.
///
/// Timing-only faults (the paper's `CMOS-1`) have no functional entry —
/// they cannot be put on a *logical* fault list at all; count them via
/// [`FaultLibrary::timing_only`] when reporting.
///
/// # Example
///
/// ```
/// use dynmos_netlist::generate::{fig9_cell, single_cell_network};
/// use dynmos_protest::network_fault_list;
///
/// let net = single_cell_network(fig9_cell());
/// let list = network_fault_list(&net);
/// // 10 classes + 5 inputs x 2 polarities
/// assert_eq!(list.len(), 20);
/// ```
pub fn network_fault_list(net: &Network) -> Vec<FaultEntry> {
    let mut out = Vec::new();
    // Primary-input stuck-ats.
    for (k, &pi) in net.primary_inputs().iter().enumerate() {
        for value in [false, true] {
            out.push(FaultEntry {
                label: format!("pi{k}({})/s-a-{}", net.net_name(pi), u8::from(value)),
                fault: NetworkFault::NetStuck(pi, value),
                at_speed_only: false,
            });
        }
    }
    // Per-gate library classes.
    for (gi, _inst) in net.gates().iter().enumerate() {
        let g = GateRef(gi as u32);
        let cell = net.cell_of(g);
        let lib = FaultLibrary::generate(cell);
        let vars = lib.vars().clone();
        for class in lib.classes() {
            let first = class.faults[0].display(&vars).to_string();
            out.push(FaultEntry {
                label: format!("{g}/class{}[{}]", class.id, first),
                fault: NetworkFault::GateFunction(g, class.function.clone()),
                at_speed_only: class.at_speed_only,
            });
        }
    }
    out
}

/// Builds the classic single-stuck-at fault list: stuck-at-0/1 on every
/// net (primary inputs and gate outputs alike), with no per-cell fault
/// library generation.
///
/// This is the fault model of the ISCAS benchmark tradition and the right
/// list for the large generated circuits
/// ([`dynmos_netlist::generate::ripple_adder`] and friends), where
/// running switch-level library extraction per gate would dominate the
/// experiment being measured.
pub fn stuck_fault_list(net: &Network) -> Vec<FaultEntry> {
    let mut out = Vec::with_capacity(net.net_count() * 2);
    for net_idx in 0..net.net_count() {
        let id = dynmos_netlist::NetId(net_idx as u32);
        for value in [false, true] {
            out.push(FaultEntry {
                label: format!("{}/s-a-{}", net.net_name(id), u8::from(value)),
                fault: NetworkFault::NetStuck(id, value),
                at_speed_only: false,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmos_netlist::generate::{and_or_tree, c17_dynamic_nmos, fig9_cell, single_cell_network};

    #[test]
    fn fig9_network_list_counts() {
        let net = single_cell_network(fig9_cell());
        let list = network_fault_list(&net);
        assert_eq!(list.len(), 10 + 10);
        assert!(list.iter().any(|e| e.label.contains("s-a-0")));
        assert!(list.iter().any(|e| e.label.contains("class9")));
    }

    #[test]
    fn and_or_tree_list() {
        let net = and_or_tree(2); // 3 gates x (2-input domino AND/OR classes) + 8 PI faults
        let list = network_fault_list(&net);
        // Each and2/or2 domino cell: faults a closed/open, b closed/open,
        // CMOS-2,3,4 -> classes: and2: a closed->b, a open->0(with CMOS-2/3),
        // b closed->a, b open->0?? a open gives 0? and2: T=a*b. a open ->
        // 0; b open -> 0; CMOS-2/3 -> 0: all merge. a closed -> b;
        // b closed -> a; CMOS-4 -> 1. Classes: {b, a, 0, 1} = 4.
        // or2: a open->b, b open->a, a closed->1 (+CMOS-4), b closed->1,
        // CMOS-2/3->0. Classes: {b, a, 1, 0} = 4.
        let gate_entries = list.iter().filter(|e| !e.label.starts_with("pi")).count();
        assert_eq!(gate_entries, 3 * 4);
        let pi_entries = list.iter().filter(|e| e.label.starts_with("pi")).count();
        assert_eq!(pi_entries, 8);
    }

    #[test]
    fn stuck_list_covers_every_net_twice() {
        let net = c17_dynamic_nmos();
        let list = stuck_fault_list(&net);
        assert_eq!(list.len(), net.net_count() * 2);
        let mut labels: Vec<&str> = list.iter().map(|e| e.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), list.len(), "labels must be unique");
        assert!(list
            .iter()
            .all(|e| matches!(e.fault, NetworkFault::NetStuck(_, _))));
    }

    #[test]
    fn labels_are_unique() {
        let net = c17_dynamic_nmos();
        let list = network_fault_list(&net);
        let mut labels: Vec<&str> = list.iter().map(|e| e.label.as_str()).collect();
        let before = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), before);
    }

    #[test]
    fn at_speed_flag_only_on_pure_at_speed_classes() {
        let net = single_cell_network(fig9_cell());
        let list = network_fault_list(&net);
        // Class 9 contains CMOS-2 (functional), so not at_speed_only.
        for e in &list {
            if e.label.contains("class9") {
                assert!(!e.at_speed_only);
            }
        }
    }
}
