//! Input signal probability optimization.
//!
//! PROTEST's headline feature: "For each primary input a specific signal
//! probability is computed, promising an increase of fault detection and a
//! decrease of the necessary test length. Using those optimized input
//! signal probabilities, the necessary test length can be reduced by
//! orders of magnitudes."
//!
//! [`optimize_input_probabilities`] minimizes the joint test length by
//! cyclic coordinate descent over a discrete probability grid — robust,
//! derivative-free, and more than enough to reproduce the orders-of-
//! magnitude effect on the paper-scale circuits (the objective is exact,
//! via exhaustive detection probabilities). The objective's enumeration
//! engine is thread-sharded along the axis the two-axis planner picks
//! ([`crate::parallel::plan_shards`]): the fault list when it can feed
//! every worker, or the enumeration's row-block axis when the descent
//! has narrowed to a few hard faults — so the descent — hundreds of
//! objective evaluations — scales with cores in both regimes while
//! staying bit-identical at any thread count.

use crate::budget::{RunBudget, RunStatus, StopReason};
use crate::detect::EstimateMethod;
use crate::length::{test_length_budgeted, LengthError};
use crate::list::FaultEntry;
use crate::parallel::Parallelism;
use crate::testability::{DetectionEngine, TestabilityConfig, TierMode};
use dynmos_netlist::Network;

/// Fixed seed for the sampling parts of the objective (cutting-tier
/// bound tightening): every evaluation of the same probability vector
/// sees the same sample stream, so the descent compares candidates on a
/// common, deterministic footing.
const OPT_MC_SEED: u64 = 0x0D7E57;

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimizeReport {
    /// The optimized per-input probabilities.
    pub probabilities: Vec<f64>,
    /// Test length at the uniform 0.5 starting point.
    pub uniform_length: u64,
    /// Test length at the optimized probabilities.
    pub optimized_length: u64,
    /// Number of full coordinate sweeps performed.
    pub sweeps: usize,
}

impl OptimizeReport {
    /// The improvement factor (uniform / optimized), `inf` if the uniform
    /// length was unbounded.
    pub fn improvement(&self) -> f64 {
        if self.optimized_length == 0 {
            return f64::INFINITY;
        }
        self.uniform_length as f64 / self.optimized_length as f64
    }
}

/// The candidate grid used for each coordinate. Matches the resolution a
/// weighted-random pattern generator can realize with a few LFSR bits.
const GRID: [f64; 15] = [
    0.03125, 0.0625, 0.125, 0.1875, 0.25, 0.375, 0.5, 0.625, 0.75, 0.8125, 0.875, 0.9375, 0.96875,
    0.984375, 0.015625,
];

/// Optimizes per-input signal probabilities to minimize the joint random
/// test length at `confidence`.
///
/// Starts from the uniform 0.5 assignment and performs cyclic coordinate
/// descent over a fixed probability grid until a full sweep makes no
/// improvement (or
/// `max_sweeps` is reached).
///
/// Networks beyond the exact-enumeration input limit (24) use the
/// deterministic Monte-Carlo fallback objective instead of panicking.
///
/// # Panics
///
/// Panics if `faults` is empty or `confidence` is not in `(0,1)`.
///
/// # Example
///
/// ```
/// use dynmos_netlist::generate::{domino_wide_and, single_cell_network};
/// use dynmos_protest::{network_fault_list, optimize_input_probabilities};
///
/// let net = single_cell_network(domino_wide_and(8));
/// let faults = network_fault_list(&net);
/// let report = optimize_input_probabilities(&net, &faults, 0.999, 8);
/// // The paper's claim: orders of magnitude shorter tests.
/// assert!(report.improvement() > 10.0);
/// ```
pub fn optimize_input_probabilities(
    net: &Network,
    faults: &[FaultEntry],
    confidence: f64,
    max_sweeps: usize,
) -> OptimizeReport {
    optimize_input_probabilities_par(net, faults, confidence, max_sweeps, Parallelism::default())
}

/// [`optimize_input_probabilities`] with an explicit thread policy for
/// the objective's enumeration engine. The report is identical at any
/// thread count. Networks whose row space exceeds the default
/// exact-enumeration cap no longer panic: the objective degrades to
/// Monte-Carlo detection estimation with a fixed seed (see
/// [`optimize_input_probabilities_budgeted`], which also reports which
/// method ran).
pub fn optimize_input_probabilities_par(
    net: &Network,
    faults: &[FaultEntry],
    confidence: f64,
    max_sweeps: usize,
    parallelism: Parallelism,
) -> OptimizeReport {
    optimize_input_probabilities_budgeted(
        net,
        faults,
        confidence,
        max_sweeps,
        parallelism,
        &RunBudget::unlimited(),
    )
    .report
}

/// An optimization outcome under a [`RunBudget`]: the (possibly
/// partial) report, whether the descent completed, and which engine
/// tier(s) served the objective.
#[derive(Debug, Clone)]
pub struct OptimizeRun {
    /// Best probabilities and lengths seen before the stop. When the
    /// very first objective evaluation is interrupted, the report
    /// holds the uniform starting point with unbounded lengths.
    pub report: OptimizeReport,
    /// [`RunStatus::Completed`], or the [`StopReason`] that ended the
    /// descent early.
    pub status: RunStatus,
    /// The weakest tier that served any fault — [`EstimateMethod::Exact`]
    /// only when every fault ran exact, [`EstimateMethod::Cutting`] as
    /// soon as one fault fell back to certified bounds. See `methods`
    /// for the per-fault tags.
    pub method: EstimateMethod,
    /// Per-fault engine tiers of the objective, in fault-list order.
    /// Empty only when the run was interrupted before the first
    /// objective evaluation finished.
    pub methods: Vec<EstimateMethod>,
}

/// [`optimize_input_probabilities_par`] under a [`RunBudget`]. The
/// budget is threaded into every objective evaluation (enumeration
/// chunks, symbolic passes, and test-length searches all check it); an
/// interrupt ends the descent at the last fully evaluated candidate and
/// returns the best-so-far report with [`RunStatus::Interrupted`].
///
/// The objective runs on the tiered [`DetectionEngine`]: exact
/// enumeration when the row space fits
/// [`RunBudget::effective_exact_rows`], otherwise the shared-BDD tier
/// (one linear probability pass per evaluation — the thing that makes
/// coordinate descent feasible at hundreds of inputs), degrading per
/// fault to certified cutting bounds. Per-fault tiers are reported in
/// [`OptimizeRun::methods`]. The tier policy follows
/// `DYNMOS_TESTABILITY`; use [`optimize_input_probabilities_with`] to
/// pin it.
///
/// # Panics
///
/// Panics if `faults` is empty or `confidence` is not in `(0,1)`.
pub fn optimize_input_probabilities_budgeted(
    net: &Network,
    faults: &[FaultEntry],
    confidence: f64,
    max_sweeps: usize,
    parallelism: Parallelism,
    run_budget: &RunBudget,
) -> OptimizeRun {
    let config = TestabilityConfig::from_env().with_seed(OPT_MC_SEED);
    optimize_input_probabilities_with(
        net,
        faults,
        confidence,
        max_sweeps,
        parallelism,
        run_budget,
        &config,
    )
}

/// [`optimize_input_probabilities_budgeted`] with an explicit engine
/// configuration, for callers that must pin a tier regardless of
/// `DYNMOS_TESTABILITY`.
///
/// # Panics
///
/// Panics if `faults` is empty or `confidence` is not in `(0,1)`.
pub fn optimize_input_probabilities_with(
    net: &Network,
    faults: &[FaultEntry],
    confidence: f64,
    max_sweeps: usize,
    parallelism: Parallelism,
    run_budget: &RunBudget,
    config: &TestabilityConfig,
) -> OptimizeRun {
    let n = net.primary_inputs().len();
    // One engine (tier plan, shared BDD, per-fault difference roots)
    // serves every objective evaluation of the descent.
    let mut engine =
        DetectionEngine::new(net, faults, config.clone()).with_parallelism(parallelism);
    let mut methods: Vec<EstimateMethod> = Vec::new();
    let mut objective = |probs: &[f64]| -> Result<u64, StopReason> {
        let estimates = engine.estimates(probs, run_budget)?;
        if methods.is_empty() {
            methods = estimates.iter().map(|e| e.method).collect();
        }
        let dps: Vec<f64> = estimates.into_iter().map(|e| e.value).collect();
        match test_length_budgeted(&dps, confidence, parallelism, run_budget) {
            Ok(len) => Ok(len),
            Err(LengthError::Interrupted(reason)) => Err(reason),
            // Degenerate confidence / empty fault list: the documented
            // panics of the unbudgeted API.
            Err(other) => panic!("{other}"),
        }
    };
    let mut probs = vec![0.5f64; n];
    let mut uniform_length = u64::MAX;
    let mut best = u64::MAX;
    let mut sweeps = 0usize;
    let mut status = RunStatus::Completed;
    'descent: {
        uniform_length = match objective(&probs) {
            Ok(len) => len,
            Err(reason) => {
                status = RunStatus::Interrupted(reason);
                break 'descent;
            }
        };
        best = uniform_length;
        // Phase 1: uniform grid scan. On symmetric circuits (wide gates,
        // balanced trees) the optimum has equal coordinates, and pure
        // coordinate descent from 0.5 stalls on them — a single raised
        // input hurts its own stuck-closed fault before the joint gain
        // kicks in.
        for &g in &GRID {
            let cand = vec![g; n];
            match objective(&cand) {
                Ok(len) => {
                    if len < best {
                        best = len;
                        probs = cand;
                    }
                }
                Err(reason) => {
                    status = RunStatus::Interrupted(reason);
                    break 'descent;
                }
            }
        }
        for _ in 0..max_sweeps {
            sweeps += 1;
            let mut improved = false;
            for i in 0..n {
                let original = probs[i];
                let mut best_here = best;
                let mut best_p = original;
                for &cand in &GRID {
                    if (cand - original).abs() < 1e-12 {
                        continue;
                    }
                    probs[i] = cand;
                    match objective(&probs) {
                        Ok(len) => {
                            if len < best_here {
                                best_here = len;
                                best_p = cand;
                            }
                        }
                        Err(reason) => {
                            probs[i] = best_p;
                            if best_here < best {
                                best = best_here;
                            }
                            status = RunStatus::Interrupted(reason);
                            break 'descent;
                        }
                    }
                }
                probs[i] = best_p;
                if best_here < best {
                    best = best_here;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }
    let method = summary_method(&methods, config, n, run_budget);
    OptimizeRun {
        report: OptimizeReport {
            probabilities: probs,
            uniform_length,
            optimized_length: best,
            sweeps,
        },
        status,
        method,
        methods,
    }
}

/// The weakest tier among `methods` (Exact < Bdd < MonteCarlo <
/// Cutting, by strength of guarantee). When no evaluation finished,
/// falls back to the tier the engine would have planned.
fn summary_method(
    methods: &[EstimateMethod],
    config: &TestabilityConfig,
    inputs: usize,
    run_budget: &RunBudget,
) -> EstimateMethod {
    if methods.is_empty() {
        let rows_fit = inputs < 64 && (1u64 << inputs) <= run_budget.effective_exact_rows();
        return match config.mode {
            TierMode::Auto | TierMode::Exact if rows_fit => EstimateMethod::Exact,
            TierMode::Cutting => EstimateMethod::Cutting,
            _ => EstimateMethod::Bdd,
        };
    }
    let rank = |m: &EstimateMethod| match m {
        EstimateMethod::Exact => 0,
        EstimateMethod::Bdd => 1,
        EstimateMethod::MonteCarlo => 2,
        EstimateMethod::Cutting => 3,
    };
    *methods.iter().max_by_key(|m| rank(m)).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::network_fault_list;
    use dynmos_netlist::generate::{and_or_tree, domino_wide_and, fig9_cell, single_cell_network};

    #[test]
    fn wide_and_improves_by_orders_of_magnitude() {
        let net = single_cell_network(domino_wide_and(10));
        let faults = network_fault_list(&net);
        let report = optimize_input_probabilities(&net, &faults, 0.999, 10);
        // Uniform: hardest fault p = 2^-10 -> thousands of patterns.
        assert!(report.uniform_length > 5000, "{report:?}");
        // Optimized: high input probabilities -> dozens.
        assert!(
            report.improvement() > 30.0,
            "improvement {} too small: {report:?}",
            report.improvement()
        );
    }

    #[test]
    fn optimizer_never_worsens() {
        for net in [and_or_tree(2), single_cell_network(fig9_cell())] {
            let faults = network_fault_list(&net);
            let report = optimize_input_probabilities(&net, &faults, 0.99, 6);
            assert!(report.optimized_length <= report.uniform_length);
            assert!(report.sweeps >= 1);
        }
    }

    #[test]
    fn optimized_probabilities_are_valid() {
        let net = single_cell_network(domino_wide_and(6));
        let faults = network_fault_list(&net);
        let report = optimize_input_probabilities(&net, &faults, 0.999, 6);
        assert_eq!(report.probabilities.len(), 6);
        for &p in &report.probabilities {
            assert!(p > 0.0 && p < 1.0);
        }
    }

    #[test]
    fn wide_and_pushes_probabilities_high() {
        // For the wide AND, the hard faults need all-ones patterns; the
        // optimizer must move every input probability above 0.5.
        let net = single_cell_network(domino_wide_and(8));
        let faults = network_fault_list(&net);
        let report = optimize_input_probabilities(&net, &faults, 0.999, 8);
        for (i, &p) in report.probabilities.iter().enumerate() {
            assert!(p > 0.5, "input {i} stayed at {p}");
        }
    }

    #[test]
    fn converges_before_max_sweeps_on_small_nets() {
        let net = and_or_tree(2);
        let faults = network_fault_list(&net);
        let report = optimize_input_probabilities(&net, &faults, 0.99, 50);
        assert!(report.sweeps < 50, "did not converge: {report:?}");
    }

    #[test]
    fn budgeted_descent_matches_unbudgeted() {
        // A live deadline routes every objective through the chunked
        // budgeted kernels; a completed run must reproduce the
        // unbudgeted report exactly.
        // Pinned Auto config: the assertions are about the exact tier
        // and must hold under any `DYNMOS_TESTABILITY` CI leg.
        let auto = TestabilityConfig::new(TierMode::Auto);
        let net = single_cell_network(domino_wide_and(8));
        let faults = network_fault_list(&net);
        let reference = optimize_input_probabilities_with(
            &net,
            &faults,
            0.999,
            8,
            Parallelism::Serial,
            &RunBudget::unlimited(),
            &auto,
        );
        let far = RunBudget::deadline_in(std::time::Duration::from_secs(3600));
        let run = optimize_input_probabilities_with(
            &net,
            &faults,
            0.999,
            8,
            Parallelism::Serial,
            &far,
            &auto,
        );
        assert!(run.status.is_complete());
        assert_eq!(run.method, EstimateMethod::Exact);
        assert!(run.methods.iter().all(|&m| m == EstimateMethod::Exact));
        assert_eq!(run.report.probabilities, reference.report.probabilities);
        assert_eq!(run.report.uniform_length, reference.report.uniform_length);
        assert_eq!(
            run.report.optimized_length,
            reference.report.optimized_length
        );
        assert_eq!(run.report.sweeps, reference.report.sweeps);
    }

    #[test]
    fn over_cap_objective_goes_symbolic() {
        // A row cap below 2^6 moves the objective onto the shared-BDD
        // tier; the descent still completes, tags every fault, and
        // never worsens the start point.
        let net = single_cell_network(domino_wide_and(6));
        let faults = network_fault_list(&net);
        let run = optimize_input_probabilities_with(
            &net,
            &faults,
            0.99,
            1,
            Parallelism::Serial,
            &RunBudget::unlimited().with_max_exact_rows(1 << 4),
            &TestabilityConfig::new(TierMode::Auto),
        );
        assert!(run.status.is_complete());
        assert_eq!(run.method, EstimateMethod::Bdd);
        assert_eq!(run.methods.len(), faults.len());
        assert!(run.methods.iter().all(|&m| m == EstimateMethod::Bdd));
        assert!(run.report.optimized_length <= run.report.uniform_length);
        assert_eq!(run.report.probabilities.len(), 6);
    }

    #[test]
    fn cancelled_descent_returns_best_so_far() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let net = single_cell_network(domino_wide_and(8));
        let faults = network_fault_list(&net);
        let flag = Arc::new(AtomicBool::new(true));
        let run = optimize_input_probabilities_budgeted(
            &net,
            &faults,
            0.999,
            8,
            Parallelism::Serial,
            &RunBudget::unlimited().with_cancel(flag),
        );
        assert_eq!(
            run.status,
            RunStatus::Interrupted(crate::budget::StopReason::Cancelled)
        );
        // Interrupted before the first objective finished: the report
        // is the documented uniform starting point.
        assert_eq!(run.report.sweeps, 0);
        assert!(run.report.probabilities.iter().all(|&p| p == 0.5));
    }
}
