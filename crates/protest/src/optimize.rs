//! Input signal probability optimization.
//!
//! PROTEST's headline feature: "For each primary input a specific signal
//! probability is computed, promising an increase of fault detection and a
//! decrease of the necessary test length. Using those optimized input
//! signal probabilities, the necessary test length can be reduced by
//! orders of magnitudes."
//!
//! [`optimize_input_probabilities`] minimizes the joint test length by
//! cyclic coordinate descent over a discrete probability grid — robust,
//! derivative-free, and more than enough to reproduce the orders-of-
//! magnitude effect on the paper-scale circuits (the objective is exact,
//! via exhaustive detection probabilities). The objective's enumeration
//! engine is thread-sharded along the axis the two-axis planner picks
//! ([`crate::parallel::plan_shards`]): the fault list when it can feed
//! every worker, or the enumeration's row-block axis when the descent
//! has narrowed to a few hard faults — so the descent — hundreds of
//! objective evaluations — scales with cores in both regimes while
//! staying bit-identical at any thread count.

use crate::detect::ExactDetector;
use crate::length::test_length;
use crate::list::FaultEntry;
use crate::parallel::Parallelism;
use dynmos_netlist::Network;

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimizeReport {
    /// The optimized per-input probabilities.
    pub probabilities: Vec<f64>,
    /// Test length at the uniform 0.5 starting point.
    pub uniform_length: u64,
    /// Test length at the optimized probabilities.
    pub optimized_length: u64,
    /// Number of full coordinate sweeps performed.
    pub sweeps: usize,
}

impl OptimizeReport {
    /// The improvement factor (uniform / optimized), `inf` if the uniform
    /// length was unbounded.
    pub fn improvement(&self) -> f64 {
        if self.optimized_length == 0 {
            return f64::INFINITY;
        }
        self.uniform_length as f64 / self.optimized_length as f64
    }
}

/// The candidate grid used for each coordinate. Matches the resolution a
/// weighted-random pattern generator can realize with a few LFSR bits.
const GRID: [f64; 15] = [
    0.03125, 0.0625, 0.125, 0.1875, 0.25, 0.375, 0.5, 0.625, 0.75, 0.8125, 0.875, 0.9375, 0.96875,
    0.984375, 0.015625,
];

/// Optimizes per-input signal probabilities to minimize the joint random
/// test length at `confidence`.
///
/// Starts from the uniform 0.5 assignment and performs cyclic coordinate
/// descent over a fixed probability grid until a full sweep makes no
/// improvement (or
/// `max_sweeps` is reached).
///
/// # Panics
///
/// Panics if the network exceeds the exact-enumeration input limit (24),
/// `faults` is empty, or `confidence` is not in `(0,1)`.
///
/// # Example
///
/// ```
/// use dynmos_netlist::generate::{domino_wide_and, single_cell_network};
/// use dynmos_protest::{network_fault_list, optimize_input_probabilities};
///
/// let net = single_cell_network(domino_wide_and(8));
/// let faults = network_fault_list(&net);
/// let report = optimize_input_probabilities(&net, &faults, 0.999, 8);
/// // The paper's claim: orders of magnitude shorter tests.
/// assert!(report.improvement() > 10.0);
/// ```
pub fn optimize_input_probabilities(
    net: &Network,
    faults: &[FaultEntry],
    confidence: f64,
    max_sweeps: usize,
) -> OptimizeReport {
    optimize_input_probabilities_par(net, faults, confidence, max_sweeps, Parallelism::default())
}

/// [`optimize_input_probabilities`] with an explicit thread policy for
/// the objective's enumeration engine. The report is identical at any
/// thread count.
pub fn optimize_input_probabilities_par(
    net: &Network,
    faults: &[FaultEntry],
    confidence: f64,
    max_sweeps: usize,
    parallelism: Parallelism,
) -> OptimizeReport {
    let n = net.primary_inputs().len();
    let mut probs = vec![0.5f64; n];
    // One detector (compiled evaluator + prepared faults) serves every
    // objective evaluation of the descent.
    let mut detector = ExactDetector::new(net, faults);
    detector.set_parallelism(parallelism);
    let mut objective =
        |probs: &[f64]| -> u64 { test_length(&detector.probabilities(probs), confidence) };
    let uniform_length = objective(&probs);
    let mut best = uniform_length;
    // Phase 1: uniform grid scan. On symmetric circuits (wide gates,
    // balanced trees) the optimum has equal coordinates, and pure
    // coordinate descent from 0.5 stalls on them — a single raised input
    // hurts its own stuck-closed fault before the joint gain kicks in.
    for &g in &GRID {
        let cand = vec![g; n];
        let len = objective(&cand);
        if len < best {
            best = len;
            probs = cand;
        }
    }
    let mut sweeps = 0;
    for _ in 0..max_sweeps {
        sweeps += 1;
        let mut improved = false;
        for i in 0..n {
            let original = probs[i];
            let mut best_here = best;
            let mut best_p = original;
            for &cand in &GRID {
                if (cand - original).abs() < 1e-12 {
                    continue;
                }
                probs[i] = cand;
                let len = objective(&probs);
                if len < best_here {
                    best_here = len;
                    best_p = cand;
                }
            }
            probs[i] = best_p;
            if best_here < best {
                best = best_here;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    OptimizeReport {
        probabilities: probs,
        uniform_length,
        optimized_length: best,
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::network_fault_list;
    use dynmos_netlist::generate::{and_or_tree, domino_wide_and, fig9_cell, single_cell_network};

    #[test]
    fn wide_and_improves_by_orders_of_magnitude() {
        let net = single_cell_network(domino_wide_and(10));
        let faults = network_fault_list(&net);
        let report = optimize_input_probabilities(&net, &faults, 0.999, 10);
        // Uniform: hardest fault p = 2^-10 -> thousands of patterns.
        assert!(report.uniform_length > 5000, "{report:?}");
        // Optimized: high input probabilities -> dozens.
        assert!(
            report.improvement() > 30.0,
            "improvement {} too small: {report:?}",
            report.improvement()
        );
    }

    #[test]
    fn optimizer_never_worsens() {
        for net in [and_or_tree(2), single_cell_network(fig9_cell())] {
            let faults = network_fault_list(&net);
            let report = optimize_input_probabilities(&net, &faults, 0.99, 6);
            assert!(report.optimized_length <= report.uniform_length);
            assert!(report.sweeps >= 1);
        }
    }

    #[test]
    fn optimized_probabilities_are_valid() {
        let net = single_cell_network(domino_wide_and(6));
        let faults = network_fault_list(&net);
        let report = optimize_input_probabilities(&net, &faults, 0.999, 6);
        assert_eq!(report.probabilities.len(), 6);
        for &p in &report.probabilities {
            assert!(p > 0.0 && p < 1.0);
        }
    }

    #[test]
    fn wide_and_pushes_probabilities_high() {
        // For the wide AND, the hard faults need all-ones patterns; the
        // optimizer must move every input probability above 0.5.
        let net = single_cell_network(domino_wide_and(8));
        let faults = network_fault_list(&net);
        let report = optimize_input_probabilities(&net, &faults, 0.999, 8);
        for (i, &p) in report.probabilities.iter().enumerate() {
            assert!(p > 0.5, "input {i} stayed at {p}");
        }
    }

    #[test]
    fn converges_before_max_sweeps_on_small_nets() {
        let net = and_or_tree(2);
        let faults = network_fault_list(&net);
        let report = optimize_input_probabilities(&net, &faults, 0.99, 50);
        assert!(report.sweeps < 50, "did not converge: {report:?}");
    }
}
