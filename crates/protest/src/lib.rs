#![forbid(unsafe_code)]
//! Reproduction of **PROTEST** (Probabilistic Testability Analysis),
//! the paper's section-5 tool (Fig. 8).
//!
//! For a combinational network and per-input signal probabilities, PROTEST
//!
//! 1. estimates the **signal probability** at each internal node
//!    ([`signal_probabilities`], plus the exact oracle
//!    [`exact_signal_probability`]),
//! 2. estimates each fault's **detection probability**
//!    ([`detection_probabilities`]),
//! 3. computes the **test length** needed for a demanded confidence
//!    ([`test_length`]),
//! 4. **optimizes the input signal probabilities**, "reducing the
//!    necessary test length by orders of magnitudes"
//!    ([`optimize_input_probabilities`]),
//! 5. generates weighted **random patterns** ([`PatternSource`]: a
//!    splittable counter-based stream with bit-sliced weighting — one
//!    threshold cascade per 64 lanes instead of 64 Bernoulli draws), and
//! 6. validates predictions by **static fault simulation**
//!    ([`FaultSimulator`], 64-way pattern-parallel and thread-sharded
//!    along whichever axis of the (faults × patterns) grid keeps every
//!    core busy ([`plan_shards`]: fault slices, or contiguous stream
//!    ranges in the few-fault regime) — see [`parallel`] for the
//!    determinism contract: same seed ⇒ same result at any thread
//!    count on either axis).
//!
//! # Example
//!
//! ```
//! use dynmos_netlist::generate::{domino_wide_and, single_cell_network};
//! use dynmos_protest::{network_fault_list, test_length, detection_probabilities};
//!
//! let net = single_cell_network(domino_wide_and(8));
//! let faults = network_fault_list(&net);
//! let uniform = vec![0.5; 8];
//! let probs = detection_probabilities(&net, &faults, &uniform);
//! let n_uniform = test_length(&probs, 0.999);
//! // The hardest fault needs p = 2^-8 patterns; thousands of patterns.
//! assert!(n_uniform > 1000);
//! ```

pub mod budget;
pub mod chaos;
pub mod detect;
pub mod env_contract;
pub mod estimate;
pub mod fsim;
pub mod length;
pub mod list;
pub mod montecarlo;
pub mod optimize;
pub mod parallel;
pub mod random;
pub mod service;
pub mod symbolic;
pub mod testability;

pub use budget::{env_budget_ms, RunBudget, RunStatus, StopReason, DEFAULT_EXACT_ROWS};
pub use chaos::{env_fault_plan, CrashPoint, FaultPlan, LegFault, WorkerFault};
pub use detect::{
    detection_probabilities, detection_probability_estimates, detection_probability_estimates_with,
    exact_detection_probability, DetectionEstimate, EstimateMethod, ExactDetector,
};
pub use env_contract::EnvError;
pub use estimate::{exact_signal_probability, signal_probabilities};
pub use fsim::{BudgetedFsim, FaultSimulator, FsimCheckpoint, FsimOutcome};
pub use length::{
    escape_probability, test_length, test_length_budgeted, test_length_par, test_length_per_fault,
    try_test_length, try_test_length_par, LengthError,
};
pub use list::{network_fault_list, stuck_fault_list, FaultEntry};
pub use montecarlo::{
    mc_detection_probabilities, mc_detection_probabilities_budgeted,
    mc_detection_probabilities_par, mc_detection_probability, mc_detection_resume,
    mc_signal_probability, mc_signal_probability_budgeted, mc_signal_probability_par,
    mc_signal_resume, BudgetedEstimate, BudgetedEstimates, Estimate, McCheckpoint,
};
pub use optimize::{
    optimize_input_probabilities, optimize_input_probabilities_budgeted,
    optimize_input_probabilities_par, optimize_input_probabilities_with, OptimizeReport,
    OptimizeRun,
};
pub use parallel::{
    plan_shards, run_sharded, shard_ranges, try_run_sharded, Parallelism, ShardError, ShardPlan,
};
pub use random::{PatternSource, StreamSpan};
pub use service::{
    BackoffPolicy, CacheStats, EngineConfig, Job, JobContext, JobEngine, JobKernel, JobRecord,
    JobStatus, Json, NetlistFormat, NetworkCache, Rejection,
};
pub use symbolic::{
    bdd_detection_probabilities, bdd_detection_probability, bdd_signal_probability,
    bdd_test_pattern,
};
pub use testability::{
    env_testability, tier_census, DetectionEngine, TestabilityConfig, TierMode,
    DEFAULT_NODE_BUDGET, DEFAULT_TIGHTEN_SAMPLES,
};
