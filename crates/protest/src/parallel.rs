//! Thread-sharded execution of the PROTEST kernels.
//!
//! The PR-1 compiled kernel split network evaluation into a shared
//! immutable [`dynmos_netlist::CompiledNetwork`] and per-caller
//! [`dynmos_netlist::PackedEvaluator`] buffers, which makes fault-level
//! parallelism embarrassingly simple: give every worker its own evaluator
//! over a **disjoint slice of the fault list** and let it replay the same
//! pattern stream. No locks, no shared mutable state — the only
//! synchronization is the final merge of per-shard counters.
//!
//! # Determinism contract
//!
//! Every parallel entry point in this crate is **bit-identical to its
//! serial form at any thread count**: same seed ⇒ same detection
//! indices, same coverage curve, same escape set, same Monte Carlo
//! estimates. Two design rules make this hold:
//!
//! 1. the pattern stream is counter-based ([`crate::PatternSource`]:
//!    batch `b` is a pure function of `(seed, b)`), so workers regenerate
//!    identical patterns instead of racing over one RNG; and
//! 2. work is sharded **by fault, never by accumulator**: every
//!    per-fault quantity (detection index, hit count, exact probability
//!    sum) is computed start-to-finish by one worker in the same order
//!    the serial loop uses, so even floating-point sums associate
//!    identically.
//!
//! # `Send`/`Sync` requirements
//!
//! Workers share `&Network` and `&PreparedFault` across
//! [`std::thread::scope`] spawns, which requires the compiled network
//! types to be `Sync`. They are: a finished [`dynmos_netlist::Network`]
//! (cells, instruction tape, fanout cones) is immutable owned data with
//! no interior mutability — `crates/netlist/src/compile.rs` carries
//! compile-time assertions pinning `Network`, `CompiledNetwork` and
//! `PreparedFault` to `Send + Sync` so a regression fails the build, not
//! a run.

use std::ops::Range;

/// How many worker threads a PROTEST kernel may use.
///
/// The default is [`Parallelism::Auto`]: all available cores, overridable
/// with the `DYNMOS_THREADS` environment variable (the knob CI uses to
/// force the parallel path on small runners).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded, in the calling thread.
    Serial,
    /// Exactly this many workers (clamped to at least 1).
    Fixed(usize),
    /// `DYNMOS_THREADS` if set, otherwise every available core.
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolves to a concrete worker count (always at least 1).
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => std::env::var("DYNMOS_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        }
    }
}

/// Splits `0..n` into `parts` contiguous, balanced, non-empty ranges
/// (fewer than `parts` when `n < parts`; empty when `n == 0`).
pub fn shard_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(n);
    if parts == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(parts);
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `worker` over the shards of `0..n` on up to `threads` scoped
/// threads and returns the per-shard results in shard (= item) order.
/// With one shard the worker runs inline — the serial path and the
/// 1-thread parallel path are literally the same code.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_sharded<R, F>(n: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = shard_ranges(n, threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(worker).collect();
    }
    std::thread::scope(|s| {
        let worker = &worker;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| s.spawn(move || worker(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fault-shard worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 64, 1000] {
            for parts in [1usize, 2, 3, 7, 16] {
                let ranges = shard_ranges(n, parts);
                // Contiguous cover of 0..n, no shard empty.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "n={n} parts={parts}");
                    assert!(!r.is_empty() || n == 0);
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(ranges.len() <= parts.max(1));
                // Balanced: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1, "n={n} parts={parts}");
                }
            }
        }
    }

    #[test]
    fn run_sharded_preserves_item_order() {
        let squares = run_sharded(100, 7, |r| r.map(|i| i * i).collect::<Vec<_>>());
        let flat: Vec<usize> = squares.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_sharded_single_thread_runs_inline() {
        let id = std::thread::current().id();
        let ran_on = run_sharded(10, 1, |_| std::thread::current().id());
        assert_eq!(ran_on, vec![id]);
    }

    #[test]
    fn parallelism_resolves() {
        assert_eq!(Parallelism::Serial.resolve(), 1);
        assert_eq!(Parallelism::Fixed(4).resolve(), 4);
        assert_eq!(Parallelism::Fixed(0).resolve(), 1);
        assert!(Parallelism::Auto.resolve() >= 1);
    }
}
