//! Thread-sharded execution of the PROTEST kernels.
//!
//! The PR-1 compiled kernel split network evaluation into a shared
//! immutable [`dynmos_netlist::CompiledNetwork`] and per-caller
//! [`dynmos_netlist::PackedEvaluator`] buffers, which makes fault-level
//! parallelism embarrassingly simple: give every worker its own evaluator
//! over a **disjoint slice of the fault list** and let it replay the same
//! pattern stream. No locks, no shared mutable state — the only
//! synchronization is the final merge of per-shard counters.
//!
//! # Two work axes
//!
//! Every PROTEST kernel walks a (faults × patterns) work grid, and
//! [`plan_shards`] picks which axis to cut:
//!
//! - **fault axis** (preferred): disjoint fault slices, each worker
//!   replaying the whole pattern stream — the cheapest merge
//!   (concatenation), chosen whenever the fault list can feed every
//!   worker; or
//! - **pattern axis**: when `faults < threads` (the few-fault regime —
//!   single-hard-fault test-length runs, late-stage PODEM dropping),
//!   disjoint **contiguous batch ranges of the counter-based stream**,
//!   each worker simulating every fault over its range.
//!
//! # Determinism contract
//!
//! Every parallel entry point in this crate is **bit-identical to its
//! serial form at any thread count**: same seed ⇒ same detection
//! indices, same coverage curve, same escape set, same Monte Carlo
//! estimates. Three design rules make this hold:
//!
//! 1. the pattern stream is counter-based ([`crate::PatternSource`]:
//!    batch `b` is a pure function of `(seed, b)`), so workers regenerate
//!    identical patterns instead of racing over one RNG;
//! 2. on the fault axis, every per-fault quantity (detection index, hit
//!    count, exact probability sum) is computed start-to-finish by one
//!    worker in the same order the serial loop uses, so even
//!    floating-point sums associate identically; and
//! 3. on the pattern axis, per-range results merge by an
//!    order-independent rule — the **minimum detection index per fault**
//!    across pattern shards (a fault's first detection over the whole
//!    stream is the earliest of its first detections over any disjoint
//!    cover of the stream; the coverage curve then reconstructs
//!    order-independently from the merged indices), exact integer sums
//!    for Monte Carlo hit counts, and ascending-order folds of
//!    **fixed-size block partials** for floating-point sums (the block
//!    boundaries are a property of the workload, never of the thread
//!    count, so serial and sharded runs add the same partials in the
//!    same order).
//!
//! # Budget, cancellation, and checkpoint contract
//!
//! Every long-running kernel has a budgeted form taking a
//! [`crate::RunBudget`] (deadline, cancellation flag, per-call pattern
//! cap, exact-row cap). Three rules keep budgets compatible with the
//! determinism contract above:
//!
//! 1. **Chunk-boundary checks only.** Budgets are consulted between
//!    fixed-size work chunks (stream-batch blocks, Monte Carlo pass
//!    groups, enumeration row-block groups, per-fault ATPG steps) —
//!    never inside one — so an interrupted run always stops at a state
//!    the serial loop also passes through. Chunk sizes are properties
//!    of the workload, never of the thread count or the budget.
//! 2. **Checkpoints restart the same walk.** An interrupted fault-sim
//!    or Monte Carlo run returns its merged per-fault state (detection
//!    indices, hit counts) plus the stream position of the next chunk.
//!    Because every merge rule above is order-independent and
//!    chunk-invisible, a resumed run is **bit-identical to an
//!    uninterrupted serial run** — the differential tests interrupt,
//!    resume, and compare against serial at several thread counts.
//! 3. **Forward progress.** Each budgeted call completes at least one
//!    chunk before honoring a deadline or cancellation, so a resume
//!    loop under an always-expired budget (`DYNMOS_BUDGET_MS=0`) still
//!    terminates.
//!
//! **Exact → Monte Carlo degradation rule:** exact enumeration refuses
//! a row space larger than [`crate::RunBudget::effective_exact_rows`]
//! up front ([`crate::StopReason::RowCap`]) instead of hanging;
//! [`crate::detection_probability_estimates`] then transparently falls
//! back to the Monte Carlo estimator and labels each result with the
//! method that produced it ([`crate::EstimateMethod`]), so callers —
//! including the optimizer — always know which path ran.
//!
//! # Panic isolation
//!
//! [`try_run_sharded`] confines a panicking worker to its shard: the
//! shard is retried **serially, once** (shards are deterministic pure
//! functions of their range, so the retry result — and therefore the
//! merge — is bit-identical to an all-healthy run). A shard that
//! panics twice surfaces a structured [`ShardError`] instead of
//! tearing down the process. [`run_sharded`] keeps its panicking
//! signature on top of the same machinery.
//!
//! # Service & robustness contract
//!
//! The [`crate::service`] job engine supervises the budgeted kernels on
//! top of the guarantees above. The contract it upholds (and that the
//! fault-injection harness in [`crate::chaos`] proves in CI):
//!
//! - **Failure surfacing.** A shard that panics twice becomes
//!   [`crate::StopReason::WorkerFailed`] on the budgeted kernels: the
//!   run stops at the **last merged chunk boundary**, keeps every
//!   already-merged detection/coverage result, and returns a resumable
//!   checkpoint plus the [`ShardError`] — never a torn-down process,
//!   never a half-merged chunk.
//! - **Retry semantics.** The supervisor retries a job leg that died
//!   (worker failure, injected kill) from its last checkpoint. The
//!   retry bound applies to **consecutive** failed legs; any leg that
//!   completes a chunk resets it. Exhausting the bound fails the job
//!   with its partial result attached.
//! - **Backoff bounds.** Delay before retry `k` is
//!   `base · 2^(k-1)` capped at `cap`, scaled by a deterministic jitter
//!   in `[0.5, 1.5)` — so the delay lies in `[base/2, 1.5·cap)` and the
//!   schedule is a pure function of `(seed, job, k)`.
//! - **Shed conditions.** The admission queue is bounded; a submit to a
//!   full queue is rejected immediately with a structured reason
//!   (capacity and pending count), never blocked or buffered
//!   unboundedly.
//! - **Determinism under retries.** Because checkpoints restart the
//!   same chunk walk and merges are chunk-invisible, a job killed and
//!   retried any number of times, at any thread count, produces results
//!   **bit-identical** to one uninterrupted serial run — the
//!   differential tests kill jobs on fixed and randomized schedules and
//!   compare exact output bytes.
//!
//! # `Send`/`Sync` requirements
//!
//! Workers share `&Network` and `&PreparedFault` across
//! [`std::thread::scope`] spawns, which requires the compiled network
//! types to be `Sync`. They are: a finished [`dynmos_netlist::Network`]
//! (cells, instruction tape, fanout cones) is immutable owned data with
//! no interior mutability — `crates/netlist/src/compile.rs` carries
//! compile-time assertions pinning `Network`, `CompiledNetwork` and
//! `PreparedFault` to `Send + Sync` so a regression fails the build, not
//! a run.

use std::ops::Range;

/// How many worker threads a PROTEST kernel may use.
///
/// The default is [`Parallelism::Auto`]: all available cores, overridable
/// with the `DYNMOS_THREADS` environment variable (the knob CI uses to
/// force the parallel path on small runners).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded, in the calling thread.
    Serial,
    /// Exactly this many workers (clamped to at least 1).
    Fixed(usize),
    /// `DYNMOS_THREADS` if set, otherwise every available core.
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolves to a concrete worker count (always at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `DYNMOS_THREADS` is set to a non-numeric value (see
    /// [`parse_thread_override`]).
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => {
                parse_thread_override(crate::env_contract::raw("DYNMOS_THREADS").as_deref())
                    .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            }
        }
    }
}

/// Interprets a raw `DYNMOS_THREADS` value. Unset, empty, or
/// whitespace-only means "no override" (`None`); `0` clamps to 1 — a user
/// setting `DYNMOS_THREADS=0` is throttling, and silently handing them
/// *all cores* is the opposite of what they asked for.
///
/// # Panics
///
/// Panics on any other unparsable value: a typo in a CI throttle must
/// fail loudly, not fan out onto every core of the runner.
fn parse_thread_override(raw: Option<&str>) -> Option<usize> {
    let trimmed = raw?.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<usize>() {
        Ok(n) => Some(n.max(1)),
        Err(_) => panic!(
            "DYNMOS_THREADS must be a non-negative integer (unset or empty for all cores), \
             got {trimmed:?}"
        ),
    }
}

/// Which axis of the (faults × patterns) work grid a kernel shards, and
/// over how many workers — the output of [`plan_shards`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPlan {
    /// Cut the fault list into contiguous slices, one per worker, each
    /// replaying the whole pattern stream.
    Faults(usize),
    /// Cut the pattern axis (stream batches, Monte Carlo passes,
    /// enumeration row blocks) into contiguous ranges, one per worker,
    /// each covering the whole fault list.
    Patterns(usize),
}

impl ShardPlan {
    /// The planned worker count (at least 1 on either axis).
    pub fn workers(self) -> usize {
        match self {
            ShardPlan::Faults(w) | ShardPlan::Patterns(w) => w.max(1),
        }
    }

    /// `true` when the plan degenerates to the inline serial path.
    pub fn is_serial(self) -> bool {
        self.workers() <= 1
    }
}

/// The two-axis planner: decides which axis of a (faults ×
/// `pattern_units`) work grid to shard over up to `threads` workers.
///
/// The fault axis is preferred — its merge is a concatenation and every
/// per-fault accumulator stays with one worker. The pattern axis takes
/// over exactly in the **few-fault regime** (`faults < threads`), where
/// fault sharding would idle most workers; `pattern_units` is whatever
/// the kernel's pattern axis is made of (64-pattern stream batches,
/// Monte Carlo wide passes, exact-enumeration row blocks), and workers
/// never outnumber units. A kernel with no pattern axis to speak of
/// passes `pattern_units = 1` and gets the fault axis (over at most
/// `faults` workers) back.
pub fn plan_shards(faults: usize, pattern_units: u64, threads: usize) -> ShardPlan {
    let threads = threads.max(1);
    if faults >= threads {
        return ShardPlan::Faults(threads);
    }
    let pattern_workers = threads.min(usize::try_from(pattern_units).unwrap_or(usize::MAX));
    if pattern_workers > 1 {
        ShardPlan::Patterns(pattern_workers)
    } else {
        // Degenerate pattern axis: fall back to however many workers the
        // fault list itself can feed.
        ShardPlan::Faults(faults.min(threads).max(1))
    }
}

/// Splits `0..n` into `parts` contiguous, balanced, non-empty ranges
/// (fewer than `parts` when `n < parts`; empty when `n == 0`).
pub fn shard_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(n);
    if parts == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(parts);
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A worker shard that panicked even after its serial retry.
#[derive(Debug, Clone)]
pub struct ShardError {
    /// The item range the failing worker owned.
    pub shard: Range<usize>,
    /// The panic payload, rendered (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault-shard worker panicked twice (shard {}..{}): {}",
            self.shard.start, self.shard.end, self.message
        )
    }
}

impl std::error::Error for ShardError {}

/// Renders a panic payload for [`ShardError::message`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `worker` over the shards of `0..n` on up to `threads` scoped
/// threads and returns the per-shard results in shard (= item) order.
/// With one shard the worker runs inline — the serial path and the
/// 1-thread parallel path are literally the same code (and a panic
/// there propagates untouched, exactly like any serial call).
///
/// A worker thread that panics does not tear down the run: its shard
/// is retried serially, once. Shards are deterministic pure functions
/// of their range, so the retried result — and the merged whole — is
/// bit-identical to an all-healthy run. Only a shard that fails twice
/// yields an [`Err`].
///
/// # Errors
///
/// Returns a [`ShardError`] naming the shard whose worker panicked on
/// both the threaded attempt and the serial retry.
pub fn try_run_sharded<R, F>(n: usize, threads: usize, worker: F) -> Result<Vec<R>, ShardError>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = shard_ranges(n, threads);
    if ranges.len() <= 1 {
        // The inline path keeps serial semantics: no catch, no retry,
        // and no fault injection — a single-shard run *is* the serial
        // reference the harness compares against.
        return Ok(ranges.into_iter().map(worker).collect());
    }
    // Fault-injection probes run here, on the planning thread, so a
    // thread-local `chaos::scoped` plan covers the kernels it calls.
    let plan = crate::chaos::current();
    std::thread::scope(|s| {
        let worker = &worker;
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(idx, r)| {
                // One probe per spawn, on this thread, in shard order —
                // the decision is reused by the retry below so the
                // probe sequence stays independent of panic outcomes.
                let injected = plan.as_deref().and_then(|p| p.worker_fault(idx));
                let handle = s.spawn(move || {
                    if injected.is_some() {
                        panic!("injected worker panic (DYNMOS_FAULT_PLAN)");
                    }
                    worker(r)
                });
                (idx, injected, handle)
            })
            .collect();
        // Join every handle before judging any shard: an early return
        // with panicked threads still unjoined would make the scope's
        // implicit join re-raise their payloads.
        let joined: Vec<_> = handles
            .into_iter()
            .map(|(idx, injected, h)| (idx, injected, h.join()))
            .collect();
        let mut out = Vec::with_capacity(joined.len());
        for (idx, injected, join_result) in joined {
            match join_result {
                Ok(v) => out.push(v),
                // The worker panicked: retry its shard serially, once.
                // AssertUnwindSafe is sound here because `worker` is
                // `Fn` over shared state — a panic cannot have left
                // exclusive state half-mutated.
                Err(_) => {
                    let range = shard_ranges(n, threads)[idx].clone();
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if injected == Some(crate::chaos::WorkerFault::PanicPersistent) {
                            panic!("injected persistent worker panic (DYNMOS_FAULT_PLAN)");
                        }
                        worker(range.clone())
                    })) {
                        Ok(v) => out.push(v),
                        Err(payload) => {
                            return Err(ShardError {
                                shard: range,
                                message: panic_message(payload.as_ref()),
                            })
                        }
                    }
                }
            }
        }
        Ok(out)
    })
}

/// [`try_run_sharded`] with the historical panicking signature: a shard
/// failing twice panics with the [`ShardError`] rendering.
///
/// # Panics
///
/// Propagates a worker panic only after the shard's serial retry also
/// panicked.
pub fn run_sharded<R, F>(n: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    try_run_sharded(n, threads, worker).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 64, 1000] {
            for parts in [1usize, 2, 3, 7, 16] {
                let ranges = shard_ranges(n, parts);
                // Contiguous cover of 0..n, no shard empty.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "n={n} parts={parts}");
                    assert!(!r.is_empty() || n == 0);
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(ranges.len() <= parts.max(1));
                // Balanced: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1, "n={n} parts={parts}");
                }
            }
        }
    }

    #[test]
    fn run_sharded_preserves_item_order() {
        let squares = run_sharded(100, 7, |r| r.map(|i| i * i).collect::<Vec<_>>());
        let flat: Vec<usize> = squares.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_sharded_single_thread_runs_inline() {
        let id = std::thread::current().id();
        let ran_on = run_sharded(10, 1, |_| std::thread::current().id());
        assert_eq!(ran_on, vec![id]);
    }

    #[test]
    fn parallelism_resolves() {
        assert_eq!(Parallelism::Serial.resolve(), 1);
        assert_eq!(Parallelism::Fixed(4).resolve(), 4);
        assert_eq!(Parallelism::Fixed(0).resolve(), 1);
        assert!(Parallelism::Auto.resolve() >= 1);
    }

    // The override parser is tested as a pure function: mutating the
    // process-global DYNMOS_THREADS here would race every concurrently
    // running test that resolves Parallelism::Auto.
    #[test]
    fn thread_override_parses_values() {
        assert_eq!(parse_thread_override(None), None);
        assert_eq!(parse_thread_override(Some("")), None);
        assert_eq!(parse_thread_override(Some("   ")), None);
        assert_eq!(parse_thread_override(Some("3")), Some(3));
        assert_eq!(parse_thread_override(Some(" 16 ")), Some(16));
    }

    #[test]
    fn thread_override_zero_means_one() {
        // 0 is a throttle, not "all cores".
        assert_eq!(parse_thread_override(Some("0")), Some(1));
    }

    #[test]
    #[should_panic(expected = "DYNMOS_THREADS must be a non-negative integer")]
    fn thread_override_garbage_panics() {
        parse_thread_override(Some("lots"));
    }

    #[test]
    #[should_panic(expected = "DYNMOS_THREADS must be a non-negative integer")]
    fn thread_override_negative_panics() {
        parse_thread_override(Some("-2"));
    }

    /// Runs `f` with fault injection locally disabled: these tests
    /// count panics and blame specific shards, so an ambient
    /// `DYNMOS_FAULT_PLAN` (the CI chaos leg) must not add its own.
    fn without_injection<R>(f: impl FnOnce() -> R) -> R {
        crate::chaos::scoped(std::sync::Arc::new(crate::chaos::FaultPlan::new(0)), f)
    }

    #[test]
    fn once_panicking_shard_is_retried_and_merges_identically() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let serial: Vec<usize> = run_sharded(100, 1, |r| r.map(|i| i * 3).collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect();
        let trips = AtomicUsize::new(0);
        let healed: Vec<usize> = without_injection(|| {
            try_run_sharded(100, 4, |r| {
                // Exactly one worker trips, on its threaded attempt only;
                // the serial retry of the same shard succeeds.
                if r.contains(&50) && trips.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("injected shard panic");
                }
                r.map(|i| i * 3).collect::<Vec<_>>()
            })
        })
        .expect("retried shard heals the run")
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(healed, serial);
        assert_eq!(trips.load(Ordering::SeqCst), 2, "one retry, not more");
    }

    #[test]
    fn twice_panicking_shard_surfaces_shard_error() {
        let err = without_injection(|| {
            try_run_sharded(100, 4, |r| {
                if r.contains(&50) {
                    panic!("injected persistent panic");
                }
                r.len()
            })
        })
        .expect_err("persistently failing shard must error");
        assert!(err.shard.contains(&50), "wrong shard blamed: {err}");
        assert!(err.message.contains("injected persistent panic"));
        assert!(err.to_string().contains("fault-shard worker panicked"));
    }

    #[test]
    #[should_panic(expected = "fault-shard worker panicked twice")]
    fn run_sharded_panics_only_after_retry_fails() {
        without_injection(|| {
            run_sharded(100, 4, |r| {
                if r.contains(&50) {
                    panic!("always");
                }
                r.len()
            })
        });
    }

    #[test]
    fn transient_injected_panics_heal_bit_identically() {
        let serial: Vec<usize> = (0..100).map(|i| i * 7).collect();
        let plan = std::sync::Arc::new(crate::chaos::FaultPlan::new(11).worker_panic(1.0));
        let healed: Vec<usize> = crate::chaos::scoped(plan, || {
            try_run_sharded(100, 4, |r| r.map(|i| i * 7).collect::<Vec<_>>())
        })
        .expect("every injected panic is transient, every retry heals")
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(healed, serial);
    }

    #[test]
    fn persistent_injected_panics_surface_shard_error() {
        let plan =
            std::sync::Arc::new(crate::chaos::FaultPlan::new(11).worker_panic_persistent(1.0));
        let err = crate::chaos::scoped(plan, || try_run_sharded(100, 4, |r| r.len()))
            .expect_err("persistent injection must error");
        assert!(err.message.contains("injected persistent worker panic"));
    }

    #[test]
    fn single_shard_panic_propagates_serially() {
        // The inline path keeps serial semantics: no catch, no retry.
        let caught = std::panic::catch_unwind(|| {
            run_sharded(10, 1, |_| -> usize { panic!("inline") });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn planner_prefers_fault_axis_when_fed() {
        assert_eq!(plan_shards(100, 1000, 4), ShardPlan::Faults(4));
        assert_eq!(plan_shards(4, 1000, 4), ShardPlan::Faults(4));
        assert_eq!(plan_shards(100, 0, 4), ShardPlan::Faults(4));
    }

    #[test]
    fn planner_switches_to_pattern_axis_for_few_faults() {
        assert_eq!(plan_shards(1, 1000, 8), ShardPlan::Patterns(8));
        assert_eq!(plan_shards(3, 1000, 8), ShardPlan::Patterns(8));
        // Workers never outnumber pattern units.
        assert_eq!(plan_shards(1, 2, 8), ShardPlan::Patterns(2));
    }

    #[test]
    fn planner_degenerate_axes_fall_back() {
        // No pattern axis to cut: fault axis over what the list can feed.
        assert_eq!(plan_shards(3, 1, 8), ShardPlan::Faults(3));
        assert_eq!(plan_shards(0, 1, 8), ShardPlan::Faults(1));
        assert_eq!(plan_shards(0, 1000, 8), ShardPlan::Patterns(8));
        // Single thread: always the inline serial path.
        assert!(plan_shards(10, 1000, 1).is_serial());
        assert!(plan_shards(1, 1000, 1).is_serial());
        assert!(plan_shards(0, 0, 0).is_serial());
    }
}
