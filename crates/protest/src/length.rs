//! Random test length for a demanded confidence.
//!
//! PROTEST's third stage: "The user wants to know how many random patterns
//! he has to apply in order to detect all faults. He specifies the input
//! signal probabilities and the demanded confidence of the random test,
//! and PROTEST computes the necessary test length."
//!
//! With per-fault detection probabilities `p_i`, the probability that all
//! `m` faults are detected within `N` independent patterns is
//! `Π_i (1 - (1-p_i)^N)`. [`test_length`] finds the smallest `N` reaching
//! the demanded confidence.
//!
//! The joint product is evaluated in **fixed-size blocks** folded in
//! ascending order — the same partial-aggregation discipline the rest of
//! [`crate::parallel`] uses — so [`test_length_par`] can shard the fault
//! axis over worker threads (ISCAS-scale lists evaluate the product a
//! hundred-plus times during the search) while staying bit-identical to
//! the serial estimator at any thread count.

use crate::budget::{RunBudget, StopReason};
use crate::parallel::{plan_shards, run_sharded, Parallelism, ShardPlan};

/// Faults per partial-product block: the fixed summation-tree unit that
/// makes serial and sharded products associate identically.
const PROB_BLOCK: usize = 1024;

/// Why a test-length query could not produce a length. Degenerate
/// inputs (NaN included — every comparison with NaN fails, so NaN can
/// never satisfy a range check) are reported instead of propagating
/// NaN/inf into pattern budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthError {
    /// `probs` was empty: a joint confidence over zero faults is
    /// meaningless.
    EmptyFaultList,
    /// A detection probability (the payload) was outside `[0, 1]` or
    /// NaN.
    BadProbability(f64),
    /// The demanded confidence (the payload) was outside the open
    /// interval `(0, 1)` or NaN.
    BadConfidence(f64),
    /// A [`RunBudget`] stopped the search between evaluations of the
    /// joint product.
    Interrupted(StopReason),
}

impl std::fmt::Display for LengthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LengthError::EmptyFaultList => write!(f, "need at least one fault"),
            LengthError::BadProbability(p) => write!(f, "probability {p} outside [0,1]"),
            LengthError::BadConfidence(c) => {
                write!(f, "confidence must be in (0,1), got {c}")
            }
            LengthError::Interrupted(reason) => {
                write!(f, "test-length search interrupted: {reason}")
            }
        }
    }
}

impl std::error::Error for LengthError {}

/// Probability that at least one of `n` patterns detects a fault with
/// per-pattern detection probability `p`: the complement of the escape
/// probability `(1-p)^n`.
pub fn escape_probability(p: f64, n: u64) -> f64 {
    (1.0 - p).powf(n as f64)
}

/// The smallest `N` such that a fault with detection probability `p` is
/// detected with probability at least `confidence` — the per-fault length
/// `N ≥ ln(1-confidence) / ln(1-p)`.
///
/// Returns `u64::MAX` for `p == 0` (redundant fault, never detected).
///
/// # Panics
///
/// Panics unless `0 < confidence < 1` and `0 <= p <= 1`.
pub fn test_length_per_fault(p: f64, confidence: f64) -> u64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
    if p == 0.0 {
        return u64::MAX;
    }
    if p == 1.0 {
        return 1;
    }
    let n = (1.0 - confidence).ln() / (1.0 - p).ln();
    n.ceil() as u64
}

/// The smallest `N` such that *all* faults (detection probabilities
/// `probs`) are detected with joint probability at least `confidence`,
/// assuming independent detections: `Π_i (1 - (1-p_i)^N) ≥ confidence`.
///
/// Returns `u64::MAX` if any fault has zero detection probability.
///
/// # Panics
///
/// Panics unless `0 < confidence < 1`, all probabilities are in `[0, 1]`,
/// and `probs` is non-empty.
///
/// # Example
///
/// ```
/// use dynmos_protest::test_length;
/// // One easy fault and one needing p=2^-8.
/// let n = test_length(&[0.5, 1.0 / 256.0], 0.999);
/// assert!(n > 1500 && n < 2500);
/// ```
pub fn test_length(probs: &[f64], confidence: f64) -> u64 {
    test_length_par(probs, confidence, Parallelism::default())
}

/// The joint detection confidence `Π_i (1 - (1-p_i)^N)` over one block of
/// faults, folded left-to-right.
fn block_confidence(probs: &[f64], n: u64) -> f64 {
    probs
        .iter()
        .map(|&p| 1.0 - escape_probability(p, n))
        .product()
}

/// [`test_length`] with an explicit thread policy for the joint-product
/// evaluations of the search. The fault axis (in [`PROB_BLOCK`] blocks)
/// is the only axis here, so the planner shards it whenever the list can
/// feed every worker a block; block products merge by an ascending-order
/// fold, making the result bit-identical at any thread count.
///
/// # Panics
///
/// Panics on the degenerate inputs [`try_test_length_par`] reports as
/// errors.
pub fn test_length_par(probs: &[f64], confidence: f64, parallelism: Parallelism) -> u64 {
    try_test_length_par(probs, confidence, parallelism).unwrap_or_else(|e| panic!("{e}"))
}

/// [`test_length`] returning degenerate inputs as [`LengthError`]
/// instead of panicking: NaN or out-of-range probabilities/confidence
/// are reported, never propagated into pattern budgets.
pub fn try_test_length(probs: &[f64], confidence: f64) -> Result<u64, LengthError> {
    try_test_length_par(probs, confidence, Parallelism::default())
}

/// [`test_length_par`] with errors instead of panics.
pub fn try_test_length_par(
    probs: &[f64],
    confidence: f64,
    parallelism: Parallelism,
) -> Result<u64, LengthError> {
    test_length_budgeted(probs, confidence, parallelism, &RunBudget::unlimited())
}

/// [`try_test_length_par`] under a [`RunBudget`]: the budget is checked
/// between evaluations of the joint product (each evaluation scans the
/// whole fault list), after at least one has run. The search keeps no
/// checkpoint — an interrupted search returns
/// [`LengthError::Interrupted`] and discards its bounds; a completed
/// budgeted search equals the unbudgeted result bit-identically.
pub fn test_length_budgeted(
    probs: &[f64],
    confidence: f64,
    parallelism: Parallelism,
    run_budget: &RunBudget,
) -> Result<u64, LengthError> {
    if probs.is_empty() {
        return Err(LengthError::EmptyFaultList);
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(LengthError::BadConfidence(confidence));
    }
    for &p in probs {
        if !(0.0..=1.0).contains(&p) {
            return Err(LengthError::BadProbability(p));
        }
    }
    if probs.contains(&0.0) {
        return Ok(u64::MAX);
    }
    let blocks = probs.len().div_ceil(PROB_BLOCK);
    let workers = match plan_shards(blocks, 1, parallelism.resolve()) {
        // The degenerate pattern axis never engages: with one block the
        // planner falls back to Faults(1), the inline serial fold.
        // Threads are spawned per `achieved` evaluation of the search,
        // so demand several blocks of work per worker before paying the
        // spawn — below that the inline fold wins.
        ShardPlan::Faults(w) | ShardPlan::Patterns(w) if blocks >= w * 4 => w,
        _ => 1,
    };
    let achieved = |n: u64| -> f64 {
        if workers <= 1 {
            let mut total = 1.0f64;
            for chunk in probs.chunks(PROB_BLOCK) {
                total *= block_confidence(chunk, n);
            }
            return total;
        }
        // Per-block partials from the workers, folded in ascending block
        // order — the identical summation tree to the serial loop above.
        run_sharded(blocks, workers, |block_range| {
            block_range
                .map(|b| {
                    let lo = b * PROB_BLOCK;
                    block_confidence(&probs[lo..(lo + PROB_BLOCK).min(probs.len())], n)
                })
                .collect::<Vec<f64>>()
        })
        .into_iter()
        .flatten()
        .fold(1.0f64, |acc, block| acc * block)
    };
    // Budget checks live between `achieved` evaluations (each one
    // scans the whole fault list), after at least one has run —
    // forward progress, like every other budgeted kernel.
    let mut evals = 0u64;
    let mut achieved_checked = |n: u64| -> Result<f64, LengthError> {
        if evals > 0 {
            if let Some(reason) = run_budget.stop_requested() {
                return Err(LengthError::Interrupted(reason));
            }
        }
        evals += 1;
        Ok(achieved(n))
    };
    // Exponential search then binary search on the monotone predicate.
    let mut hi = 1u64;
    while achieved_checked(hi)? < confidence {
        hi = hi.saturating_mul(2);
        if hi == u64::MAX {
            return Ok(u64::MAX);
        }
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if achieved_checked(mid)? >= confidence {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    if achieved_checked(lo.max(1))? >= confidence {
        Ok(lo.max(1))
    } else {
        Ok(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_probability_shrinks_geometrically() {
        let p = 0.25;
        assert_eq!(escape_probability(p, 0), 1.0);
        assert!((escape_probability(p, 1) - 0.75).abs() < 1e-12);
        assert!((escape_probability(p, 2) - 0.5625).abs() < 1e-12);
    }

    #[test]
    fn per_fault_length_closed_form() {
        // p=0.5, c=0.999: N = ln(0.001)/ln(0.5) ≈ 9.97 -> 10.
        assert_eq!(test_length_per_fault(0.5, 0.999), 10);
        assert_eq!(test_length_per_fault(1.0, 0.9), 1);
        assert_eq!(test_length_per_fault(0.0, 0.9), u64::MAX);
    }

    #[test]
    fn single_fault_joint_equals_per_fault() {
        for p in [0.5, 0.1, 0.01] {
            for c in [0.9, 0.99, 0.999] {
                assert_eq!(
                    test_length(&[p], c),
                    test_length_per_fault(p, c),
                    "p={p} c={c}"
                );
            }
        }
    }

    #[test]
    fn joint_length_at_least_per_fault_max() {
        let probs = [0.5, 0.03, 0.2];
        let joint = test_length(&probs, 0.99);
        let worst = probs
            .iter()
            .map(|&p| test_length_per_fault(p, 0.99))
            .max()
            .unwrap();
        assert!(joint >= worst);
        // ... and not absurdly larger (many faults only add ln m).
        assert!(joint < worst * 3);
    }

    #[test]
    fn length_grows_with_confidence() {
        let probs = [0.01, 0.2];
        let n90 = test_length(&probs, 0.90);
        let n999 = test_length(&probs, 0.999);
        assert!(n999 > n90);
    }

    #[test]
    fn length_is_tight() {
        // N-1 must miss the confidence, N must reach it.
        let probs = [0.07, 0.3, 0.004];
        let c = 0.995;
        let n = test_length(&probs, c);
        let achieved = |n: u64| -> f64 {
            probs
                .iter()
                .map(|&p| 1.0 - escape_probability(p, n))
                .product()
        };
        assert!(achieved(n) >= c);
        assert!(achieved(n - 1) < c);
    }

    #[test]
    fn redundant_fault_gives_infinite_length() {
        assert_eq!(test_length(&[0.5, 0.0], 0.9), u64::MAX);
    }

    #[test]
    fn parallel_length_is_bit_identical_to_serial() {
        // Large enough that every tested thread count clears the
        // blocks-per-worker engagement threshold; the blocked product
        // must make thread count invisible.
        let probs: Vec<f64> = (0..40_000)
            .map(|i| 0.001 + 0.9 * ((i * 37 % 101) as f64 / 101.0))
            .collect();
        let serial = test_length_par(&probs, 0.999, Parallelism::Serial);
        for threads in [2usize, 3, 4, 8] {
            assert_eq!(
                test_length_par(&probs, 0.999, Parallelism::Fixed(threads)),
                serial,
                "threads={threads}"
            );
        }
        assert!(serial > 1);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_panics() {
        test_length(&[0.5], 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one fault")]
    fn empty_fault_list_panics() {
        test_length(&[], 0.9);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn nan_probability_panics_in_legacy_api() {
        test_length(&[f64::NAN], 0.9);
    }

    #[test]
    fn degenerate_inputs_are_reported_not_propagated() {
        assert_eq!(try_test_length(&[], 0.9), Err(LengthError::EmptyFaultList));
        for c in [0.0, 1.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let got = try_test_length(&[0.5], c);
            assert!(
                matches!(got, Err(LengthError::BadConfidence(_))),
                "confidence={c} got={got:?}"
            );
        }
        for p in [-0.1, 1.0001, f64::NAN, f64::NEG_INFINITY] {
            let got = try_test_length(&[0.5, p], 0.9);
            assert!(
                matches!(got, Err(LengthError::BadProbability(_))),
                "p={p} got={got:?}"
            );
        }
        // The error text carries the same phrasing the panicking API
        // uses, so should_panic substring tests and log greps agree.
        assert_eq!(
            LengthError::EmptyFaultList.to_string(),
            "need at least one fault"
        );
        assert!(LengthError::BadProbability(2.0)
            .to_string()
            .contains("outside [0,1]"));
        assert!(LengthError::BadConfidence(1.0)
            .to_string()
            .contains("confidence must be in (0,1)"));
    }

    #[test]
    fn valid_inputs_round_trip_through_try_api() {
        let probs = [0.07, 0.3, 0.004];
        assert_eq!(
            try_test_length(&probs, 0.995),
            Ok(test_length(&probs, 0.995))
        );
        assert_eq!(try_test_length(&[0.5, 0.0], 0.9), Ok(u64::MAX));
    }

    #[test]
    fn budgeted_search_completes_and_matches() {
        let probs: Vec<f64> = (0..500).map(|i| 0.01 + 0.001 * (i % 37) as f64).collect();
        let far = RunBudget::deadline_in(std::time::Duration::from_secs(3600));
        assert_eq!(
            test_length_budgeted(&probs, 0.999, Parallelism::Serial, &far),
            Ok(test_length(&probs, 0.999))
        );
    }

    #[test]
    fn cancelled_search_interrupts_after_forward_progress() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(true));
        let cancelled = RunBudget::unlimited().with_cancel(flag);
        // p=0.01 needs hundreds of patterns: the search cannot finish
        // in its one guaranteed evaluation.
        assert_eq!(
            test_length_budgeted(&[0.01], 0.999, Parallelism::Serial, &cancelled),
            Err(LengthError::Interrupted(StopReason::Cancelled))
        );
    }
}
