//! Fault detection probabilities.
//!
//! PROTEST's second stage: "for each fault the probability is estimated,
//! that it is detected by a random pattern." A pattern detects a fault iff
//! some primary output differs between the fault-free and faulty machines.
//!
//! The enumeration core is [`ExactDetector`]: it walks the weighted input
//! space **once per probability vector**, evaluating the good machine on
//! the compiled tape and replaying each fault's fanout cone
//! incrementally, so whole-list detection probabilities cost one
//! enumeration instead of one per fault. The optimizer's coordinate
//! sweeps reuse one detector (and its prepared faults) across hundreds of
//! objective evaluations.

use crate::budget::{RunBudget, StopReason};
use crate::list::FaultEntry;
use crate::parallel::{plan_shards, run_sharded, Parallelism, ShardPlan};
use dynmos_netlist::{Network, NetworkFault, PackedEvaluator, PreparedFault};

/// How a [`DetectionEstimate`] was computed — the engine tier that
/// served the fault (see [`crate::testability`] for the selection
/// rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateMethod {
    /// Exact weighted enumeration of the whole input space.
    Exact,
    /// Monte-Carlo estimation (standalone sampler paths; the tiered
    /// engine itself reports [`EstimateMethod::Cutting`] when sampling
    /// only tightens certified bounds).
    MonteCarlo,
    /// Exact symbolic evaluation on the shared BDD — mathematically
    /// exact, but summed in BDD order rather than enumeration order.
    Bdd,
    /// Cutting-style certified bounds (`bounds` is always `Some`);
    /// `value` is the Monte-Carlo-tightened point inside them, or the
    /// interval midpoint when tightening is disabled.
    Cutting,
}

impl EstimateMethod {
    /// Machine-readable token used in service payloads and status lines.
    pub fn token(self) -> &'static str {
        match self {
            EstimateMethod::Exact => "exact",
            EstimateMethod::MonteCarlo => "monte-carlo",
            EstimateMethod::Bdd => "bdd",
            EstimateMethod::Cutting => "cutting",
        }
    }

    /// Inverse of [`token`](Self::token).
    pub fn from_token(s: &str) -> Result<Self, String> {
        match s {
            "exact" => Ok(EstimateMethod::Exact),
            "monte-carlo" => Ok(EstimateMethod::MonteCarlo),
            "bdd" => Ok(EstimateMethod::Bdd),
            "cutting" => Ok(EstimateMethod::Cutting),
            other => Err(format!("unknown estimate method {other:?}")),
        }
    }
}

/// A detection probability with its provenance. Exact and BDD tiers
/// report a zero standard error; Monte-Carlo reports the binomial
/// standard error of its sample mean; the cutting tier reports certified
/// bounds plus a point estimate inside them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionEstimate {
    /// The detection probability (exact value, sample mean, or a point
    /// inside the certified bounds).
    pub value: f64,
    /// Standard error of `value` (0 for the exact methods).
    pub std_error: f64,
    /// Which engine tier produced `value`.
    pub method: EstimateMethod,
    /// Certified `[low, high]` enclosure of the true probability —
    /// `Some` exactly when `method` is [`EstimateMethod::Cutting`].
    pub bounds: Option<(f64, f64)>,
}

/// The number of enumeration rows for `inputs` primary inputs, or
/// `None` when `2^inputs` does not even fit in a `u64`.
pub(crate) fn row_space(inputs: usize) -> Option<u64> {
    if inputs >= 64 {
        None
    } else {
        Some(1u64 << inputs)
    }
}

/// Exact detection probability of one fault by weighted exhaustive
/// enumeration (inputs independent with probabilities `pi_probs`).
///
/// # Panics
///
/// Panics if the network has more than 24 primary inputs or the arity of
/// `pi_probs` is wrong.
///
/// # Example
///
/// ```
/// use dynmos_netlist::generate::{domino_wide_and, single_cell_network};
/// use dynmos_protest::{exact_detection_probability, network_fault_list};
///
/// let net = single_cell_network(domino_wide_and(4));
/// let list = network_fault_list(&net);
/// // The all-ones pattern is the only test for output s-a-0: p = 2^-4.
/// // Find the stuck-0-output class (constant-false faulty function).
/// let s0z = list.iter()
///     .find(|e| matches!(&e.fault,
///         dynmos_netlist::NetworkFault::GateFunction(_, f) if *f == dynmos_logic::Bexpr::FALSE))
///     .unwrap();
/// let p = exact_detection_probability(&net, &s0z.fault, &[0.5; 4]);
/// assert!((p - 0.0625).abs() < 1e-12);
/// ```
pub fn exact_detection_probability(
    net: &Network,
    fault: &dynmos_netlist::NetworkFault,
    pi_probs: &[f64],
) -> f64 {
    ExactDetector::for_faults(net, std::slice::from_ref(fault)).probabilities(pi_probs)[0]
}

/// Exact detection probabilities for a whole fault list (one value per
/// entry, in order). One weighted enumeration of the input space serves
/// every fault.
///
/// # Panics
///
/// Same conditions as [`exact_detection_probability`].
pub fn detection_probabilities(net: &Network, faults: &[FaultEntry], pi_probs: &[f64]) -> Vec<f64> {
    ExactDetector::new(net, faults).probabilities(pi_probs)
}

/// A reusable exact-enumeration engine: the network's compiled evaluator
/// plus one [`PreparedFault`] per fault, shared across any number of
/// probability vectors.
///
/// # Example
///
/// ```
/// use dynmos_netlist::generate::{domino_wide_and, single_cell_network};
/// use dynmos_protest::{network_fault_list, ExactDetector};
///
/// let net = single_cell_network(domino_wide_and(4));
/// let faults = network_fault_list(&net);
/// let mut det = ExactDetector::new(&net, &faults);
/// let uniform = det.probabilities(&[0.5; 4]);
/// let weighted = det.probabilities(&[0.9; 4]); // same detector, new vector
/// assert_eq!(uniform.len(), weighted.len());
/// ```
#[derive(Debug)]
pub struct ExactDetector<'n> {
    net: &'n Network,
    ev: PackedEvaluator<'n>,
    prepared: Vec<PreparedFault<'n>>,
    parallelism: Parallelism,
    /// Scratch: packed PI words for the current batch.
    pi_words: Vec<u64>,
    /// Scratch: per-lane assignment weight.
    weights: [f64; 64],
}

/// Enumeration becomes worth sharding once the per-worker setup (an
/// evaluator allocation) is dwarfed by the row walk.
const PARALLEL_ROWS_MIN: u64 = 1 << 12;

/// Rows per accumulation block. Every path — serial, fault-sharded,
/// row-sharded — folds weights into per-block partial sums and adds the
/// blocks in ascending order, so the floating-point summation tree is a
/// property of the workload, never of the thread count, and results stay
/// bit-identical on either axis. 4096 rows (64 packed evaluations) per
/// block keeps the partial vector small while giving a pattern-axis
/// worker enough work to pay for its evaluator.
const ROW_BLOCK: u64 = 1 << 12;

/// Blocks per budgeted chunk: [`ExactDetector::try_probabilities`]
/// checks its [`RunBudget`] only between groups of this many row
/// blocks (`16 * 4096 = 65536` rows), so check frequency is a property
/// of the workload, never of the thread count.
const CHUNK_BLOCKS: u64 = 16;

impl<'n> ExactDetector<'n> {
    /// A detector for a fault list, with the default thread policy
    /// ([`Parallelism::Auto`]).
    pub fn new(net: &'n Network, faults: &[FaultEntry]) -> Self {
        Self::for_faults_iter(net, faults.iter().map(|e| &e.fault))
    }

    /// A detector for bare faults (no list metadata).
    pub fn for_faults(net: &'n Network, faults: &[NetworkFault]) -> Self {
        Self::for_faults_iter(net, faults.iter())
    }

    /// Sets the thread policy for subsequent [`Self::probabilities`]
    /// calls. The fault list is sharded over workers; every fault's
    /// weight sum is accumulated in row order by one worker, so results
    /// are bit-identical at any thread count.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    fn for_faults_iter<'f>(
        net: &'n Network,
        faults: impl Iterator<Item = &'f NetworkFault>,
    ) -> Self {
        Self {
            net,
            ev: PackedEvaluator::new(net),
            prepared: faults.map(|f| net.prepare_fault(f)).collect(),
            parallelism: Parallelism::default(),
            pi_words: vec![0; net.primary_inputs().len()],
            weights: [0.0; 64],
        }
    }

    /// Exact detection probability of every fault under independent
    /// per-input probabilities `pi_probs`, by one weighted exhaustive
    /// enumeration of the input space. When the row space is large
    /// enough to pay for worker threads, the enumeration is sharded
    /// along the axis [`plan_shards`] picks: the fault list, or — in the
    /// few-fault regime the optimizer's late objectives live in — the
    /// row-block axis, merged by ascending-order block sums.
    ///
    /// # Panics
    ///
    /// Panics if the network has more than 24 primary inputs or the arity
    /// of `pi_probs` is wrong.
    pub fn probabilities(&mut self, pi_probs: &[f64]) -> Vec<f64> {
        let n = self.net.primary_inputs().len();
        assert!(n <= 24, "exact enumeration over {n} inputs is infeasible");
        assert_eq!(pi_probs.len(), n, "need one probability per primary input");
        self.enumerate_all(pi_probs, 1u64 << n)
    }

    /// [`Self::probabilities`] under a [`RunBudget`]. A row space
    /// larger than [`RunBudget::effective_exact_rows`] is refused up
    /// front with [`StopReason::RowCap`] — no work is done, so callers
    /// can degrade to Monte Carlo (see
    /// [`detection_probability_estimates`]). A deadline, cancellation
    /// flag, or pattern cap turns the enumeration into a chunked walk
    /// checked every [`CHUNK_BLOCKS`] row blocks; block partials are
    /// folded into the running totals in ascending block order, so a
    /// completed budgeted run is bit-identical to [`Self::probabilities`]
    /// at any thread count. Exact enumeration has no resumable
    /// checkpoint — an interrupted walk returns the [`StopReason`] and
    /// discards its partial sums (a prefix of the row space is not an
    /// estimate of anything).
    ///
    /// # Panics
    ///
    /// Panics if the arity of `pi_probs` is wrong.
    pub fn try_probabilities(
        &mut self,
        pi_probs: &[f64],
        run_budget: &RunBudget,
    ) -> Result<Vec<f64>, StopReason> {
        let n = self.net.primary_inputs().len();
        assert_eq!(pi_probs.len(), n, "need one probability per primary input");
        let rows = match row_space(n) {
            Some(rows) if rows <= run_budget.effective_exact_rows() => rows,
            _ => return Err(StopReason::RowCap),
        };
        if run_budget.is_unlimited() {
            return Ok(self.enumerate_all(pi_probs, rows));
        }
        let blocks = rows.div_ceil(ROW_BLOCK);
        let threads = self.parallelism.resolve();
        let mut totals = vec![0.0f64; self.prepared.len()];
        let mut next = 0u64;
        while next < blocks {
            let end = (next + CHUNK_BLOCKS).min(blocks);
            let chunk_len = (end - next) as usize;
            let shard = threads > 1 && rows >= PARALLEL_ROWS_MIN && chunk_len > 1;
            let partials: Vec<Vec<f64>> = if shard {
                let net = self.net;
                let prepared = &self.prepared;
                let base = next;
                run_sharded(chunk_len, threads.min(chunk_len), |block_range| {
                    let mut ev = PackedEvaluator::new(net);
                    let mut pi_words = vec![0u64; n];
                    let mut weights = [0.0f64; 64];
                    let mut out = Vec::with_capacity(block_range.len());
                    for rel in block_range {
                        let b = base + rel as u64;
                        let mut block = vec![0.0f64; prepared.len()];
                        enumerate_block_into(
                            prepared,
                            pi_probs,
                            b * ROW_BLOCK..((b + 1) * ROW_BLOCK).min(rows),
                            &mut ev,
                            &mut pi_words,
                            &mut weights,
                            &mut block,
                        );
                        out.push(block);
                    }
                    out
                })
                .into_iter()
                .flatten()
                .collect()
            } else {
                let mut out = Vec::with_capacity(chunk_len);
                for b in next..end {
                    let mut block = vec![0.0f64; self.prepared.len()];
                    enumerate_block_into(
                        &self.prepared,
                        pi_probs,
                        b * ROW_BLOCK..((b + 1) * ROW_BLOCK).min(rows),
                        &mut self.ev,
                        &mut self.pi_words,
                        &mut self.weights,
                        &mut block,
                    );
                    out.push(block);
                }
                out
            };
            // Ascending-order fold into the running totals: the same
            // summation tree as `fold_blocks`, so neither chunking nor
            // sharding is visible in the result.
            for block in partials {
                for (t, p) in totals.iter_mut().zip(&block) {
                    *t += p; // dynlint: ordered -- blocks fold in ascending block index; within a block, ascending fault index
                }
            }
            next = end;
            if next < blocks {
                if let Some(reason) = run_budget.stop_requested() {
                    return Err(reason);
                }
            }
        }
        for t in &mut totals {
            *t = t.clamp(0.0, 1.0);
        }
        Ok(totals)
    }

    /// The unbudgeted whole-space enumeration behind
    /// [`Self::probabilities`]: sharded along the planner's axis, with
    /// every merge reproducing the ascending-block-order fold.
    fn enumerate_all(&mut self, pi_probs: &[f64], rows: u64) -> Vec<f64> {
        let n = self.net.primary_inputs().len();
        let blocks = rows.div_ceil(ROW_BLOCK);
        let plan = plan_shards(self.prepared.len(), blocks, self.parallelism.resolve());
        let mut totals = if plan.is_serial() || rows < PARALLEL_ROWS_MIN {
            fold_blocks(
                &self.prepared,
                pi_probs,
                rows,
                &mut self.ev,
                &mut self.pi_words,
                &mut self.weights,
            )
        } else {
            let net = self.net;
            let prepared = &self.prepared;
            match plan {
                ShardPlan::Faults(workers) => run_sharded(prepared.len(), workers, |range| {
                    let mut ev = PackedEvaluator::new(net);
                    let mut pi_words = vec![0u64; n];
                    let mut weights = [0.0f64; 64];
                    fold_blocks(
                        &prepared[range],
                        pi_probs,
                        rows,
                        &mut ev,
                        &mut pi_words,
                        &mut weights,
                    )
                })
                .into_iter()
                .flatten()
                .collect(),
                ShardPlan::Patterns(workers) => {
                    // Each worker returns its blocks' partials untouched;
                    // the merge folds them in ascending block order —
                    // the same summation tree every other path uses.
                    let shards = run_sharded(blocks as usize, workers, |block_range| {
                        let mut ev = PackedEvaluator::new(net);
                        let mut pi_words = vec![0u64; n];
                        let mut weights = [0.0f64; 64];
                        let mut partials = Vec::with_capacity(block_range.len());
                        for b in block_range {
                            let b = b as u64;
                            let mut block = vec![0.0f64; prepared.len()];
                            enumerate_block_into(
                                prepared,
                                pi_probs,
                                b * ROW_BLOCK..((b + 1) * ROW_BLOCK).min(rows),
                                &mut ev,
                                &mut pi_words,
                                &mut weights,
                                &mut block,
                            );
                            partials.push(block);
                        }
                        partials
                    });
                    let mut totals = vec![0.0f64; prepared.len()];
                    for block in shards.into_iter().flatten() {
                        for (t, p) in totals.iter_mut().zip(&block) {
                            *t += p; // dynlint: ordered -- shard results return in shard-index order (run_sharded), blocks within a shard in ascending order
                        }
                    }
                    totals
                }
            }
        };
        // Summing 2^n weights accumulates ulp-scale error; clamp to [0,1]
        // so downstream validation (test_length) never sees 1.0 + epsilon.
        for t in &mut totals {
            *t = t.clamp(0.0, 1.0);
        }
        totals
    }
}

/// Detection probabilities with graceful exact→Monte-Carlo
/// degradation: the exact enumeration runs when the row space fits
/// [`RunBudget::effective_exact_rows`]; otherwise the walk is refused
/// up front and the Monte-Carlo estimator runs instead, with a sample
/// budget tied to the refused enumeration size (the row cap clamped to
/// `[2^12, 2^20]` samples). Each returned [`DetectionEstimate`] labels
/// which path produced it, so callers can report standard errors for
/// sampled values. A deadline/cancellation interrupt in either path
/// surfaces as `Err(StopReason)`.
///
/// # Panics
///
/// Panics if the arity of `pi_probs` is wrong.
pub fn detection_probability_estimates(
    net: &Network,
    faults: &[FaultEntry],
    pi_probs: &[f64],
    seed: u64,
    parallelism: Parallelism,
    run_budget: &RunBudget,
) -> Result<Vec<DetectionEstimate>, StopReason> {
    let config = crate::testability::TestabilityConfig::from_env().with_seed(seed);
    detection_probability_estimates_with(net, faults, pi_probs, parallelism, run_budget, &config)
}

/// [`detection_probability_estimates`] with an explicit engine
/// configuration — the entry point for callers (and tests) that must pin
/// a tier regardless of `DYNMOS_TESTABILITY`.
pub fn detection_probability_estimates_with(
    net: &Network,
    faults: &[FaultEntry],
    pi_probs: &[f64],
    parallelism: Parallelism,
    run_budget: &RunBudget,
    config: &crate::testability::TestabilityConfig,
) -> Result<Vec<DetectionEstimate>, StopReason> {
    let n = net.primary_inputs().len();
    assert_eq!(pi_probs.len(), n, "need one probability per primary input");
    if faults.is_empty() {
        return Ok(Vec::new());
    }
    crate::testability::DetectionEngine::new(net, faults, config.clone())
        .with_parallelism(parallelism)
        .estimates(pi_probs, run_budget)
}

/// The whole-row-space fold the serial path and every fault-axis worker
/// share: per-block partials ([`enumerate_block_into`]) added in
/// ascending block order. Keeping this in one place is what pins the
/// floating-point summation tree — the determinism contract rests on
/// the pattern-axis merge reproducing exactly this fold.
fn fold_blocks(
    prepared: &[PreparedFault<'_>],
    pi_probs: &[f64],
    rows: u64,
    ev: &mut PackedEvaluator<'_>,
    pi_words: &mut [u64],
    weights: &mut [f64; 64],
) -> Vec<f64> {
    let blocks = rows.div_ceil(ROW_BLOCK);
    let mut totals = vec![0.0f64; prepared.len()];
    let mut block = vec![0.0f64; prepared.len()];
    for b in 0..blocks {
        enumerate_block_into(
            prepared,
            pi_probs,
            b * ROW_BLOCK..((b + 1) * ROW_BLOCK).min(rows),
            ev,
            pi_words,
            weights,
            &mut block,
        );
        for (t, p) in totals.iter_mut().zip(&block) {
            *t += p; // dynlint: ordered -- serial reference fold: ascending block index, then ascending fault index
        }
    }
    totals
}

/// The weighted row walk of one block, `out[fi]` reset and accumulated
/// in ascending row order within the block. Every fault's block partial
/// is a pure function of the block's row range, so the result does not
/// depend on which worker (or axis) computed it.
fn enumerate_block_into(
    prepared: &[PreparedFault<'_>],
    pi_probs: &[f64],
    row_range: std::ops::Range<u64>,
    ev: &mut PackedEvaluator<'_>,
    pi_words: &mut [u64],
    weights: &mut [f64; 64],
    out: &mut [f64],
) {
    out.fill(0.0);
    let mut row = row_range.start;
    while row < row_range.end {
        let lanes = (row_range.end - row).min(64);
        pi_words.fill(0);
        for lane in 0..lanes {
            let assignment = row + lane;
            for (i, w) in pi_words.iter_mut().enumerate() {
                if (assignment >> i) & 1 == 1 {
                    *w |= 1 << lane;
                }
            }
            let mut weight = 1.0;
            for (i, &p) in pi_probs.iter().enumerate() {
                weight *= if (assignment >> i) & 1 == 1 {
                    p
                } else {
                    1.0 - p
                };
            }
            weights[lane as usize] = weight;
        }
        ev.eval(pi_words);
        for (fi, prepared) in prepared.iter().enumerate() {
            let mut differ = ev.fault_diff64(prepared);
            if lanes < 64 {
                differ &= (1u64 << lanes) - 1;
            }
            while differ != 0 {
                let lane = differ.trailing_zeros() as usize;
                out[fi] += weights[lane]; // dynlint: ordered -- lanes drain in ascending bit position within one pattern word
                differ &= differ - 1;
            }
        }
        row += lanes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::network_fault_list;
    use dynmos_logic::Bexpr;
    use dynmos_netlist::generate::{and_or_tree, domino_wide_and, fig9_cell, single_cell_network};
    use dynmos_netlist::{NetId, NetworkFault};

    /// Index of the constant-0 gate-function class (the s0-z fault).
    fn s0z_index(list: &[crate::list::FaultEntry]) -> usize {
        list.iter()
            .position(
                |e| matches!(&e.fault, NetworkFault::GateFunction(_, f) if *f == Bexpr::FALSE),
            )
            .expect("s0-z class exists")
    }

    #[test]
    fn wide_and_hard_fault_probability() {
        for n in [4usize, 6, 8] {
            let net = single_cell_network(domino_wide_and(n));
            let list = network_fault_list(&net);
            let s0z = &list[s0z_index(&list)];
            let p = exact_detection_probability(&net, &s0z.fault, &vec![0.5; n]);
            assert!((p - 0.5f64.powi(n as i32)).abs() < 1e-12, "n={n} p={p}");
        }
    }

    #[test]
    fn weighting_raises_hard_fault_probability() {
        let n = 8;
        let net = single_cell_network(domino_wide_and(n));
        let list = network_fault_list(&net);
        let s0z = &list[s0z_index(&list)];
        let uniform = exact_detection_probability(&net, &s0z.fault, &vec![0.5; n]);
        let weighted = exact_detection_probability(&net, &s0z.fault, &vec![0.9; n]);
        // 0.9^8 ≈ 0.43 vs 2^-8 ≈ 0.0039: two orders of magnitude.
        assert!(weighted / uniform > 100.0);
    }

    #[test]
    fn undetectable_fault_has_probability_zero() {
        // A gate-function fault equal to the good function detects nothing.
        let net = and_or_tree(2);
        let good = net.cell_of(dynmos_netlist::GateRef(0)).logic_function();
        let fault = NetworkFault::GateFunction(dynmos_netlist::GateRef(0), good);
        let p = exact_detection_probability(&net, &fault, &[0.5; 4]);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn po_stuck_detection_is_one_sided() {
        // Output of the tree stuck at 1: detected whenever good output is 0.
        let net = and_or_tree(2);
        let po = net.primary_outputs()[0];
        let fault = NetworkFault::NetStuck(po, true);
        let p = exact_detection_probability(&net, &fault, &[0.5; 4]);
        // good P(out=1) = 0.4375 -> detect when 0: 0.5625
        assert!((p - 0.5625).abs() < 1e-12);
    }

    #[test]
    fn all_fig9_classes_detectable_under_uniform() {
        let net = single_cell_network(fig9_cell());
        let list = network_fault_list(&net);
        let probs = detection_probabilities(&net, &list, &[0.5; 5]);
        for (e, p) in list.iter().zip(&probs) {
            assert!(*p > 0.0, "{} undetectable", e.label);
            assert!(*p <= 1.0);
        }
    }

    #[test]
    fn detection_probability_respects_input_weights() {
        // PI s-a-1 on input x0 of the tree: detection needs x0=0 and the
        // difference to propagate.
        let net = and_or_tree(2);
        let x0: NetId = net.primary_inputs()[0];
        let fault = NetworkFault::NetStuck(x0, true);
        let p_low = exact_detection_probability(&net, &fault, &[0.9, 0.5, 0.5, 0.5]);
        let p_high = exact_detection_probability(&net, &fault, &[0.1, 0.5, 0.5, 0.5]);
        // Setting x0=0 more often makes the s-a-1 easier to see.
        assert!(p_high > p_low);
    }

    #[test]
    fn thread_count_does_not_change_probabilities() {
        // 13 inputs -> 8192 rows, above the parallel threshold.
        let net = single_cell_network(domino_wide_and(13));
        let list = network_fault_list(&net);
        let probs: Vec<f64> = (0..13).map(|i| 0.25 + 0.05 * (i % 10) as f64).collect();
        let mut det = ExactDetector::new(&net, &list);
        det.set_parallelism(Parallelism::Serial);
        let serial = det.probabilities(&probs);
        for threads in [2usize, 4, 8] {
            det.set_parallelism(Parallelism::Fixed(threads));
            assert_eq!(det.probabilities(&probs), serial, "threads={threads}");
        }
    }

    #[test]
    fn few_fault_row_block_axis_matches_serial() {
        // 2 faults < threads on a 2^14-row space: the planner shards the
        // row-block axis; ascending-order block sums keep every f64 total
        // bit-identical to the serial fold.
        let net = single_cell_network(domino_wide_and(14));
        let list: Vec<_> = network_fault_list(&net).into_iter().take(2).collect();
        let probs: Vec<f64> = (0..14).map(|i| 0.3 + 0.04 * (i % 9) as f64).collect();
        let mut det = ExactDetector::new(&net, &list);
        det.set_parallelism(Parallelism::Serial);
        let serial = det.probabilities(&probs);
        for threads in [2usize, 4, 8] {
            det.set_parallelism(Parallelism::Fixed(threads));
            assert_eq!(det.probabilities(&probs), serial, "threads={threads}");
        }
    }

    #[test]
    fn single_fault_enumeration_shards_rows() {
        // The degenerate one-fault list used to force serial; the pattern
        // axis now parallelizes it and must stay exact.
        let net = single_cell_network(domino_wide_and(13));
        let list = network_fault_list(&net);
        let s0z = vec![list[s0z_index(&list)].clone()];
        let mut det = ExactDetector::new(&net, &s0z);
        det.set_parallelism(Parallelism::Fixed(8));
        let p = det.probabilities(&[0.5; 13]);
        assert!((p[0] - 0.5f64.powi(13)).abs() < 1e-15, "p={}", p[0]);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn too_many_inputs_panics() {
        let net = and_or_tree(5); // 32 inputs
        let list = network_fault_list(&net);
        exact_detection_probability(&net, &list[0].fault, &vec![0.5; 32]);
    }

    #[test]
    fn budgeted_enumeration_matches_unbudgeted() {
        // A live deadline forces the chunked walk; a completed budgeted
        // run must be bit-identical to the single-pass enumeration at
        // any thread count.
        let net = single_cell_network(domino_wide_and(13));
        let list = network_fault_list(&net);
        let probs: Vec<f64> = (0..13).map(|i| 0.25 + 0.05 * (i % 10) as f64).collect();
        let mut det = ExactDetector::new(&net, &list);
        det.set_parallelism(Parallelism::Serial);
        let reference = det.probabilities(&probs);
        let far = RunBudget::deadline_in(std::time::Duration::from_secs(3600));
        for threads in [1usize, 2, 4] {
            det.set_parallelism(Parallelism::Fixed(threads));
            let got = det.try_probabilities(&probs, &far).expect("completes");
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn over_cap_refuses_up_front() {
        let net = single_cell_network(domino_wide_and(13)); // 8192 rows
        let list = network_fault_list(&net);
        let mut det = ExactDetector::new(&net, &list);
        let tight = RunBudget::unlimited().with_max_exact_rows(1 << 10);
        assert_eq!(
            det.try_probabilities(&[0.5; 13], &tight),
            Err(StopReason::RowCap)
        );
    }

    #[test]
    fn cancelled_enumeration_reports_interrupt() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        // A 19-input adder: 2^19 rows = 128 blocks = 8 chunks. The
        // pre-raised flag is honored at the first chunk boundary,
        // after forward progress.
        let net = dynmos_netlist::generate::ripple_adder(9);
        let n = net.primary_inputs().len();
        assert!(n > 16, "need a multi-chunk row space, got {n} inputs");
        let list: Vec<_> = network_fault_list(&net).into_iter().take(2).collect();
        let flag = Arc::new(AtomicBool::new(true));
        let mut det = ExactDetector::new(&net, &list);
        let cancelled = RunBudget::unlimited().with_cancel(flag);
        assert_eq!(
            det.try_probabilities(&vec![0.5; n], &cancelled),
            Err(StopReason::Cancelled)
        );
    }

    #[test]
    fn estimates_are_exact_within_cap() {
        let net = single_cell_network(domino_wide_and(8));
        let list = network_fault_list(&net);
        let probs = vec![0.5; 8];
        let exact = detection_probabilities(&net, &list, &probs);
        // Pinned Auto config: the test asserts the exact tier even when
        // the suite runs under a DYNMOS_TESTABILITY override.
        let est = detection_probability_estimates_with(
            &net,
            &list,
            &probs,
            Parallelism::Serial,
            &RunBudget::unlimited(),
            &crate::testability::TestabilityConfig::new(crate::testability::TierMode::Auto),
        )
        .expect("completes");
        assert_eq!(est.len(), exact.len());
        for (e, x) in est.iter().zip(&exact) {
            assert_eq!(e.method, EstimateMethod::Exact);
            assert_eq!(e.std_error, 0.0);
            assert_eq!(e.value, *x);
        }
    }

    #[test]
    fn estimates_go_symbolic_over_cap() {
        // 32 inputs: 2^32 rows exceed any cap — the historic path
        // panicked ("infeasible"), then degraded to Monte Carlo; the
        // tiered engine now serves these faults exactly from the BDD
        // tier (the tree's BDD is linear in its width).
        let net = and_or_tree(5);
        let list: Vec<_> = network_fault_list(&net).into_iter().take(4).collect();
        let probs = vec![0.5; 32];
        let est = detection_probability_estimates_with(
            &net,
            &list,
            &probs,
            Parallelism::Serial,
            &RunBudget::unlimited().with_max_exact_rows(1 << 12),
            &crate::testability::TestabilityConfig::new(crate::testability::TierMode::Auto),
        )
        .expect("completes");
        assert_eq!(est.len(), list.len());
        for (e, entry) in est.iter().zip(&list) {
            assert_eq!(e.method, EstimateMethod::Bdd, "{}", entry.label);
            assert_eq!(e.std_error, 0.0);
            let reference = crate::symbolic::bdd_detection_probability(&net, &entry.fault, &probs);
            assert!(
                (e.value - reference).abs() < 1e-12,
                "{}: {} vs {reference}",
                entry.label,
                e.value
            );
        }
    }

    #[test]
    fn method_tokens_round_trip() {
        for m in [
            EstimateMethod::Exact,
            EstimateMethod::MonteCarlo,
            EstimateMethod::Bdd,
            EstimateMethod::Cutting,
        ] {
            assert_eq!(EstimateMethod::from_token(m.token()), Ok(m));
        }
        assert!(EstimateMethod::from_token("fast").is_err());
    }
}
