//! Execution budgets for the long-running PROTEST kernels.
//!
//! Every kernel in this crate — fault simulation, Monte Carlo
//! estimation, exact enumeration, test-length search, probability
//! optimization, PODEM set generation — walks a work grid that can be
//! arbitrarily large. A [`RunBudget`] bounds such a walk with any
//! combination of a wall-clock deadline, a cooperative cancellation
//! flag, a per-call pattern cap, and an exact-enumeration row cap, and
//! the kernels check it at **batch granularity** (between fixed-size
//! work chunks, never inside one), so:
//!
//! - an interrupted run stops at a chunk boundary and reports
//!   [`RunStatus::Interrupted`] with the [`StopReason`], usually next
//!   to a resumable checkpoint;
//! - a resumed run continues from that boundary and — because every
//!   merge rule in [`crate::parallel`] is chunk-invisible — produces
//!   results **bit-identical** to an uninterrupted serial run;
//! - exact enumeration whose row space exceeds
//!   [`RunBudget::effective_exact_rows`] refuses up front
//!   ([`StopReason::RowCap`]) so callers can degrade to Monte Carlo
//!   instead of hanging.
//!
//! Kernels guarantee **forward progress**: at least one chunk of work
//! is done per call before a deadline or cancellation is honored, so a
//! resume loop under an always-expired budget still terminates.
//!
//! The `DYNMOS_BUDGET_MS` environment variable (read by the
//! budget-less entry points like [`crate::FaultSimulator::run_random`])
//! forces an interrupt/resume loop with that per-leg deadline — the CI
//! knob that exercises every checkpoint path while keeping results
//! bit-identical.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default exact-enumeration row cap: `2^24` rows, the historical
/// 24-input feasibility limit of [`crate::ExactDetector`].
pub const DEFAULT_EXACT_ROWS: u64 = 1 << 24;

/// Why a kernel stopped before finishing its work grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cancellation flag was raised.
    Cancelled,
    /// The per-call pattern cap was reached.
    PatternCap,
    /// The exact-enumeration row space exceeds the row cap (refused up
    /// front — no work was done).
    RowCap,
    /// A sharded worker panicked twice (threaded attempt and serial
    /// retry): the run stopped at the last merged chunk boundary with a
    /// valid checkpoint, and the [`crate::ShardError`] travels next to
    /// this reason so a supervisor can retry from the checkpoint.
    WorkerFailed,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Deadline => write!(f, "deadline expired"),
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::PatternCap => write!(f, "pattern cap reached"),
            StopReason::RowCap => write!(f, "row space exceeds exact-enumeration cap"),
            StopReason::WorkerFailed => write!(f, "worker failed after retry"),
        }
    }
}

/// Whether a budgeted run finished its work or stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// All work completed; the result equals the unbudgeted run's.
    Completed,
    /// The run stopped at a chunk boundary for this reason; partial
    /// results (and, where applicable, a checkpoint) are valid.
    Interrupted(StopReason),
}

impl RunStatus {
    /// `true` when the run finished all its work.
    pub fn is_complete(self) -> bool {
        matches!(self, RunStatus::Completed)
    }
}

/// A bound on one kernel call: any combination of deadline, pattern
/// cap, exact-row cap and cancellation flag. [`RunBudget::default`]
/// (== [`RunBudget::unlimited`]) bounds nothing except the exact-row
/// cap, which always defaults to [`DEFAULT_EXACT_ROWS`].
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Stop (at the next chunk boundary) once this instant passes.
    pub deadline: Option<Instant>,
    /// Stop after at most this many patterns/samples in one call —
    /// kernels without a pattern axis ignore it.
    pub max_patterns: Option<u64>,
    /// Refuse exact enumeration over more rows than this
    /// (`None` = [`DEFAULT_EXACT_ROWS`]).
    pub max_exact_rows: Option<u64>,
    /// Cooperative cancellation: raise the flag from any thread and
    /// the kernel stops at the next chunk boundary.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl RunBudget {
    /// No deadline, no caps beyond the default exact-row cap.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget whose deadline is `dur` from now.
    pub fn deadline_in(dur: Duration) -> Self {
        Self {
            deadline: Some(Instant::now() + dur),
            ..Self::default()
        }
    }

    /// Replaces the exact-enumeration row cap.
    pub fn with_max_exact_rows(mut self, rows: u64) -> Self {
        self.max_exact_rows = Some(rows);
        self
    }

    /// Replaces the per-call pattern cap.
    pub fn with_max_patterns(mut self, patterns: u64) -> Self {
        self.max_patterns = Some(patterns);
        self
    }

    /// Attaches a cancellation flag.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// `true` when no deadline, pattern cap, or cancellation flag is
    /// set — kernels then skip chunking entirely and run their
    /// single-pass fast path (the row cap needs no chunking: it is
    /// checked once, up front).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_patterns.is_none() && self.cancel.is_none()
    }

    /// The exact-enumeration row cap in force.
    pub fn effective_exact_rows(&self) -> u64 {
        self.max_exact_rows.unwrap_or(DEFAULT_EXACT_ROWS)
    }

    /// Checks the cancellation flag and the deadline (in that order:
    /// an explicit cancel beats a timeout in the report). The pattern
    /// cap is positional, so kernels account for it themselves.
    pub fn stop_requested(&self) -> Option<StopReason> {
        if let Some(c) = &self.cancel {
            if c.load(Ordering::Relaxed) {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(StopReason::Deadline);
            }
        }
        None
    }
}

/// Interprets a raw `DYNMOS_BUDGET_MS` value. Unset, empty, or
/// whitespace-only means "no budget" (`None`); `0` is honored as an
/// immediately-expired deadline (forward progress still guarantees one
/// chunk per call, so resume loops terminate).
///
/// # Panics
///
/// Panics on any other unparsable value: a typo in a CI budget must
/// fail loudly, not silently run unbudgeted.
pub(crate) fn parse_budget_ms_override(raw: Option<&str>) -> Option<u64> {
    let trimmed = raw?.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<u64>() {
        Ok(ms) => Some(ms),
        Err(_) => panic!(
            "DYNMOS_BUDGET_MS must be a non-negative integer number of milliseconds \
             (unset or empty for no budget), got {trimmed:?}"
        ),
    }
}

/// The `DYNMOS_BUDGET_MS` override, if set: the per-leg deadline (in
/// milliseconds) the budget-less kernel entry points apply in an
/// interrupt/resume loop.
///
/// # Panics
///
/// Panics when the variable is set but not a non-negative integer.
pub fn env_budget_ms() -> Option<u64> {
    parse_budget_ms_override(crate::env_contract::raw("DYNMOS_BUDGET_MS").as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let b = RunBudget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.stop_requested(), None);
        assert_eq!(b.effective_exact_rows(), DEFAULT_EXACT_ROWS);
    }

    #[test]
    fn expired_deadline_stops() {
        let b = RunBudget::deadline_in(Duration::ZERO);
        assert!(!b.is_unlimited());
        assert_eq!(b.stop_requested(), Some(StopReason::Deadline));
    }

    #[test]
    fn cancel_flag_stops_and_beats_deadline() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = RunBudget::deadline_in(Duration::ZERO).with_cancel(flag.clone());
        // Deadline already expired, but cancel is reported first once
        // raised.
        assert_eq!(b.stop_requested(), Some(StopReason::Deadline));
        flag.store(true, Ordering::Relaxed);
        assert_eq!(b.stop_requested(), Some(StopReason::Cancelled));
    }

    #[test]
    fn row_cap_override_applies() {
        let b = RunBudget::unlimited().with_max_exact_rows(1 << 10);
        assert_eq!(b.effective_exact_rows(), 1 << 10);
        // The row cap alone does not force the chunked path.
        assert!(b.is_unlimited());
    }

    #[test]
    fn pattern_cap_marks_budget_limited() {
        assert!(!RunBudget::unlimited().with_max_patterns(100).is_unlimited());
    }

    #[test]
    fn status_completeness() {
        assert!(RunStatus::Completed.is_complete());
        assert!(!RunStatus::Interrupted(StopReason::Deadline).is_complete());
    }

    // Pure-function tests: mutating the process-global DYNMOS_BUDGET_MS
    // here would race concurrently running budgeted tests.
    #[test]
    fn budget_override_parses_values() {
        assert_eq!(parse_budget_ms_override(None), None);
        assert_eq!(parse_budget_ms_override(Some("")), None);
        assert_eq!(parse_budget_ms_override(Some("  ")), None);
        assert_eq!(parse_budget_ms_override(Some("5")), Some(5));
        assert_eq!(parse_budget_ms_override(Some(" 250 ")), Some(250));
        assert_eq!(parse_budget_ms_override(Some("0")), Some(0));
    }

    #[test]
    #[should_panic(expected = "DYNMOS_BUDGET_MS must be a non-negative integer")]
    fn budget_override_garbage_panics() {
        parse_budget_ms_override(Some("fast"));
    }

    #[test]
    fn stop_reasons_display() {
        assert_eq!(StopReason::Deadline.to_string(), "deadline expired");
        assert_eq!(StopReason::Cancelled.to_string(), "cancelled");
        assert_eq!(StopReason::PatternCap.to_string(), "pattern cap reached");
        assert!(StopReason::RowCap.to_string().contains("cap"));
        assert_eq!(
            StopReason::WorkerFailed.to_string(),
            "worker failed after retry"
        );
    }
}
