//! Weighted random pattern generation.
//!
//! "Random patterns with distributions proposed by PROTEST are created."
//! [`PatternSource`] produces packed 64-lane pattern words, one per primary
//! input, where input `i` is 1 with its configured probability — the
//! driver for the pattern-parallel fault simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded source of weighted random pattern batches.
///
/// # Example
///
/// ```
/// use dynmos_protest::PatternSource;
/// let mut src = PatternSource::new(42, vec![0.5, 0.875]);
/// let batch = src.next_batch();
/// assert_eq!(batch.len(), 2);
/// // Lane k of batch[i] is pattern k's value for input i.
/// ```
#[derive(Debug, Clone)]
pub struct PatternSource {
    rng: StdRng,
    probs: Vec<f64>,
}

impl PatternSource {
    /// Creates a source for the given per-input probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or `probs` is empty.
    pub fn new(seed: u64, probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "need at least one input");
        for &p in &probs {
            assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
            probs,
        }
    }

    /// A uniform (p = 0.5 everywhere) source.
    pub fn uniform(seed: u64, inputs: usize) -> Self {
        Self::new(seed, vec![0.5; inputs])
    }

    /// Number of inputs per pattern.
    pub fn input_count(&self) -> usize {
        self.probs.len()
    }

    /// The configured probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Generates the next 64 patterns, packed: element `i` of the result
    /// holds input `i`'s values across the 64 lanes.
    pub fn next_batch(&mut self) -> Vec<u64> {
        self.next_batch_wide(1)
    }

    /// Generates the next `width × 64` patterns in the wide evaluator
    /// layout ([`dynmos_netlist::PackedEvaluator::with_width`]): `width`
    /// consecutive words per input, inputs in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn next_batch_wide(&mut self, width: usize) -> Vec<u64> {
        assert!(width > 0, "need at least one lane word");
        let mut out = Vec::with_capacity(self.probs.len() * width);
        for &p in &self.probs {
            for _ in 0..width {
                out.push(weighted_word(&mut self.rng, p));
            }
        }
        out
    }

    /// Generates one scalar pattern as a `Vec<bool>`.
    pub fn next_pattern(&mut self) -> Vec<bool> {
        self.probs.iter().map(|&p| self.rng.gen_bool(p)).collect()
    }
}

/// One packed word of 64 weighted coin flips.
fn weighted_word(rng: &mut StdRng, p: f64) -> u64 {
    if (p - 0.5).abs() < 1e-12 {
        // Fast path: one RNG word per input.
        rng.gen::<u64>()
    } else {
        let mut w = 0u64;
        for lane in 0..64 {
            if rng.gen_bool(p) {
                w |= 1 << lane;
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = PatternSource::new(7, vec![0.5, 0.25, 0.875]);
        let mut b = PatternSource::new(7, vec![0.5, 0.25, 0.875]);
        for _ in 0..10 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = PatternSource::uniform(1, 4);
        let mut b = PatternSource::uniform(2, 4);
        let batches_equal = (0..4).all(|_| a.next_batch() == b.next_batch());
        assert!(!batches_equal);
    }

    #[test]
    fn empirical_frequency_tracks_probability() {
        let probs = vec![0.125, 0.5, 0.9];
        let mut src = PatternSource::new(99, probs.clone());
        let mut ones = [0u64; 3];
        let batches = 400; // 25,600 samples per input
        for _ in 0..batches {
            for (i, w) in src.next_batch().iter().enumerate() {
                ones[i] += w.count_ones() as u64;
            }
        }
        let total = (batches * 64) as f64;
        for (i, &p) in probs.iter().enumerate() {
            let freq = ones[i] as f64 / total;
            assert!(
                (freq - p).abs() < 0.02,
                "input {i}: frequency {freq} vs probability {p}"
            );
        }
    }

    #[test]
    fn extreme_probabilities() {
        let mut src = PatternSource::new(5, vec![0.0, 1.0]);
        let batch = src.next_batch();
        assert_eq!(batch[0], 0);
        assert_eq!(batch[1], u64::MAX);
        let pat = src.next_pattern();
        assert_eq!(pat, vec![false, true]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_probability_panics() {
        PatternSource::new(0, vec![1.2]);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_probs_panics() {
        PatternSource::new(0, vec![]);
    }
}
