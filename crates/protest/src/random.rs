//! Weighted random pattern generation.
//!
//! "Random patterns with distributions proposed by PROTEST are created."
//! [`PatternSource`] produces packed 64-lane pattern words, one per primary
//! input, where input `i` is 1 with its configured probability — the
//! driver for the pattern-parallel fault simulator.
//!
//! # Counter-based stream
//!
//! The source is *splittable*: batch `b` of the stream is a pure function
//! of `(seed, b)` ([`PatternSource::batch_at`]), so any number of threads
//! can regenerate any slice of the stream independently and the parallel
//! fault simulator ([`crate::parallel`]) stays bit-identical to the
//! serial one at every thread count. `next_batch` simply advances a
//! cursor over the same stream.
//!
//! # Bit-sliced weighting
//!
//! Each probability is lowered once, at construction, to a fixed-point
//! [`PackedWeight`]; a weighted 64-lane word then costs
//! [`PackedWeight::depth`] uniform RNG words (the AND/OR threshold
//! cascade — exact for dyadic probabilities `m/2^k`, threshold comparison
//! at 64-bit resolution otherwise) instead of 64 per-bit Bernoulli draws.
//! Scalar draws ([`PatternSource::next_pattern`]) route through the same
//! lowered thresholds, so scalar and packed streams realize identical
//! probabilities.

use dynmos_logic::PackedWeight;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::ops::Range;

/// SplitMix64 finalizer: decorrelates batch indices before seeding.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain separator so the scalar stream never aliases a batch stream.
const SCALAR_STREAM: u64 = 0x5CA1_AB1E_0000_0001;

/// A seeded source of weighted random pattern batches.
///
/// # Example
///
/// ```
/// use dynmos_protest::PatternSource;
/// let mut src = PatternSource::new(42, vec![0.5, 0.875]);
/// let batch = src.next_batch();
/// assert_eq!(batch.len(), 2);
/// // Lane k of batch[i] is pattern k's value for input i.
/// // The stream is position-addressable: batch 0 is reproducible.
/// assert_eq!(batch, src.batch_at(0));
/// ```
#[derive(Debug, Clone)]
pub struct PatternSource {
    seed: u64,
    probs: Vec<f64>,
    weights: Vec<PackedWeight>,
    /// Cursor: index of the next batch `next_batch` returns.
    position: u64,
    /// Dedicated stream for scalar `next_pattern` draws.
    scalar_rng: StdRng,
}

impl PatternSource {
    /// Creates a source for the given per-input probabilities. Each
    /// probability is lowered once to a fixed-point threshold
    /// ([`PackedWeight::lower`]).
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or `probs` is empty.
    pub fn new(seed: u64, probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "need at least one input");
        let weights = probs.iter().map(|&p| PackedWeight::lower(p)).collect();
        Self {
            seed,
            weights,
            probs,
            position: 0,
            scalar_rng: StdRng::seed_from_u64(seed ^ SCALAR_STREAM),
        }
    }

    /// A uniform (p = 0.5 everywhere) source.
    pub fn uniform(seed: u64, inputs: usize) -> Self {
        Self::new(seed, vec![0.5; inputs])
    }

    /// Number of inputs per pattern.
    pub fn input_count(&self) -> usize {
        self.probs.len()
    }

    /// The configured probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// The lowered fixed-point weights, in input order.
    pub fn weights(&self) -> &[PackedWeight] {
        &self.weights
    }

    /// The stream cursor: index of the next batch [`Self::next_batch`]
    /// will return.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Moves the stream cursor (64 patterns per batch index).
    pub fn set_position(&mut self, batch_index: u64) {
        self.position = batch_index;
    }

    /// The RNG of batch `index` — a pure function of `(seed, index)`.
    fn batch_rng(&self, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ mix64(index))
    }

    /// Batch `index` of the stream, independent of the cursor: element
    /// `i` holds input `i`'s values across the 64 lanes.
    pub fn batch_at(&self, index: u64) -> Vec<u64> {
        let mut out = vec![0u64; self.probs.len()];
        self.fill_batch_at(index, &mut out);
        out
    }

    /// [`Self::batch_at`] into a caller-owned buffer (one word per input)
    /// — the allocation-free form the simulation hot loops use.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != input_count()`.
    pub fn fill_batch_at(&self, index: u64, out: &mut [u64]) {
        assert_eq!(out.len(), self.probs.len(), "one word per input");
        let mut rng = self.batch_rng(index);
        for (o, w) in out.iter_mut().zip(&self.weights) {
            *o = w.weighted_word(|| rng.next_u64());
        }
    }

    /// Generates the next 64 patterns, packed: element `i` of the result
    /// holds input `i`'s values across the 64 lanes.
    pub fn next_batch(&mut self) -> Vec<u64> {
        let b = self.batch_at(self.position);
        self.position += 1;
        b
    }

    /// Generates the next `width × 64` patterns in the wide evaluator
    /// layout ([`dynmos_netlist::PackedEvaluator::with_width`]): `width`
    /// consecutive words per input, inputs in declaration order. Lane
    /// word `w` of the result is stream batch `position + w`, so wide
    /// and narrow consumers of one seed see the same patterns.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn next_batch_wide(&mut self, width: usize) -> Vec<u64> {
        assert!(width > 0, "need at least one lane word");
        let mut out = vec![0u64; self.probs.len() * width];
        self.fill_batch_wide_at(self.position, width, &mut out);
        self.position += width as u64;
        out
    }

    /// Writes batches `first_index .. first_index + width` in the wide
    /// layout, independent of the cursor.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `out.len() != input_count() * width`.
    pub fn fill_batch_wide_at(&self, first_index: u64, width: usize, out: &mut [u64]) {
        assert!(width > 0, "need at least one lane word");
        assert_eq!(
            out.len(),
            self.probs.len() * width,
            "need {width} packed words per primary input"
        );
        for w in 0..width {
            let mut rng = self.batch_rng(first_index + w as u64);
            for (i, wt) in self.weights.iter().enumerate() {
                out[i * width + w] = wt.weighted_word(|| rng.next_u64());
            }
        }
    }

    /// Generates one scalar pattern as a `Vec<bool>`, via the same
    /// lowered thresholds as the packed path (one uniform word per
    /// input, compared against the input's fixed-point threshold).
    pub fn next_pattern(&mut self) -> Vec<bool> {
        self.weights
            .iter()
            .map(|w| w.scalar_draw(self.scalar_rng.next_u64()))
            .collect()
    }

    /// A borrowed view of the contiguous batch range
    /// `batches.start .. batches.end` of the stream — the unit of work a
    /// pattern-axis shard owns ([`crate::parallel::plan_shards`]). Spans
    /// are independent of the cursor and of each other, so any number of
    /// workers can walk disjoint spans concurrently and reproduce exactly
    /// the patterns the serial cursor would have produced.
    pub fn span(&self, batches: Range<u64>) -> StreamSpan<'_> {
        StreamSpan {
            source: self,
            batches,
        }
    }
}

/// A range-addressable slice of a [`PatternSource`] stream: batches
/// `batches.start .. batches.end`, shared immutably so pattern-axis
/// workers can regenerate their range without touching the cursor.
#[derive(Debug, Clone)]
pub struct StreamSpan<'s> {
    source: &'s PatternSource,
    batches: Range<u64>,
}

impl StreamSpan<'_> {
    /// Number of 64-pattern batches in the span.
    pub fn len(&self) -> u64 {
        self.batches.end.saturating_sub(self.batches.start)
    }

    /// `true` if the span covers no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Fills `out` with the `k`-th batch of the span (absolute stream
    /// batch `batches.start + k`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside the span or `out` has the wrong arity.
    pub fn fill_batch(&self, k: u64, out: &mut [u64]) {
        assert!(k < self.len(), "batch {k} outside span of {}", self.len());
        self.source.fill_batch_at(self.batches.start + k, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = PatternSource::new(7, vec![0.5, 0.25, 0.875]);
        let mut b = PatternSource::new(7, vec![0.5, 0.25, 0.875]);
        for _ in 0..10 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = PatternSource::uniform(1, 4);
        let mut b = PatternSource::uniform(2, 4);
        let batches_equal = (0..4).all(|_| a.next_batch() == b.next_batch());
        assert!(!batches_equal);
    }

    #[test]
    fn stream_is_position_addressable() {
        let mut seq = PatternSource::new(11, vec![0.5, 0.75]);
        let by_cursor: Vec<Vec<u64>> = (0..8).map(|_| seq.next_batch()).collect();
        let random_access = PatternSource::new(11, vec![0.5, 0.75]);
        for (i, batch) in by_cursor.iter().enumerate() {
            assert_eq!(*batch, random_access.batch_at(i as u64), "batch {i}");
        }
        // Rewinding replays.
        seq.set_position(3);
        assert_eq!(seq.next_batch(), by_cursor[3]);
        assert_eq!(seq.position(), 4);
    }

    #[test]
    fn wide_batches_interleave_narrow_batches() {
        let mut narrow = PatternSource::new(5, vec![0.25, 0.5, 0.9]);
        let mut wide = PatternSource::new(5, vec![0.25, 0.5, 0.9]);
        let n: Vec<Vec<u64>> = (0..4).map(|_| narrow.next_batch()).collect();
        let w = wide.next_batch_wide(4);
        for i in 0..3 {
            for k in 0..4 {
                assert_eq!(w[i * 4 + k], n[k][i], "input {i} word {k}");
            }
        }
        assert_eq!(narrow.position(), wide.position());
    }

    #[test]
    fn empirical_frequency_tracks_probability() {
        let probs = vec![0.125, 0.5, 0.9];
        let mut src = PatternSource::new(99, probs.clone());
        let mut ones = [0u64; 3];
        let batches = 1024; // 65,536 samples per input (>= 2^16)
        for _ in 0..batches {
            for (i, w) in src.next_batch().iter().enumerate() {
                ones[i] += w.count_ones() as u64;
            }
        }
        let total = (batches * 64) as f64;
        for (i, &p) in probs.iter().enumerate() {
            let freq = ones[i] as f64 / total;
            let tol = (4.0 * (p * (1.0 - p) / total).sqrt()).max(1e-3);
            assert!(
                (freq - p).abs() < tol,
                "input {i}: frequency {freq} vs probability {p} (tol {tol})"
            );
        }
    }

    #[test]
    fn dyadic_probabilities_lower_exactly() {
        let probs = vec![0.5, 0.25, 0.9375, 0.015625];
        let src = PatternSource::new(1, probs.clone());
        for (w, &p) in src.weights().iter().zip(&probs) {
            assert_eq!(w.probability(), p, "dyadic {p} must be exact");
        }
        // 0.5 is a one-word weight — the fast path is now an exact
        // threshold property, not an epsilon comparison.
        assert_eq!(src.weights()[0].depth(), 1);
        assert_eq!(src.weights()[2].depth(), 4); // 0.9375 = 15/16
    }

    #[test]
    fn scalar_pattern_frequency_tracks_probability() {
        let probs = vec![0.125, 0.875];
        let mut src = PatternSource::new(13, probs.clone());
        let n = 1u64 << 16;
        let mut ones = [0u64; 2];
        for _ in 0..n {
            for (i, b) in src.next_pattern().into_iter().enumerate() {
                ones[i] += u64::from(b);
            }
        }
        for (i, &p) in probs.iter().enumerate() {
            let freq = ones[i] as f64 / n as f64;
            let tol = 4.0 * (p * (1.0 - p) / n as f64).sqrt();
            assert!((freq - p).abs() < tol, "input {i}: {freq} vs {p}");
        }
    }

    #[test]
    fn extreme_probabilities() {
        let mut src = PatternSource::new(5, vec![0.0, 1.0]);
        let batch = src.next_batch();
        assert_eq!(batch[0], 0);
        assert_eq!(batch[1], u64::MAX);
        let pat = src.next_pattern();
        assert_eq!(pat, vec![false, true]);
    }

    #[test]
    fn near_boundary_probabilities_stay_non_constant() {
        // Regression: p within 2^-65 of a boundary must not lower to a
        // constant stream — a stuck input makes every fault needing the
        // rare value undetectable.
        let tiny = (2.0f64).powi(-70);
        let below_one = f64::from_bits(1.0f64.to_bits() - 1); // largest interior f64
        let src = PatternSource::new(5, vec![tiny, below_one]);
        assert_eq!(src.weights()[0], PackedWeight::Threshold(1));
        assert_ne!(src.weights()[1], PackedWeight::One);
        for w in src.weights() {
            assert!(w.probability() > 0.0 && w.probability() < 1.0);
        }
    }

    #[test]
    fn spans_tile_the_stream() {
        let mut seq = PatternSource::new(17, vec![0.5, 0.875, 0.25]);
        let by_cursor: Vec<Vec<u64>> = (0..12).map(|_| seq.next_batch()).collect();
        let src = PatternSource::new(17, vec![0.5, 0.875, 0.25]);
        // Two disjoint spans reproduce exactly the cursor's batches.
        let mut out = vec![0u64; 3];
        for (range, offset) in [(0u64..5, 0usize), (5..12, 5)] {
            let span = src.span(range.clone());
            assert_eq!(span.len(), (range.end - range.start));
            for k in 0..span.len() {
                span.fill_batch(k, &mut out);
                assert_eq!(out, by_cursor[offset + k as usize], "batch {k}");
            }
        }
        assert!(src.span(4..4).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside span")]
    fn span_rejects_out_of_range_batch() {
        let src = PatternSource::uniform(1, 2);
        let mut out = vec![0u64; 2];
        src.span(3..5).fill_batch(2, &mut out);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_probability_panics() {
        PatternSource::new(0, vec![1.2]);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_probs_panics() {
        PatternSource::new(0, vec![]);
    }
}
