//! Signal probability estimation.
//!
//! PROTEST's first stage (Fig. 8): "For those given input signal
//! probabilities PROTEST estimates the signal probability at each internal
//! node."
//!
//! Two methods are provided:
//!
//! * [`signal_probabilities`] — the fast topological estimator: one forward
//!   pass, treating each gate's inputs as independent. Exact on fanout-free
//!   trees; biased under reconvergent fanout (the classic limitation the
//!   ablation in `EXPERIMENTS.md` quantifies).
//! * [`exact_signal_probability`] — ground truth by exhaustive weighted
//!   enumeration of the input space (feasible for the cell- and
//!   block-sized circuits of the paper).

use dynmos_logic::signal_probability_expr;
use dynmos_netlist::{NetId, Network, PackedEvaluator};

/// One forward-pass topological estimate of every net's signal
/// probability (indexed by [`NetId`]).
///
/// Inputs are assumed independent at every gate boundary, so estimates are
/// exact for tree circuits and approximate under reconvergent fanout.
///
/// # Panics
///
/// Panics if `pi_probs.len()` differs from the number of primary inputs or
/// any probability is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use dynmos_netlist::generate::and_or_tree;
/// use dynmos_protest::signal_probabilities;
///
/// let net = and_or_tree(2); // (x0&x1) | (x2&x3)
/// let probs = signal_probabilities(&net, &[0.5; 4]);
/// let po = net.primary_outputs()[0];
/// // P = 1 - (1-0.25)^2 = 0.4375, exact on a tree.
/// assert!((probs[po.index()] - 0.4375).abs() < 1e-12);
/// ```
pub fn signal_probabilities(net: &Network, pi_probs: &[f64]) -> Vec<f64> {
    assert_eq!(
        pi_probs.len(),
        net.primary_inputs().len(),
        "need one probability per primary input"
    );
    for &p in pi_probs {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
    }
    let mut probs = vec![0.0f64; net.net_count()];
    for (pi, &p) in net.primary_inputs().iter().zip(pi_probs) {
        probs[pi.index()] = p;
    }
    for &g in net.topo_order() {
        let inst = &net.gates()[g.index()];
        let cell = net.cell_of(g);
        let input_probs: Vec<f64> = inst.inputs.iter().map(|n| probs[n.index()]).collect();
        let p = signal_probability_expr(&cell.logic_function(), &input_probs);
        probs[inst.output.index()] = p;
    }
    probs
}

/// Exact signal probability of one net by weighted exhaustive enumeration
/// of the primary-input space.
///
/// # Panics
///
/// Panics if the network has more than 24 primary inputs (enumeration
/// would be infeasible), if `pi_probs` has the wrong arity, or any
/// probability is outside `[0, 1]`.
pub fn exact_signal_probability(net: &Network, target: NetId, pi_probs: &[f64]) -> f64 {
    let n = net.primary_inputs().len();
    assert!(n <= 24, "exact enumeration over {n} inputs is infeasible");
    assert_eq!(pi_probs.len(), n, "need one probability per primary input");
    for &p in pi_probs {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
    }
    let mut total = 0.0;
    // Evaluate 64 assignments per packed pass on one reusable evaluator.
    let mut ev = PackedEvaluator::new(net);
    let mut pi_words = vec![0u64; n];
    let rows = 1u64 << n;
    let mut row = 0u64;
    while row < rows {
        let lanes = (rows - row).min(64);
        pi_words.fill(0);
        for lane in 0..lanes {
            let assignment = row + lane;
            for (i, w) in pi_words.iter_mut().enumerate() {
                if (assignment >> i) & 1 == 1 {
                    *w |= 1 << lane;
                }
            }
        }
        let values = ev.eval(&pi_words);
        let word = values[target.index()];
        for lane in 0..lanes {
            if (word >> lane) & 1 == 1 {
                let assignment = row + lane;
                let mut weight = 1.0;
                for (i, &p) in pi_probs.iter().enumerate() {
                    weight *= if (assignment >> i) & 1 == 1 {
                        p
                    } else {
                        1.0 - p
                    };
                }
                total += weight;
            }
        }
        row += lanes;
    }
    // Summing 2^n weights accumulates ulp-scale error; clamp to [0,1] so
    // downstream validation (test_length) never sees 1.0 + epsilon.
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmos_netlist::generate::{and_or_tree, c17_dynamic_nmos, carry_chain};

    #[test]
    fn estimator_is_exact_on_trees() {
        let net = and_or_tree(3);
        let pi_probs: Vec<f64> = (0..8).map(|i| 0.2 + 0.08 * i as f64).collect();
        let est = signal_probabilities(&net, &pi_probs);
        for &po in net.primary_outputs() {
            let exact = exact_signal_probability(&net, po, &pi_probs);
            assert!(
                (est[po.index()] - exact).abs() < 1e-12,
                "tree estimate must be exact: {} vs {exact}",
                est[po.index()]
            );
        }
    }

    #[test]
    fn estimator_biased_under_reconvergence_but_bounded() {
        // c17 has reconvergent fanout (n2 feeds n3 and n4).
        let net = c17_dynamic_nmos();
        let pi = vec![0.5; 5];
        let est = signal_probabilities(&net, &pi);
        for &po in net.primary_outputs() {
            let exact = exact_signal_probability(&net, po, &pi);
            let err = (est[po.index()] - exact).abs();
            assert!(err < 0.25, "estimator wildly off: {err}");
            assert!((0.0..=1.0).contains(&est[po.index()]));
        }
    }

    #[test]
    fn exact_matches_density_at_uniform() {
        let net = carry_chain(3);
        let n = net.primary_inputs().len();
        let pi = vec![0.5; n];
        for &po in net.primary_outputs() {
            let exact = exact_signal_probability(&net, po, &pi);
            // At p=0.5 every assignment has weight 2^-n; the exact value
            // equals ones/2^n which for the majority recurrence is in
            // (0,1).
            assert!(exact > 0.0 && exact < 1.0);
        }
    }

    #[test]
    fn degenerate_input_probabilities() {
        let net = and_or_tree(2);
        let probs = signal_probabilities(&net, &[1.0, 1.0, 0.0, 0.0]);
        let po = net.primary_outputs()[0];
        assert_eq!(probs[po.index()], 1.0); // (1&1)|(0&0) = 1 deterministically
        let exact = exact_signal_probability(&net, po, &[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(exact, 1.0);
    }

    #[test]
    fn pi_net_probability_is_its_input_probability() {
        let net = and_or_tree(2);
        let probs = signal_probabilities(&net, &[0.3, 0.5, 0.7, 0.9]);
        for (k, &pi) in net.primary_inputs().iter().enumerate() {
            assert_eq!(probs[pi.index()], [0.3, 0.5, 0.7, 0.9][k]);
        }
    }

    #[test]
    #[should_panic(expected = "one probability per primary input")]
    fn wrong_arity_panics() {
        let net = and_or_tree(2);
        signal_probabilities(&net, &[0.5; 3]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_probability_panics() {
        let net = and_or_tree(2);
        signal_probabilities(&net, &[0.5, 0.5, 0.5, 1.5]);
    }

    #[test]
    fn packed_exact_crosses_word_boundaries() {
        // 7 inputs = 128 rows = 2 packed words.
        let net = carry_chain(3);
        let n = net.primary_inputs().len();
        assert_eq!(n, 7);
        let pi = vec![0.5; n];
        let po = net.primary_outputs()[2]; // c3: the full 7-input cone
        let exact = exact_signal_probability(&net, po, &pi);
        // Reference by scalar enumeration.
        let mut count = 0u64;
        for w in 0..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (w >> i) & 1 == 1).collect();
            if net.eval(&bits)[2] {
                count += 1;
            }
        }
        assert!((exact - count as f64 / 128.0).abs() < 1e-12);
    }
}
