//! The environment contract: every `DYNMOS_*` knob is read and
//! validated here, in one shared startup pass, so a typo in any knob
//! fails the same way — `status=failed reason=env:<VAR>` — instead of
//! each reader inventing its own failure shape (or worse, panicking
//! mid-run once the lazily-read knob is finally consulted).
//!
//! [`raw`] is the single sanctioned `std::env::var` site in the
//! workspace; dynlint's `env-through-contract` rule flags direct reads
//! anywhere else (see `dynlint.toml`).

use crate::chaos::FaultPlan;
use crate::testability::TierMode;

/// The four runtime knobs the service honors.
pub const KNOBS: &[&str] = &[
    "DYNMOS_THREADS",
    "DYNMOS_BUDGET_MS",
    "DYNMOS_TESTABILITY",
    "DYNMOS_FAULT_PLAN",
];

/// A knob that is set but unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// The variable name, for the `reason=env:<var>` status line.
    pub var: &'static str,
    /// Human-readable description, prefixed with the variable name.
    pub message: String,
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Reads one environment variable. Non-UTF-8 values read as unset —
/// every knob is ASCII, and a knob that cannot be decoded cannot be
/// validated either.
pub fn raw(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// Trims `name`'s value, mapping unset / empty / whitespace-only to
/// `None` (the uniform "no override" convention of every knob).
pub fn trimmed(name: &str) -> Option<String> {
    let value = raw(name)?;
    let trimmed = value.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed.to_owned())
    }
}

/// Validates every knob in [`KNOBS`], returning the first failure in
/// declaration order. Call once at process startup so every knob fails
/// as `status=failed reason=env:<var>` before any work begins.
///
/// Deliberately side-effect free: it does not cache parses or
/// construct budgets, it only proves the readers that follow cannot
/// panic on these values.
pub fn validate_all() -> Result<(), EnvError> {
    validate_threads()?;
    validate_budget_ms()?;
    validate_testability()?;
    validate_fault_plan()?;
    Ok(())
}

fn validate_threads() -> Result<(), EnvError> {
    let Some(value) = trimmed("DYNMOS_THREADS") else {
        return Ok(());
    };
    value.parse::<usize>().map(|_| ()).map_err(|_| EnvError {
        var: "DYNMOS_THREADS",
        message: format!(
            "DYNMOS_THREADS invalid: must be a non-negative integer \
             (unset or empty for all cores), got {value:?}"
        ),
    })
}

fn validate_budget_ms() -> Result<(), EnvError> {
    let Some(value) = trimmed("DYNMOS_BUDGET_MS") else {
        return Ok(());
    };
    value.parse::<u64>().map(|_| ()).map_err(|_| EnvError {
        var: "DYNMOS_BUDGET_MS",
        message: format!(
            "DYNMOS_BUDGET_MS invalid: must be a non-negative integer number of \
             milliseconds (unset or empty for no budget), got {value:?}"
        ),
    })
}

fn validate_testability() -> Result<(), EnvError> {
    let Some(value) = trimmed("DYNMOS_TESTABILITY") else {
        return Ok(());
    };
    TierMode::parse(&value).map(|_| ()).map_err(|e| EnvError {
        var: "DYNMOS_TESTABILITY",
        message: format!("DYNMOS_TESTABILITY invalid: {e}"),
    })
}

fn validate_fault_plan() -> Result<(), EnvError> {
    let Some(value) = trimmed("DYNMOS_FAULT_PLAN") else {
        return Ok(());
    };
    FaultPlan::parse(&value).map(|_| ()).map_err(|e| EnvError {
        var: "DYNMOS_FAULT_PLAN",
        message: format!("DYNMOS_FAULT_PLAN invalid: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global, so these tests run under a lock
    // shared with nothing else in this crate (each test restores the
    // prior value before releasing).
    use std::sync::Mutex;
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_var(name: &str, value: Option<&str>, f: impl FnOnce()) {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prior = std::env::var(name).ok();
        match value {
            Some(v) => std::env::set_var(name, v),
            None => std::env::remove_var(name),
        }
        f();
        match prior {
            Some(v) => std::env::set_var(name, v),
            None => std::env::remove_var(name),
        }
    }

    #[test]
    fn unset_and_empty_pass() {
        for v in [None, Some(""), Some("   ")] {
            with_var("DYNMOS_THREADS", v, || {
                assert_eq!(validate_threads(), Ok(()));
            });
        }
    }

    #[test]
    fn bad_values_name_their_variable() {
        with_var("DYNMOS_THREADS", Some("many"), || {
            let e = validate_threads().unwrap_err();
            assert_eq!(e.var, "DYNMOS_THREADS");
            assert!(e.message.contains("DYNMOS_THREADS invalid"), "{e}");
        });
        with_var("DYNMOS_BUDGET_MS", Some("-5"), || {
            let e = validate_budget_ms().unwrap_err();
            assert_eq!(e.var, "DYNMOS_BUDGET_MS");
        });
        with_var("DYNMOS_TESTABILITY", Some("psychic"), || {
            let e = validate_testability().unwrap_err();
            assert_eq!(e.var, "DYNMOS_TESTABILITY");
        });
        with_var("DYNMOS_FAULT_PLAN", Some("panic=0.05;;nope"), || {
            let e = validate_fault_plan().unwrap_err();
            assert_eq!(e.var, "DYNMOS_FAULT_PLAN");
            assert!(e.message.contains("DYNMOS_FAULT_PLAN invalid"), "{e}");
        });
    }

    #[test]
    fn good_values_pass() {
        with_var("DYNMOS_THREADS", Some("4"), || {
            assert_eq!(validate_threads(), Ok(()));
        });
        with_var("DYNMOS_BUDGET_MS", Some("250"), || {
            assert_eq!(validate_budget_ms(), Ok(()));
        });
        with_var("DYNMOS_TESTABILITY", Some("bdd"), || {
            assert_eq!(validate_testability(), Ok(()));
        });
    }
}
