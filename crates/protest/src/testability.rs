//! Tiered detection-probability engine — testability analysis past the
//! enumeration wall.
//!
//! The exact enumerator walks all `2^n` input rows and therefore caps
//! every optimal-weights experiment at toy input counts. This module
//! lowers the detectability function onto [`dynmos_logic::bdd`] instead
//! and arranges three tiers behind one interface:
//!
//! 1. **Exact enumeration** ([`ExactDetector`]) when the row space fits
//!    [`RunBudget::effective_exact_rows`] — bit-identical to the historic
//!    path, still the small-circuit oracle.
//! 2. **BDD**: the good machine is built once over a fanin-driven
//!    variable order (DFS from the primary outputs through the drivers,
//!    which interleaves related inputs — linear-sized BDDs for
//!    ripple/chain structures); per fault only the fanout cone is rebuilt
//!    with the fault injected, XORed at the observable outputs, and the
//!    detection probability is one linear bottom-up pass
//!    ([`Bdd::probability`]). A hard node budget turns pathological
//!    growth into a graceful [`BddOverflow`](dynmos_logic::BddOverflow)
//!    instead of unbounded memory use.
//! 3. **Cutting**: for over-budget cones, a cutting-style interval
//!    propagation in the spirit of the cutting algorithm — reconvergent
//!    fanout is "cut" by falling back to Fréchet bounds whenever two
//!    operand supports overlap, while provably independent operands
//!    (disjoint primary-input support) keep the exact product rules. The
//!    result is a certified `[low, high]` enclosure of the true
//!    detection probability for *any* reconvergence pattern, optionally
//!    tightened by the budgeted Monte Carlo estimators (the reported
//!    value is the sample mean clamped into the certified interval).
//!
//! Tier selection per (circuit, fault) is automatic and every estimate
//! carries its provenance in [`DetectionEstimate::method`]. The
//! `DYNMOS_TESTABILITY` environment variable (`auto`, `exact`, `bdd`,
//! `cutting`) forces a tier for the whole process — CI runs one leg with
//! `DYNMOS_TESTABILITY=bdd` to drive the symbolic tier over the entire
//! suite. A forced `bdd` still degrades per fault to `cutting` on node
//! overflow, and a forced `exact` falls back to the symbolic tiers when
//! the row space does not fit the budget (refusing outright would make
//! the knob unusable on exactly the circuits this engine exists for).

use crate::budget::{RunBudget, RunStatus, StopReason};
use crate::detect::{row_space, DetectionEstimate, EstimateMethod, ExactDetector};
use crate::list::FaultEntry;
use crate::parallel::Parallelism;
use dynmos_logic::{Bdd, BddRef, Bexpr, VarId};
use dynmos_netlist::{Network, NetworkFault};
use std::collections::HashMap;

/// Default node budget for the per-circuit BDD manager.
pub const DEFAULT_NODE_BUDGET: usize = 1 << 20;

/// Default Monte Carlo sample count used to tighten cutting bounds
/// (`0` disables tightening; the midpoint of the interval is reported).
pub const DEFAULT_TIGHTEN_SAMPLES: u64 = 1 << 12;

/// Which engine tier(s) a [`DetectionEngine`] may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierMode {
    /// Pick per circuit and fault: exact when the row space fits the
    /// budget, else BDD, degrading per fault to cutting on overflow.
    #[default]
    Auto,
    /// Prefer exact enumeration. Falls back to the symbolic tiers when
    /// the row space exceeds the budget (exact is impossible there).
    Exact,
    /// Skip exact enumeration: BDD with per-fault cutting fallback.
    Bdd,
    /// Certified bounds only: no BDD construction at all.
    Cutting,
}

impl TierMode {
    /// Parses the `DYNMOS_TESTABILITY` value.
    pub fn parse(s: &str) -> Result<TierMode, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(TierMode::Auto),
            "exact" => Ok(TierMode::Exact),
            "bdd" => Ok(TierMode::Bdd),
            "cutting" => Ok(TierMode::Cutting),
            other => Err(format!(
                "unknown tier {other:?} (expected auto, exact, bdd or cutting)"
            )),
        }
    }

    /// The machine-readable token (`auto`, `exact`, `bdd`, `cutting`).
    pub fn token(self) -> &'static str {
        match self {
            TierMode::Auto => "auto",
            TierMode::Exact => "exact",
            TierMode::Bdd => "bdd",
            TierMode::Cutting => "cutting",
        }
    }
}

/// Pure parse of a `DYNMOS_TESTABILITY` override: `None` when unset or
/// empty, the mode when valid.
///
/// # Panics
///
/// Panics on garbage — a mistyped tier must fail loudly, not silently
/// run a different engine (same contract as `DYNMOS_BUDGET_MS` and
/// `DYNMOS_THREADS`).
pub fn parse_testability_override(raw: Option<&str>) -> Option<TierMode> {
    let raw = raw?.trim();
    if raw.is_empty() {
        return None;
    }
    match TierMode::parse(raw) {
        Ok(mode) => Some(mode),
        Err(e) => panic!("invalid DYNMOS_TESTABILITY: {e}"),
    }
}

/// Reads the `DYNMOS_TESTABILITY` tier override from the environment.
///
/// # Panics
///
/// Panics if the variable is set to an unknown tier.
pub fn env_testability() -> Option<TierMode> {
    parse_testability_override(crate::env_contract::raw("DYNMOS_TESTABILITY").as_deref())
}

/// Configuration of a [`DetectionEngine`].
#[derive(Debug, Clone)]
pub struct TestabilityConfig {
    /// Tier selection policy.
    pub mode: TierMode,
    /// Hard cap on the BDD manager's node store.
    pub node_budget: usize,
    /// Monte Carlo samples for tightening cutting bounds (0 = off).
    pub mc_tighten_samples: u64,
    /// Base seed for the tightening sampler; each fault derives its own
    /// stream from `seed` and its fault index, so resuming a run at any
    /// fault boundary reproduces identical values.
    pub seed: u64,
}

impl TestabilityConfig {
    /// A configuration with the given tier policy and default budgets.
    pub fn new(mode: TierMode) -> Self {
        Self {
            mode,
            node_budget: DEFAULT_NODE_BUDGET,
            mc_tighten_samples: DEFAULT_TIGHTEN_SAMPLES,
            seed: 0,
        }
    }

    /// The process-wide configuration: tier from `DYNMOS_TESTABILITY`
    /// (default [`TierMode::Auto`]), default budgets.
    pub fn from_env() -> Self {
        Self::new(env_testability().unwrap_or_default())
    }

    /// Replaces the tier policy.
    pub fn with_mode(mut self, mode: TierMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the BDD node budget.
    pub fn with_node_budget(mut self, nodes: usize) -> Self {
        self.node_budget = nodes;
        self
    }

    /// Replaces the bound-tightening sample count (0 disables).
    pub fn with_mc_tighten_samples(mut self, samples: u64) -> Self {
        self.mc_tighten_samples = samples;
        self
    }

    /// Replaces the tightening seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for TestabilityConfig {
    fn default() -> Self {
        Self::new(TierMode::Auto)
    }
}

/// Formats per-fault methods as the machine-readable tier census used in
/// the CLI's `status=` stderr lines: `exact:N,bdd:N,cutting:N,mc:N`.
pub fn tier_census<'a>(methods: impl IntoIterator<Item = &'a EstimateMethod>) -> String {
    let (mut exact, mut bdd, mut cutting, mut mc) = (0usize, 0usize, 0usize, 0usize);
    for m in methods {
        match m {
            EstimateMethod::Exact => exact += 1,
            EstimateMethod::Bdd => bdd += 1,
            EstimateMethod::Cutting => cutting += 1,
            EstimateMethod::MonteCarlo => mc += 1,
        }
    }
    format!("exact:{exact},bdd:{bdd},cutting:{cutting},mc:{mc}")
}

/// How many faults the exact tier enumerates between budget checks.
const EXACT_BLOCK: usize = 64;

/// Per-fault tier resolution inside the symbolic state.
#[derive(Debug, Clone, Copy)]
enum FaultTier {
    Unresolved,
    Bdd(BddRef),
    Cutting,
}

/// The shared symbolic state: one budgeted BDD manager, the good machine
/// built once, per-fault difference roots resolved lazily.
struct SymbolicState {
    bdd: Bdd,
    /// `var_of_pi[i]` = BDD variable of the i-th primary input under the
    /// fanin-driven order.
    var_of_pi: Vec<u32>,
    /// Per-net good-machine function; only valid when `good_ok`.
    good: Vec<BddRef>,
    /// `false` when the good machine itself overflowed the node budget
    /// (or the mode is cutting-only): every fault takes the cutting tier.
    good_ok: bool,
    tiers: Vec<FaultTier>,
    /// Per-net primary-input support bitsets (lazily built for cutting).
    supports: Option<Vec<Vec<u64>>>,
}

enum Resolved {
    Exact,
    Symbolic(Box<SymbolicState>),
}

/// The tiered detection-probability engine.
///
/// Build one per (network, fault list); it owns the tier plan, the
/// shared BDD manager and the per-fault difference functions, so
/// repeated probability queries (the inner loop of weight optimization)
/// cost one linear BDD pass per query instead of a rebuild.
pub struct DetectionEngine<'n> {
    net: &'n Network,
    faults: Vec<FaultEntry>,
    config: TestabilityConfig,
    parallelism: Parallelism,
    resolved: Option<Resolved>,
}

impl<'n> DetectionEngine<'n> {
    /// Creates an engine over `faults` with the given configuration.
    pub fn new(net: &'n Network, faults: &[FaultEntry], config: TestabilityConfig) -> Self {
        Self {
            net,
            faults: faults.to_vec(),
            config,
            parallelism: Parallelism::default(),
            resolved: None,
        }
    }

    /// Sets the worker policy for the exact tier.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Number of faults this engine serves.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Computes estimates for the whole fault list under `budget`.
    ///
    /// # Panics
    ///
    /// Panics if `pi_probs` has the wrong arity or invalid values.
    pub fn estimates(
        &mut self,
        pi_probs: &[f64],
        budget: &RunBudget,
    ) -> Result<Vec<DetectionEstimate>, StopReason> {
        let mut out = Vec::with_capacity(self.faults.len());
        let status = self.estimates_from(0, pi_probs, budget, &mut |_, est| out.push(est));
        match status {
            RunStatus::Completed => Ok(out),
            RunStatus::Interrupted(reason) => Err(reason),
        }
    }

    /// Streams estimates for faults `start..` in index order, calling
    /// `sink(index, estimate)` for each finished fault. Budget checks run
    /// at per-fault granularity; estimates already emitted when the run
    /// is interrupted are final and **batch-independent**: resuming at
    /// any fault boundary (even in a fresh process) reproduces
    /// bit-identical values, which is what the `testability` service
    /// kernel's durability contract relies on.
    ///
    /// At least one fault makes progress per call even on an expired
    /// budget (the forward-progress contract of [`RunBudget`]).
    pub fn estimates_from(
        &mut self,
        start: usize,
        pi_probs: &[f64],
        budget: &RunBudget,
        sink: &mut dyn FnMut(usize, DetectionEstimate),
    ) -> RunStatus {
        let n = self.net.primary_inputs().len();
        assert_eq!(pi_probs.len(), n, "need one probability per primary input");
        if start >= self.faults.len() {
            return RunStatus::Completed;
        }
        self.ensure_resolved(budget);
        match self.resolved.as_ref().expect("resolved above") {
            Resolved::Exact => self.run_exact(start, pi_probs, budget, sink),
            Resolved::Symbolic(_) => self.run_symbolic(start, pi_probs, budget, sink),
        }
    }

    /// Decides the exact-vs-symbolic split once and freezes it, so tier
    /// tags stay stable across repeated queries on one engine.
    fn ensure_resolved(&mut self, budget: &RunBudget) {
        if self.resolved.is_some() {
            return;
        }
        let n = self.net.primary_inputs().len();
        let rows_fit = row_space(n).is_some_and(|rows| rows <= budget.effective_exact_rows());
        let use_exact = match self.config.mode {
            TierMode::Auto | TierMode::Exact => rows_fit,
            TierMode::Bdd | TierMode::Cutting => false,
        };
        if use_exact {
            self.resolved = Some(Resolved::Exact);
            return;
        }
        self.resolved = Some(Resolved::Symbolic(Box::new(self.build_symbolic())));
    }

    /// Builds the shared symbolic state: fanin-driven variable order and
    /// the good machine under the node budget.
    fn build_symbolic(&self) -> SymbolicState {
        let net = self.net;
        let order = fanin_dfs_order(net);
        let n = net.primary_inputs().len();
        let mut var_of_pi = vec![0u32; n];
        for (var, &pi) in order.iter().enumerate() {
            var_of_pi[pi] = var as u32;
        }
        let mut bdd = Bdd::with_node_limit(self.config.node_budget);
        let mut good = vec![BddRef::FALSE; net.net_count()];
        let mut good_ok = self.config.mode != TierMode::Cutting;
        if good_ok {
            for (i, &pi) in net.primary_inputs().iter().enumerate() {
                match bdd.try_var(VarId(var_of_pi[i])) {
                    Ok(r) => good[pi.index()] = r,
                    Err(_) => {
                        good_ok = false;
                        break;
                    }
                }
            }
        }
        if good_ok {
            'gates: for &g in net.topo_order() {
                let inst = &net.gates()[g.index()];
                let function = net.cell_of(g).logic_function();
                let inputs = inst.inputs.clone();
                match bdd.try_eval_expr_over(&function, &|v| good[inputs[v.index()].index()]) {
                    Ok(r) => good[inst.output.index()] = r,
                    Err(_) => {
                        // The circuit itself is over budget: every fault
                        // goes to the cutting tier.
                        good_ok = false;
                        break 'gates;
                    }
                }
            }
        }
        SymbolicState {
            bdd,
            var_of_pi,
            good,
            good_ok,
            tiers: vec![FaultTier::Unresolved; self.faults.len()],
            supports: None,
        }
    }

    /// Exact tier: per-block enumeration so interrupts land on fault
    /// boundaries. The first block of every call is a single fault run
    /// without a deadline — the forward-progress guarantee.
    fn run_exact(
        &self,
        start: usize,
        pi_probs: &[f64],
        budget: &RunBudget,
        sink: &mut dyn FnMut(usize, DetectionEstimate),
    ) -> RunStatus {
        let total = self.faults.len();
        let mut i = start;
        let mut first = true;
        while i < total {
            if !first {
                if let Some(reason) = budget.stop_requested() {
                    return RunStatus::Interrupted(reason);
                }
            }
            let block = if first { 1 } else { EXACT_BLOCK.min(total - i) };
            let nf: Vec<NetworkFault> = self.faults[i..i + block]
                .iter()
                .map(|e| e.fault.clone())
                .collect();
            let mut det = ExactDetector::for_faults(self.net, &nf);
            det.set_parallelism(self.parallelism);
            let progress_budget;
            let leg_budget = if first {
                progress_budget =
                    RunBudget::unlimited().with_max_exact_rows(budget.effective_exact_rows());
                &progress_budget
            } else {
                budget
            };
            match det.try_probabilities(pi_probs, leg_budget) {
                Ok(values) => {
                    for (k, value) in values.into_iter().enumerate() {
                        sink(
                            i + k,
                            DetectionEstimate {
                                value,
                                std_error: 0.0,
                                method: EstimateMethod::Exact,
                                bounds: None,
                            },
                        );
                    }
                }
                Err(reason) => return RunStatus::Interrupted(reason),
            }
            i += block;
            first = false;
        }
        RunStatus::Completed
    }

    /// BDD/cutting tiers: strictly per-fault streaming.
    fn run_symbolic(
        &mut self,
        start: usize,
        pi_probs: &[f64],
        budget: &RunBudget,
        sink: &mut dyn FnMut(usize, DetectionEstimate),
    ) -> RunStatus {
        let total = self.faults.len();
        // Probabilities permuted from PI order into BDD variable order.
        let ordered: Vec<f64> = {
            let state = self.symbolic();
            let mut v = vec![0.0; pi_probs.len()];
            for (i, &p) in pi_probs.iter().enumerate() {
                v[state.var_of_pi[i] as usize] = p;
            }
            v
        };
        // Good-machine intervals for the cutting tier, computed at most
        // once per call (they depend on pi_probs).
        let mut good_iv: Option<Vec<(f64, f64)>> = None;
        let mut prob_memo: HashMap<BddRef, f64> = HashMap::new();
        let mut emitted = false;
        for i in start..total {
            if emitted {
                if let Some(reason) = budget.stop_requested() {
                    return RunStatus::Interrupted(reason);
                }
            }
            self.resolve_fault(i);
            let est = match self.symbolic().tiers[i] {
                FaultTier::Unresolved => unreachable!("resolved above"),
                FaultTier::Bdd(root) => {
                    let state = self.symbolic();
                    let value = state.bdd.probability_memo(root, &ordered, &mut prob_memo);
                    DetectionEstimate {
                        value,
                        std_error: 0.0,
                        method: EstimateMethod::Bdd,
                        bounds: None,
                    }
                }
                FaultTier::Cutting => {
                    self.ensure_supports();
                    let state = self.symbolic();
                    let iv = good_iv.get_or_insert_with(|| {
                        good_intervals(
                            self.net,
                            pi_probs,
                            state.supports.as_ref().expect("built above"),
                        )
                    });
                    let (lo, hi) = fault_bounds(
                        self.net,
                        &self.faults[i].fault,
                        iv,
                        state.supports.as_ref().expect("built above"),
                    );
                    self.tightened_estimate(i, pi_probs, lo, hi)
                }
            };
            sink(i, est);
            emitted = true;
        }
        RunStatus::Completed
    }

    fn symbolic(&self) -> &SymbolicState {
        match self.resolved.as_ref() {
            Some(Resolved::Symbolic(s)) => s,
            _ => unreachable!("symbolic state required"),
        }
    }

    fn symbolic_mut(&mut self) -> &mut SymbolicState {
        match self.resolved.as_mut() {
            Some(Resolved::Symbolic(s)) => s,
            _ => unreachable!("symbolic state required"),
        }
    }

    fn ensure_supports(&mut self) {
        let net = self.net;
        let state = self.symbolic_mut();
        if state.supports.is_none() {
            state.supports = Some(pi_supports(net));
        }
    }

    /// Resolves fault `i`'s tier: build its difference BDD, rolling the
    /// node store back and demoting to cutting on overflow.
    fn resolve_fault(&mut self, i: usize) {
        let net = self.net;
        let fault = self.faults[i].fault.clone();
        let forced_cut = self.config.mode == TierMode::Cutting || !self.symbolic().good_ok;
        let state = self.symbolic_mut();
        if !matches!(state.tiers[i], FaultTier::Unresolved) {
            return;
        }
        if forced_cut {
            state.tiers[i] = FaultTier::Cutting;
            return;
        }
        let mark = state.bdd.mark();
        match build_diff(net, &mut state.bdd, &state.good, &fault) {
            Ok(root) => state.tiers[i] = FaultTier::Bdd(root),
            Err(_) => {
                state.bdd.truncate(mark);
                state.tiers[i] = FaultTier::Cutting;
            }
        }
    }

    /// Builds the cutting-tier estimate for fault `i`: certified bounds,
    /// optionally tightened by a per-fault Monte Carlo run whose seed is
    /// derived from the fault index (batch-independent, so resumed runs
    /// reproduce the same value). The tightening run is deliberately not
    /// placed under the caller's budget: its sample count is small and
    /// bounded, and an always-complete run keeps committed values
    /// independent of leg timing.
    fn tightened_estimate(
        &self,
        i: usize,
        pi_probs: &[f64],
        lo: f64,
        hi: f64,
    ) -> DetectionEstimate {
        let samples = self.config.mc_tighten_samples;
        if samples == 0 || hi - lo < 1e-12 {
            return DetectionEstimate {
                value: 0.5 * (lo + hi),
                std_error: 0.5 * (hi - lo),
                method: EstimateMethod::Cutting,
                bounds: Some((lo, hi)),
            };
        }
        let seed = per_fault_seed(self.config.seed, i);
        let run = crate::montecarlo::mc_detection_probabilities_budgeted(
            self.net,
            std::slice::from_ref(&self.faults[i]),
            pi_probs,
            seed,
            samples,
            Parallelism::Serial,
            &RunBudget::unlimited(),
        );
        match run.status {
            RunStatus::Completed => {
                let e = &run.estimates[0];
                DetectionEstimate {
                    value: e.value.clamp(lo, hi),
                    std_error: e.std_error().min(0.5 * (hi - lo)),
                    method: EstimateMethod::Cutting,
                    bounds: Some((lo, hi)),
                }
            }
            // Unreachable with an unlimited budget; keep the midpoint as
            // a defensive fallback rather than panicking.
            RunStatus::Interrupted(_) => DetectionEstimate {
                value: 0.5 * (lo + hi),
                std_error: 0.5 * (hi - lo),
                method: EstimateMethod::Cutting,
                bounds: Some((lo, hi)),
            },
        }
    }
}

/// Mixes the engine seed with a fault index into an independent stream.
fn per_fault_seed(seed: u64, fault_index: usize) -> u64 {
    seed ^ (fault_index as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD1B5_4A32_D192_ED03)
}

/// Fanin-driven variable order: DFS from each primary output through the
/// gate drivers, appending primary inputs at first visit. Inputs feeding
/// the same output cone land next to each other — the interleaving that
/// keeps ripple/chain BDDs linear. Returns PI *indices* in variable
/// order; unreachable inputs are appended at the end.
fn fanin_dfs_order(net: &Network) -> Vec<usize> {
    let n = net.primary_inputs().len();
    let mut pi_index_of_net: HashMap<usize, usize> = HashMap::with_capacity(n);
    for (i, &pi) in net.primary_inputs().iter().enumerate() {
        pi_index_of_net.insert(pi.index(), i);
    }
    let mut order = Vec::with_capacity(n);
    let mut seen_pi = vec![false; n];
    let mut seen_gate = vec![false; net.gates().len()];
    // Iterative DFS over nets (explicit stack: netlists can be deep).
    let mut stack: Vec<usize> = Vec::new();
    for &po in net.primary_outputs() {
        stack.push(po.index());
        while let Some(net_idx) = stack.pop() {
            if let Some(&i) = pi_index_of_net.get(&net_idx) {
                if !seen_pi[i] {
                    seen_pi[i] = true;
                    order.push(i);
                }
                continue;
            }
            let Some(g) = net.driver(dynmos_netlist::NetId(net_idx as u32)) else {
                continue;
            };
            if seen_gate[g.index()] {
                continue;
            }
            seen_gate[g.index()] = true;
            // Push in reverse so the first declared input is visited
            // first (deterministic order).
            for &input in net.gates()[g.index()].inputs.iter().rev() {
                stack.push(input.index());
            }
        }
    }
    for (i, &seen) in seen_pi.iter().enumerate().take(n) {
        if !seen {
            order.push(i);
        }
    }
    order
}

/// Rebuilds only the fault's fanout cone with the fault injected and
/// returns the Boolean difference (OR of XORs at the observable
/// outputs). `FALSE` proves the fault undetectable.
fn build_diff(
    net: &Network,
    bdd: &mut Bdd,
    good: &[BddRef],
    fault: &NetworkFault,
) -> Result<BddRef, dynmos_logic::BddOverflow> {
    let prepared = net.prepare_fault(fault);
    let mut faulty: HashMap<usize, BddRef> = HashMap::new();
    if let NetworkFault::NetStuck(netid, v) = fault {
        faulty.insert(netid.index(), if *v { BddRef::TRUE } else { BddRef::FALSE });
    }
    for &pos in prepared.cone_positions() {
        let g = net.topo_order()[pos as usize];
        let inst = &net.gates()[g.index()];
        let function = match fault {
            NetworkFault::GateFunction(fg, f) if *fg == g => f.clone(),
            _ => net.cell_of(g).logic_function(),
        };
        let inputs = inst.inputs.clone();
        let out = bdd.try_eval_expr_over(&function, &|v| {
            let nid = inputs[v.index()].index();
            faulty.get(&nid).copied().unwrap_or(good[nid])
        })?;
        let out_idx = inst.output.index();
        // A stuck net stays stuck regardless of what its readers see
        // upstream; never overwrite the forced constant.
        let stuck_here = matches!(fault, NetworkFault::NetStuck(nid, _) if nid.index() == out_idx);
        if !stuck_here {
            faulty.insert(out_idx, out);
        }
    }
    let mut diff = BddRef::FALSE;
    for &po_idx in prepared.observable_outputs() {
        let po = net.primary_outputs()[po_idx as usize].index();
        let bad = faulty.get(&po).copied().unwrap_or(good[po]);
        let x = bdd.try_xor(good[po], bad)?;
        diff = bdd.try_or(diff, x)?;
    }
    Ok(diff)
}

// ---------------------------------------------------------------------
// Cutting tier: certified interval propagation.
// ---------------------------------------------------------------------

fn union_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

fn disjoint(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & y == 0)
}

/// Per-net primary-input support bitsets (one `u64` word per 64 PIs).
fn pi_supports(net: &Network) -> Vec<Vec<u64>> {
    let n = net.primary_inputs().len();
    let words = n.div_ceil(64).max(1);
    let mut supp = vec![vec![0u64; words]; net.net_count()];
    for (i, &pi) in net.primary_inputs().iter().enumerate() {
        supp[pi.index()][i / 64] |= 1u64 << (i % 64);
    }
    for &g in net.topo_order() {
        let inst = &net.gates()[g.index()];
        let function = net.cell_of(g).logic_function();
        let mut s = vec![0u64; words];
        for v in function.support() {
            union_into(&mut s, &supp[inst.inputs[v.index()].index()]);
        }
        supp[inst.output.index()] = s;
    }
    supp
}

/// A probability interval with the support of the underlying event.
#[derive(Clone)]
struct IvS {
    lo: f64,
    hi: f64,
    supp: Vec<u64>,
}

impl IvS {
    fn constant(b: bool, words: usize) -> IvS {
        let p = if b { 1.0 } else { 0.0 };
        IvS {
            lo: p,
            hi: p,
            supp: vec![0u64; words],
        }
    }

    fn clamp(mut self) -> IvS {
        self.lo = self.lo.clamp(0.0, 1.0);
        self.hi = self.hi.clamp(self.lo, 1.0);
        self
    }
}

/// AND of two events: exact product rule when the supports are provably
/// independent (disjoint), Fréchet bounds otherwise.
fn and_iv(a: &IvS, b: &IvS) -> IvS {
    let mut supp = a.supp.clone();
    union_into(&mut supp, &b.supp);
    let (lo, hi) = if disjoint(&a.supp, &b.supp) {
        (a.lo * b.lo, a.hi * b.hi)
    } else {
        ((a.lo + b.lo - 1.0).max(0.0), a.hi.min(b.hi))
    };
    IvS { lo, hi, supp }.clamp()
}

/// OR of two events: independence rule on disjoint supports, Fréchet
/// bounds otherwise.
fn or_iv(a: &IvS, b: &IvS) -> IvS {
    let mut supp = a.supp.clone();
    union_into(&mut supp, &b.supp);
    let (lo, hi) = if disjoint(&a.supp, &b.supp) {
        (a.lo + b.lo - a.lo * b.lo, a.hi + b.hi - a.hi * b.hi)
    } else {
        (a.lo.max(b.lo), (a.hi + b.hi).min(1.0))
    };
    IvS { lo, hi, supp }.clamp()
}

fn not_iv(a: &IvS) -> IvS {
    IvS {
        lo: 1.0 - a.hi,
        hi: 1.0 - a.lo,
        supp: a.supp.clone(),
    }
    .clamp()
}

/// XOR of two events. Disjoint supports: `pa + pb - 2 pa pb` is bilinear,
/// so the extremes sit at the interval corners. Overlapping supports:
/// `P(a xor b) >= |P(a)-P(b)|` and `P(a xor b) <= min(P(a)+P(b),
/// 2-P(a)-P(b))` hold for any joint distribution.
fn xor_iv(a: &IvS, b: &IvS) -> IvS {
    let mut supp = a.supp.clone();
    union_into(&mut supp, &b.supp);
    let (lo, hi) = if disjoint(&a.supp, &b.supp) {
        let f = |pa: f64, pb: f64| pa + pb - 2.0 * pa * pb;
        let corners = [f(a.lo, b.lo), f(a.lo, b.hi), f(a.hi, b.lo), f(a.hi, b.hi)];
        (
            corners.iter().cloned().fold(f64::INFINITY, f64::min),
            corners.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        )
    } else {
        (
            (a.lo - b.hi).max(b.lo - a.hi).max(0.0),
            (a.hi + b.hi).min(2.0 - a.lo - b.lo).min(1.0),
        )
    };
    IvS { lo, hi, supp }.clamp()
}

/// Evaluates a gate function over operand intervals.
fn expr_interval(expr: &Bexpr, words: usize, leaf: &impl Fn(VarId) -> IvS) -> IvS {
    match expr {
        Bexpr::Const(b) => IvS::constant(*b, words),
        Bexpr::Var(v) => leaf(*v),
        Bexpr::Not(e) => not_iv(&expr_interval(e, words, leaf)),
        Bexpr::And(ts) => {
            let mut acc = IvS::constant(true, words);
            for t in ts {
                let b = expr_interval(t, words, leaf);
                acc = and_iv(&acc, &b);
            }
            acc
        }
        Bexpr::Or(ts) => {
            let mut acc = IvS::constant(false, words);
            for t in ts {
                let b = expr_interval(t, words, leaf);
                acc = or_iv(&acc, &b);
            }
            acc
        }
    }
}

/// Good-machine probability intervals per net: point intervals at the
/// primary inputs, widening only where reconvergence forces a cut.
fn good_intervals(net: &Network, pi_probs: &[f64], supports: &[Vec<u64>]) -> Vec<(f64, f64)> {
    let words = supports.first().map_or(1, Vec::len);
    let mut iv = vec![(0.0, 0.0); net.net_count()];
    for (i, &pi) in net.primary_inputs().iter().enumerate() {
        iv[pi.index()] = (pi_probs[i], pi_probs[i]);
    }
    for &g in net.topo_order() {
        let inst = &net.gates()[g.index()];
        let function = net.cell_of(g).logic_function();
        let inputs = &inst.inputs;
        let out = expr_interval(&function, words, &|v| {
            let nid = inputs[v.index()].index();
            IvS {
                lo: iv[nid].0,
                hi: iv[nid].1,
                supp: supports[nid].clone(),
            }
        });
        iv[inst.output.index()] = (out.lo, out.hi);
    }
    iv
}

/// Certified `[low, high]` detection-probability bounds for one fault:
/// interval-propagates the faulty cone over the good-machine intervals
/// and bounds the OR of per-output XOR events with Fréchet rules.
fn fault_bounds(
    net: &Network,
    fault: &NetworkFault,
    good_iv: &[(f64, f64)],
    supports: &[Vec<u64>],
) -> (f64, f64) {
    let words = supports.first().map_or(1, Vec::len);
    let prepared = net.prepare_fault(fault);
    let mut f_iv: HashMap<usize, (f64, f64)> = HashMap::new();
    let mut f_supp: HashMap<usize, Vec<u64>> = HashMap::new();
    if let NetworkFault::NetStuck(netid, v) = fault {
        let p = if *v { 1.0 } else { 0.0 };
        f_iv.insert(netid.index(), (p, p));
        f_supp.insert(netid.index(), vec![0u64; words]);
    }
    for &pos in prepared.cone_positions() {
        let g = net.topo_order()[pos as usize];
        let inst = &net.gates()[g.index()];
        let function = match fault {
            NetworkFault::GateFunction(fg, f) if *fg == g => f.clone(),
            _ => net.cell_of(g).logic_function(),
        };
        let inputs = &inst.inputs;
        let out = expr_interval(&function, words, &|v| {
            let nid = inputs[v.index()].index();
            let (lo, hi) = f_iv.get(&nid).copied().unwrap_or(good_iv[nid]);
            let supp = f_supp
                .get(&nid)
                .cloned()
                .unwrap_or_else(|| supports[nid].clone());
            IvS { lo, hi, supp }
        });
        let out_idx = inst.output.index();
        let stuck_here = matches!(fault, NetworkFault::NetStuck(nid, _) if nid.index() == out_idx);
        if !stuck_here {
            f_iv.insert(out_idx, (out.lo, out.hi));
            f_supp.insert(out_idx, out.supp);
        }
    }
    // Detection = OR over observable outputs of XOR(good, faulty).
    let mut det = IvS::constant(false, words);
    for &po_idx in prepared.observable_outputs() {
        let po = net.primary_outputs()[po_idx as usize].index();
        let good = IvS {
            lo: good_iv[po].0,
            hi: good_iv[po].1,
            supp: supports[po].clone(),
        };
        let (blo, bhi) = f_iv.get(&po).copied().unwrap_or(good_iv[po]);
        if !f_iv.contains_key(&po) {
            // The faulty machine equals the good machine here; the XOR
            // is identically false.
            continue;
        }
        let bad = IvS {
            lo: blo,
            hi: bhi,
            supp: f_supp
                .get(&po)
                .cloned()
                .unwrap_or_else(|| supports[po].clone()),
        };
        let x = xor_iv(&good, &bad);
        det = or_iv(&det, &x);
    }
    (det.lo, det.hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detection_probabilities;
    use crate::list::network_fault_list;
    use dynmos_netlist::generate::{c17_dynamic_nmos, carry_chain, random_domino_network};

    fn probs_for(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.25 + 0.4 * (i as f64 % 2.0)).collect()
    }

    #[test]
    fn bdd_tier_matches_enumeration_on_c17() {
        let net = c17_dynamic_nmos();
        let faults = network_fault_list(&net);
        let probs = probs_for(net.primary_inputs().len());
        let exact = detection_probabilities(&net, &faults, &probs);
        let mut engine = DetectionEngine::new(&net, &faults, TestabilityConfig::new(TierMode::Bdd));
        let got = engine
            .estimates(&probs, &RunBudget::unlimited())
            .expect("unlimited");
        for ((e, g), entry) in exact.iter().zip(&got).zip(&faults) {
            assert_eq!(g.method, EstimateMethod::Bdd, "{}", entry.label);
            assert!(
                (e - g.value).abs() < 1e-12,
                "{}: {e} vs {}",
                entry.label,
                g.value
            );
        }
    }

    #[test]
    fn cutting_bounds_contain_exact_on_random_networks() {
        for seed in 0..30 {
            let net = random_domino_network(seed, 4, 6);
            if net.primary_inputs().len() > 16 {
                continue;
            }
            let faults = network_fault_list(&net);
            let probs = probs_for(net.primary_inputs().len());
            let exact = detection_probabilities(&net, &faults, &probs);
            let mut engine = DetectionEngine::new(
                &net,
                &faults,
                TestabilityConfig::new(TierMode::Cutting).with_mc_tighten_samples(0),
            );
            let got = engine
                .estimates(&probs, &RunBudget::unlimited())
                .expect("unlimited");
            for ((e, g), entry) in exact.iter().zip(&got).zip(&faults) {
                assert_eq!(g.method, EstimateMethod::Cutting);
                let (lo, hi) = g.bounds.expect("cutting reports bounds");
                assert!(
                    lo - 1e-12 <= *e && *e <= hi + 1e-12,
                    "seed {seed} {}: exact {e} outside [{lo}, {hi}]",
                    entry.label
                );
            }
        }
    }

    #[test]
    fn auto_tier_uses_exact_within_cap() {
        let net = c17_dynamic_nmos();
        let faults = network_fault_list(&net);
        let probs = probs_for(net.primary_inputs().len());
        let mut engine =
            DetectionEngine::new(&net, &faults, TestabilityConfig::new(TierMode::Auto));
        let got = engine
            .estimates(&probs, &RunBudget::unlimited())
            .expect("unlimited");
        assert!(got.iter().all(|e| e.method == EstimateMethod::Exact));
        let exact = detection_probabilities(&net, &faults, &probs);
        for (e, g) in exact.iter().zip(&got) {
            assert_eq!(*e, g.value, "exact tier must be bit-identical");
        }
    }

    #[test]
    fn auto_tier_goes_symbolic_over_cap() {
        // carry_chain(30): 61 inputs, far beyond any enumeration cap.
        let net = carry_chain(30);
        let faults = network_fault_list(&net);
        let probs = vec![0.5; net.primary_inputs().len()];
        let mut engine =
            DetectionEngine::new(&net, &faults, TestabilityConfig::new(TierMode::Auto));
        let got = engine
            .estimates(&probs, &RunBudget::unlimited())
            .expect("unlimited");
        assert!(got
            .iter()
            .all(|e| matches!(e.method, EstimateMethod::Bdd | EstimateMethod::Cutting)));
        assert!(
            got.iter().any(|e| e.method == EstimateMethod::Bdd),
            "chain BDDs fit comfortably in the default budget"
        );
        for e in &got {
            assert!((0.0..=1.0).contains(&e.value));
        }
    }

    #[test]
    fn tiny_node_budget_degrades_to_cutting_with_sound_bounds() {
        let net = c17_dynamic_nmos();
        let faults = network_fault_list(&net);
        let probs = probs_for(net.primary_inputs().len());
        let exact = detection_probabilities(&net, &faults, &probs);
        // A 4-node budget cannot even hold the good machine.
        let mut engine = DetectionEngine::new(
            &net,
            &faults,
            TestabilityConfig::new(TierMode::Bdd)
                .with_node_budget(4)
                .with_mc_tighten_samples(256),
        );
        let got = engine
            .estimates(&probs, &RunBudget::unlimited())
            .expect("unlimited");
        for ((e, g), entry) in exact.iter().zip(&got).zip(&faults) {
            assert_eq!(g.method, EstimateMethod::Cutting, "{}", entry.label);
            let (lo, hi) = g.bounds.expect("bounds");
            assert!(lo - 1e-12 <= *e && *e <= hi + 1e-12, "{}", entry.label);
            assert!(lo <= g.value && g.value <= hi, "{}", entry.label);
        }
    }

    #[test]
    fn streaming_resume_is_bit_identical() {
        let net = carry_chain(12);
        let faults = network_fault_list(&net);
        let probs = vec![0.4; net.primary_inputs().len()];
        let config = TestabilityConfig::new(TierMode::Bdd).with_node_budget(200);
        let mut whole = DetectionEngine::new(&net, &faults, config.clone());
        let all = whole
            .estimates(&probs, &RunBudget::unlimited())
            .expect("unlimited");
        // Restart at every third boundary with a fresh engine; values
        // must match bit for bit.
        let mut resumed: Vec<DetectionEstimate> = Vec::new();
        let mut next = 0usize;
        while next < faults.len() {
            let stop_at = (next + 3).min(faults.len());
            let mut engine = DetectionEngine::new(&net, &faults, config.clone());
            let mut batch = Vec::new();
            let status =
                engine.estimates_from(next, &probs, &RunBudget::unlimited(), &mut |i, est| {
                    if i < stop_at {
                        batch.push((i, est));
                    }
                });
            assert!(status.is_complete());
            for (i, est) in batch {
                if i < stop_at {
                    resumed.push(est);
                    next = i + 1;
                }
            }
        }
        assert_eq!(all.len(), resumed.len());
        for (a, b) in all.iter().zip(&resumed) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
            assert_eq!(a.method, b.method);
        }
    }

    #[test]
    fn env_override_parses_and_rejects_garbage() {
        assert_eq!(parse_testability_override(None), None);
        assert_eq!(parse_testability_override(Some("")), None);
        assert_eq!(
            parse_testability_override(Some(" bdd ")),
            Some(TierMode::Bdd)
        );
        assert_eq!(
            parse_testability_override(Some("CUTTING")),
            Some(TierMode::Cutting)
        );
        assert!(std::panic::catch_unwind(|| parse_testability_override(Some("fast"))).is_err());
    }

    #[test]
    fn tier_census_formats_counts() {
        let methods = [
            EstimateMethod::Exact,
            EstimateMethod::Bdd,
            EstimateMethod::Bdd,
            EstimateMethod::Cutting,
        ];
        assert_eq!(tier_census(methods.iter()), "exact:1,bdd:2,cutting:1,mc:0");
    }
}
