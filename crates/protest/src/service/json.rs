//! A minimal, dependency-free JSON value: enough for the job service's
//! JSON-lines protocol (parse requests, emit records) without pulling a
//! serialization crate into the workspace.
//!
//! The emitter is deterministic — object members keep insertion order,
//! integers within `±2^53` print without a decimal point, other finite
//! numbers use Rust's shortest-roundtrip `f64` formatting — so two runs
//! producing equal values produce byte-equal lines, which is what the
//! service's bit-identical differential tests compare.

#![deny(clippy::unwrap_used)]
// Durable path (dynlint zone: durable): a panic mid-append can
// fabricate a torn record the recovery logic then trusts, so even
// "impossible" unwraps are compiler-rejected in this module.
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// lookup; all are emitted).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience number constructor for integer counts.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Member lookup on an object (`None` for non-objects and missing
    /// keys; the last duplicate wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives, and values past `2^53`).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n)).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing non-whitespace is an error).
    ///
    /// # Errors
    ///
    /// Returns the byte position and a message for malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// A parse failure: byte position plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character {:?}", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("bad number {text:?}")))
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.error("bad \\u escape"))?;
        let code = u16::from_str_radix(text, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must
                                // follow immediately.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                }
                                self.expect_byte(b'u')
                                    .map_err(|_| self.error("lone high surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("bad low surrogate"));
                                }
                                let code = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.error("bad surrogate"))?
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.error("lone surrogate"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity; null is the honest spelling.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-3", "12345", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "{text}");
        }
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("1e3").unwrap().to_string(), "1000");
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#" {"a": [1, 2, {"b": null}], "c": "x" } "#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(v.to_string(), r#"{"a":[1,2,{"b":null}],"c":"x"}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        let emitted = v.to_string();
        assert_eq!(Json::parse(&emitted).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}", "\"x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("5".into()).as_u64(), None);
    }

    #[test]
    fn duplicate_keys_last_wins_on_lookup() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
