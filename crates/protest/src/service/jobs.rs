//! The [`JobKernel`] abstraction and the built-in kernels wrapping
//! every budgeted PROTEST kernel in this crate.
//!
//! A kernel runs in supervisor-scheduled **legs**: each
//! [`JobKernel::run_leg`] call advances the job under one
//! [`RunBudget`] and returns whether the job completed or stopped at a
//! checkpointable boundary. Kernels commit state **only on return** —
//! a leg that dies mid-flight (injected kill, worker panic) leaves the
//! kernel exactly at its previous checkpoint, which is what makes
//! supervisor retries bit-identical to an uninterrupted run for the
//! checkpointed kernels (fault simulation, both Monte Carlo
//! estimators) and merely idempotent-restarted for the rest.

use crate::budget::{RunBudget, RunStatus};
use crate::detect::{detection_probability_estimates, DetectionEstimate, EstimateMethod};
use crate::fsim::{FaultSimulator, FsimCheckpoint, FsimOutcome};
use crate::length::{test_length_budgeted, LengthError};
use crate::list::FaultEntry;
use crate::montecarlo::{
    mc_detection_probabilities_budgeted, mc_detection_resume, mc_signal_probability_budgeted,
    mc_signal_resume, Estimate, McCheckpoint,
};
use crate::optimize::{optimize_input_probabilities_budgeted, OptimizeReport};
use crate::parallel::Parallelism;
use crate::random::PatternSource;
use crate::service::json::Json;
use crate::testability::{tier_census, DetectionEngine, TestabilityConfig, TierMode};
use dynmos_netlist::Network;
use std::sync::Arc;

/// Default seed for kernels whose request omits one (shared with the
/// `faultlib` CLI).
pub const DEFAULT_SEED: u64 = 0x00DA_C086;

/// Default pattern/sample budget for fsim and Monte Carlo jobs.
const DEFAULT_WORK: u64 = 10_000;

/// Default confidence for length/optimize jobs.
const DEFAULT_CONFIDENCE: f64 = 0.999;

/// Everything a kernel factory gets to build a job from a request.
pub struct JobContext<'a> {
    /// The compiled network (shared with the cache).
    pub net: Arc<Network>,
    /// The fault list derived from the request.
    pub faults: Vec<FaultEntry>,
    /// The engine's thread policy.
    pub parallelism: Parallelism,
    /// The raw request object — kernels read their parameters from it
    /// (see [`param_u64`] and friends).
    pub params: &'a Json,
}

/// One supervised job kernel: a budgeted PROTEST kernel plus enough
/// state to resume across legs.
pub trait JobKernel: Send {
    /// The job-kind token (`"fsim"`, `"mc-detect"`, …).
    fn kind(&self) -> &'static str;

    /// Advances the job under `budget`. Must commit state only on
    /// return, and must make forward progress on every call with a
    /// non-degenerate budget (the underlying kernels guarantee one
    /// chunk per call).
    fn run_leg(&mut self, budget: &RunBudget) -> RunStatus;

    /// The job's result so far — a deterministic JSON value (partial
    /// results are valid for interrupted jobs; completed jobs report
    /// results bit-identical to an uninterrupted run).
    fn output(&self) -> Json;

    /// The last worker failure this kernel observed, if any.
    fn last_error(&self) -> Option<String> {
        None
    }

    /// The kernel's serializable resume state — everything committed at
    /// the last returned leg, as JSON the write-ahead journal can
    /// persist. The default (`Json::Null`) is correct for kernels with
    /// no cross-leg state: restoring them restarts the (deterministic)
    /// computation from scratch.
    ///
    /// Snapshots carry *resume* state only, never terminal output; a
    /// completed job is journaled via its terminal record instead.
    fn snapshot(&self) -> Json {
        Json::Null
    }

    /// Restores a kernel freshly built from its original request to a
    /// prior [`JobKernel::snapshot`]. Resuming from the restored state
    /// completes bit-identical to the uninterrupted run (the service
    /// determinism contract, now across process boundaries).
    ///
    /// # Errors
    ///
    /// Returns a message when the snapshot does not round-trip (wrong
    /// kind, mistyped fields) — the journal is then treated as corrupt.
    fn restore(&mut self, snapshot: &Json) -> Result<(), String> {
        match snapshot {
            Json::Null => Ok(()),
            other => Err(format!(
                "{} kernel carries no resumable state, got snapshot {other}",
                self.kind()
            )),
        }
    }
}

/// Shared shape of the checkpointed kernels' snapshots: the `started`
/// flag plus an optional checkpoint object.
fn snapshot_with_checkpoint(started: bool, checkpoint: Option<Json>) -> Json {
    Json::Obj(vec![
        ("started".into(), Json::Bool(started)),
        ("checkpoint".into(), checkpoint.unwrap_or(Json::Null)),
    ])
}

/// Reads back [`snapshot_with_checkpoint`]: `(started, checkpoint)`.
fn parse_snapshot<'a>(kind: &str, snapshot: &'a Json) -> Result<(bool, Option<&'a Json>), String> {
    let started = snapshot
        .get("started")
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("{kind} snapshot: bad or missing \"started\""))?;
    let checkpoint = match snapshot.get("checkpoint") {
        None | Some(Json::Null) => None,
        Some(cp) => Some(cp),
    };
    Ok((started, checkpoint))
}

/// Reads an unsigned-integer parameter with a default.
pub fn param_u64(params: &Json, key: &str, default: u64) -> u64 {
    params.get(key).and_then(Json::as_u64).unwrap_or(default)
}

/// Reads a float parameter with a default.
pub fn param_f64(params: &Json, key: &str, default: f64) -> f64 {
    params.get(key).and_then(Json::as_f64).unwrap_or(default)
}

/// Reads a per-input probability vector: the request's `probs` array
/// when present (validated for arity and range), else `default` for
/// every input.
///
/// # Errors
///
/// Returns a message on arity mismatch, non-numbers, or values outside
/// `[0, 1]`.
pub fn param_probs(params: &Json, n: usize, default: f64) -> Result<Vec<f64>, String> {
    match params.get("probs") {
        None => Ok(vec![default; n]),
        Some(Json::Arr(items)) => {
            if items.len() != n {
                return Err(format!(
                    "probs has {} entries, network has {n} inputs",
                    items.len()
                ));
            }
            items
                .iter()
                .map(|v| match v.as_f64() {
                    Some(p) if (0.0..=1.0).contains(&p) => Ok(p),
                    _ => Err(format!("probs entry {v} is not a probability")),
                })
                .collect()
        }
        Some(other) => Err(format!("probs must be an array, got {other}")),
    }
}

fn estimates_json(estimates: &[Estimate]) -> Json {
    Json::Arr(
        estimates
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("value".into(), Json::Num(e.value)),
                    ("half_width".into(), Json::Num(e.half_width)),
                    ("samples".into(), Json::num(e.samples)),
                ])
            })
            .collect(),
    )
}

/// Weighted-random fault simulation ([`FaultSimulator`]) with a
/// resumable [`FsimCheckpoint`] between legs.
pub struct FsimJob {
    net: Arc<Network>,
    faults: Vec<FaultEntry>,
    parallelism: Parallelism,
    seed: u64,
    probs: Vec<f64>,
    max_patterns: u64,
    state: Option<FsimCheckpoint>,
    started: bool,
    outcome: Option<FsimOutcome>,
    complete: bool,
    error: Option<String>,
}

impl FsimJob {
    /// Builds the job from a request (`patterns`, `seed`, `probs`).
    ///
    /// # Errors
    ///
    /// Returns a message for invalid `probs`.
    pub fn from_request(ctx: JobContext<'_>) -> Result<Self, String> {
        let n = ctx.net.primary_inputs().len();
        Ok(Self {
            probs: param_probs(ctx.params, n, 0.5)?,
            seed: param_u64(ctx.params, "seed", DEFAULT_SEED),
            max_patterns: param_u64(ctx.params, "patterns", DEFAULT_WORK),
            net: ctx.net,
            faults: ctx.faults,
            parallelism: ctx.parallelism,
            state: None,
            started: false,
            outcome: None,
            complete: false,
            error: None,
        })
    }
}

impl JobKernel for FsimJob {
    fn kind(&self) -> &'static str {
        "fsim"
    }

    fn run_leg(&mut self, budget: &RunBudget) -> RunStatus {
        // The source is rebuilt per leg: batch addressing in the
        // checkpoint is absolute, so only the stream (seed + weights)
        // matters, not a cursor surviving between legs.
        let mut src = PatternSource::new(self.seed, self.probs.clone());
        let sim = FaultSimulator::with_parallelism(&self.net, self.parallelism);
        let run = match self.state.take() {
            Some(cp) => sim.resume_random(&self.faults, &mut src, cp, budget),
            None if !self.started => {
                self.started = true;
                sim.run_random_budgeted(&self.faults, &mut src, self.max_patterns, budget)
            }
            // Completed earlier and re-run: re-report the same result.
            None => return RunStatus::Completed,
        };
        self.error = run.worker_error.map(|e| e.to_string());
        self.state = run.checkpoint;
        self.complete = run.status.is_complete();
        self.outcome = Some(run.outcome);
        run.status
    }

    fn output(&self) -> Json {
        let Some(out) = &self.outcome else {
            return Json::Obj(vec![("kind".into(), Json::str("fsim"))]);
        };
        Json::Obj(vec![
            ("kind".into(), Json::str("fsim")),
            ("patterns".into(), Json::num(out.patterns_applied)),
            ("coverage".into(), Json::Num(out.coverage())),
            (
                "detected_at".into(),
                Json::Arr(
                    out.detected_at
                        .iter()
                        .map(|d| d.map_or(Json::Null, Json::num))
                        .collect(),
                ),
            ),
            ("complete".into(), Json::Bool(self.complete)),
        ])
    }

    fn last_error(&self) -> Option<String> {
        self.error.clone()
    }

    fn snapshot(&self) -> Json {
        snapshot_with_checkpoint(
            self.started,
            self.state.as_ref().map(FsimCheckpoint::to_json),
        )
    }

    fn restore(&mut self, snapshot: &Json) -> Result<(), String> {
        let (started, checkpoint) = parse_snapshot("fsim", snapshot)?;
        self.started = started;
        self.state = checkpoint.map(FsimCheckpoint::from_json).transpose()?;
        Ok(())
    }
}

/// Monte Carlo detection-probability estimation with a resumable
/// [`McCheckpoint`].
pub struct McDetectJob {
    net: Arc<Network>,
    faults: Vec<FaultEntry>,
    parallelism: Parallelism,
    seed: u64,
    probs: Vec<f64>,
    samples: u64,
    state: Option<McCheckpoint>,
    started: bool,
    estimates: Vec<Estimate>,
    complete: bool,
    error: Option<String>,
}

impl McDetectJob {
    /// Builds the job from a request (`samples`, `seed`, `probs`).
    ///
    /// # Errors
    ///
    /// Returns a message for invalid `probs`.
    pub fn from_request(ctx: JobContext<'_>) -> Result<Self, String> {
        let n = ctx.net.primary_inputs().len();
        Ok(Self {
            probs: param_probs(ctx.params, n, 0.5)?,
            seed: param_u64(ctx.params, "seed", DEFAULT_SEED),
            samples: param_u64(ctx.params, "samples", DEFAULT_WORK).max(1),
            net: ctx.net,
            faults: ctx.faults,
            parallelism: ctx.parallelism,
            state: None,
            started: false,
            estimates: Vec::new(),
            complete: false,
            error: None,
        })
    }
}

impl JobKernel for McDetectJob {
    fn kind(&self) -> &'static str {
        "mc-detect"
    }

    fn run_leg(&mut self, budget: &RunBudget) -> RunStatus {
        let run = match self.state.take() {
            Some(cp) => mc_detection_resume(
                &self.net,
                &self.faults,
                &self.probs,
                self.seed,
                self.parallelism,
                budget,
                cp,
            ),
            None if !self.started => {
                self.started = true;
                mc_detection_probabilities_budgeted(
                    &self.net,
                    &self.faults,
                    &self.probs,
                    self.seed,
                    self.samples,
                    self.parallelism,
                    budget,
                )
            }
            None => return RunStatus::Completed,
        };
        self.error = run.worker_error.map(|e| e.to_string());
        self.state = run.checkpoint;
        self.complete = run.status.is_complete();
        self.estimates = run.estimates;
        run.status
    }

    fn output(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::str("mc-detect")),
            ("estimates".into(), estimates_json(&self.estimates)),
            ("complete".into(), Json::Bool(self.complete)),
        ])
    }

    fn last_error(&self) -> Option<String> {
        self.error.clone()
    }

    fn snapshot(&self) -> Json {
        snapshot_with_checkpoint(self.started, self.state.as_ref().map(McCheckpoint::to_json))
    }

    fn restore(&mut self, snapshot: &Json) -> Result<(), String> {
        let (started, checkpoint) = parse_snapshot("mc-detect", snapshot)?;
        self.started = started;
        self.state = checkpoint.map(McCheckpoint::from_json).transpose()?;
        Ok(())
    }
}

/// Monte Carlo signal-probability estimation for one primary output,
/// with a resumable [`McCheckpoint`].
pub struct McSignalJob {
    net: Arc<Network>,
    parallelism: Parallelism,
    output_index: usize,
    seed: u64,
    probs: Vec<f64>,
    samples: u64,
    state: Option<McCheckpoint>,
    started: bool,
    estimate: Option<Estimate>,
    complete: bool,
    error: Option<String>,
}

impl McSignalJob {
    /// Builds the job from a request (`output` index, `samples`,
    /// `seed`, `probs`).
    ///
    /// # Errors
    ///
    /// Returns a message for invalid `probs` or an out-of-range
    /// `output`.
    pub fn from_request(ctx: JobContext<'_>) -> Result<Self, String> {
        let n = ctx.net.primary_inputs().len();
        let outputs = ctx.net.primary_outputs().len();
        let output_index = param_u64(ctx.params, "output", 0) as usize;
        if output_index >= outputs {
            return Err(format!(
                "output index {output_index} out of range (network has {outputs} outputs)"
            ));
        }
        Ok(Self {
            probs: param_probs(ctx.params, n, 0.5)?,
            seed: param_u64(ctx.params, "seed", DEFAULT_SEED),
            samples: param_u64(ctx.params, "samples", DEFAULT_WORK).max(1),
            output_index,
            net: ctx.net,
            parallelism: ctx.parallelism,
            state: None,
            started: false,
            estimate: None,
            complete: false,
            error: None,
        })
    }
}

impl JobKernel for McSignalJob {
    fn kind(&self) -> &'static str {
        "mc-signal"
    }

    fn run_leg(&mut self, budget: &RunBudget) -> RunStatus {
        let target = self.net.primary_outputs()[self.output_index];
        let run = match self.state.take() {
            Some(cp) => mc_signal_resume(
                &self.net,
                target,
                &self.probs,
                self.seed,
                self.parallelism,
                budget,
                cp,
            ),
            None if !self.started => {
                self.started = true;
                mc_signal_probability_budgeted(
                    &self.net,
                    target,
                    &self.probs,
                    self.seed,
                    self.samples,
                    self.parallelism,
                    budget,
                )
            }
            None => return RunStatus::Completed,
        };
        self.error = run.worker_error.map(|e| e.to_string());
        self.state = run.checkpoint;
        self.complete = run.status.is_complete();
        self.estimate = Some(run.estimate);
        run.status
    }

    fn output(&self) -> Json {
        let mut members = vec![
            ("kind".into(), Json::str("mc-signal")),
            ("output".into(), Json::num(self.output_index as u64)),
        ];
        if let Some(e) = &self.estimate {
            members.push(("value".into(), Json::Num(e.value)));
            members.push(("half_width".into(), Json::Num(e.half_width)));
            members.push(("samples".into(), Json::num(e.samples)));
        }
        members.push(("complete".into(), Json::Bool(self.complete)));
        Json::Obj(members)
    }

    fn last_error(&self) -> Option<String> {
        self.error.clone()
    }

    fn snapshot(&self) -> Json {
        snapshot_with_checkpoint(self.started, self.state.as_ref().map(McCheckpoint::to_json))
    }

    fn restore(&mut self, snapshot: &Json) -> Result<(), String> {
        let (started, checkpoint) = parse_snapshot("mc-signal", snapshot)?;
        self.started = started;
        self.state = checkpoint.map(McCheckpoint::from_json).transpose()?;
        Ok(())
    }
}

/// The exact-with-Monte-Carlo-degradation detection estimator
/// ([`detection_probability_estimates`]). No checkpoint exists for this
/// kernel, so an interrupted leg (or a process crash — its journal
/// snapshot is the default `null`) restarts from scratch — completion
/// is still deterministic because the estimator is a pure function of
/// `(net, faults, probs, seed)`.
pub struct DetectEstimatesJob {
    net: Arc<Network>,
    faults: Vec<FaultEntry>,
    parallelism: Parallelism,
    seed: u64,
    probs: Vec<f64>,
    max_exact_rows: Option<u64>,
    result: Option<Vec<DetectionEstimate>>,
}

impl DetectEstimatesJob {
    /// Builds the job from a request (`seed`, `probs`,
    /// `max_exact_rows`).
    ///
    /// # Errors
    ///
    /// Returns a message for invalid `probs`.
    pub fn from_request(ctx: JobContext<'_>) -> Result<Self, String> {
        let n = ctx.net.primary_inputs().len();
        Ok(Self {
            probs: param_probs(ctx.params, n, 0.5)?,
            seed: param_u64(ctx.params, "seed", DEFAULT_SEED),
            max_exact_rows: ctx.params.get("max_exact_rows").and_then(Json::as_u64),
            net: ctx.net,
            faults: ctx.faults,
            parallelism: ctx.parallelism,
            result: None,
        })
    }

    fn budget_with_rows(&self, budget: &RunBudget) -> RunBudget {
        let mut b = budget.clone();
        b.max_exact_rows = self.max_exact_rows.or(b.max_exact_rows);
        b
    }
}

impl JobKernel for DetectEstimatesJob {
    fn kind(&self) -> &'static str {
        "detect"
    }

    fn run_leg(&mut self, budget: &RunBudget) -> RunStatus {
        if self.result.is_some() {
            return RunStatus::Completed;
        }
        match detection_probability_estimates(
            &self.net,
            &self.faults,
            &self.probs,
            self.seed,
            self.parallelism,
            &self.budget_with_rows(budget),
        ) {
            Ok(est) => {
                self.result = Some(est);
                RunStatus::Completed
            }
            Err(reason) => RunStatus::Interrupted(reason),
        }
    }

    fn output(&self) -> Json {
        let estimates = self.result.as_deref().unwrap_or(&[]);
        Json::Obj(vec![
            ("kind".into(), Json::str("detect")),
            (
                "estimates".into(),
                Json::Arr(estimates.iter().map(estimate_json).collect()),
            ),
            ("complete".into(), Json::Bool(self.result.is_some())),
        ])
    }

    fn snapshot(&self) -> Json {
        // Stateless by design: the estimator is a pure function of
        // `(net, faults, probs, seed)`, so there is no cross-leg state
        // worth journaling — an explicit `null` documents that a
        // recovered job recomputes from scratch and still completes
        // bit-identically.
        Json::Null
    }

    fn restore(&mut self, snapshot: &Json) -> Result<(), String> {
        match snapshot {
            Json::Null => Ok(()),
            other => Err(format!("detect snapshot: expected null, got {other}")),
        }
    }
}

/// Shared payload shape for a [`DetectionEstimate`]: value, standard
/// error, engine-tier token, and — for the cutting tier — certified
/// bounds.
fn estimate_json(e: &DetectionEstimate) -> Json {
    let mut fields = vec![
        ("value".into(), Json::Num(e.value)),
        ("std_error".into(), Json::Num(e.std_error)),
        ("method".into(), Json::str(e.method.token())),
    ];
    if let Some((lo, hi)) = e.bounds {
        fields.push(("low".into(), Json::Num(lo)));
        fields.push(("high".into(), Json::Num(hi)));
    }
    Json::Obj(fields)
}

/// Two-phase test-length job: detection probabilities (phase 1, cached
/// at the phase boundary) then the joint-confidence length search
/// (phase 2). Phase 1 has no checkpoint — an interrupted leg restarts
/// it — but once cached it survives later leg deaths.
pub struct TestLengthJob {
    net: Arc<Network>,
    faults: Vec<FaultEntry>,
    parallelism: Parallelism,
    seed: u64,
    probs: Vec<f64>,
    confidence: f64,
    values: Option<Vec<f64>>,
    length: Option<u64>,
    failure: Option<String>,
}

impl TestLengthJob {
    /// Builds the job from a request (`confidence`, `seed`, `probs`).
    ///
    /// # Errors
    ///
    /// Returns a message for invalid `probs`.
    pub fn from_request(ctx: JobContext<'_>) -> Result<Self, String> {
        let n = ctx.net.primary_inputs().len();
        Ok(Self {
            probs: param_probs(ctx.params, n, 0.5)?,
            seed: param_u64(ctx.params, "seed", DEFAULT_SEED),
            confidence: param_f64(ctx.params, "confidence", DEFAULT_CONFIDENCE),
            net: ctx.net,
            faults: ctx.faults,
            parallelism: ctx.parallelism,
            values: None,
            length: None,
            failure: None,
        })
    }
}

impl JobKernel for TestLengthJob {
    fn kind(&self) -> &'static str {
        "length"
    }

    fn run_leg(&mut self, budget: &RunBudget) -> RunStatus {
        if self.length.is_some() || self.failure.is_some() {
            return RunStatus::Completed;
        }
        if self.values.is_none() {
            match detection_probability_estimates(
                &self.net,
                &self.faults,
                &self.probs,
                self.seed,
                self.parallelism,
                budget,
            ) {
                Ok(est) => self.values = Some(est.iter().map(|e| e.value).collect()),
                Err(reason) => return RunStatus::Interrupted(reason),
            }
            // Phase boundary: honor the budget before starting the
            // search so a timed-out leg checkpoints here.
            if let Some(reason) = budget.stop_requested() {
                return RunStatus::Interrupted(reason);
            }
        }
        let values = self.values.as_ref().expect("phase 1 done");
        match test_length_budgeted(values, self.confidence, self.parallelism, budget) {
            Ok(n) => {
                self.length = Some(n);
                RunStatus::Completed
            }
            Err(LengthError::Interrupted(reason)) => RunStatus::Interrupted(reason),
            Err(e) => {
                // Bad inputs are permanent, not retryable: report the
                // failure in the output and complete the job.
                self.failure = Some(e.to_string());
                RunStatus::Completed
            }
        }
    }

    fn output(&self) -> Json {
        let mut members = vec![
            ("kind".into(), Json::str("length")),
            ("confidence".into(), Json::Num(self.confidence)),
        ];
        match self.length {
            // u64::MAX is the kernels' "some fault is never detected"
            // sentinel; JSON readers get an explicit flag instead.
            Some(u64::MAX) => {
                members.push(("length".into(), Json::Null));
                members.push(("unbounded".into(), Json::Bool(true)));
            }
            Some(n) => members.push(("length".into(), Json::num(n))),
            None => members.push(("length".into(), Json::Null)),
        }
        if let Some(f) = &self.failure {
            members.push(("error".into(), Json::str(f.clone())));
        }
        members.push((
            "complete".into(),
            Json::Bool(self.length.is_some() || self.failure.is_some()),
        ));
        Json::Obj(members)
    }

    fn snapshot(&self) -> Json {
        // The phase-1 cache is the job's only cross-leg state. f64
        // values round-trip exactly: the JSON emitter uses shortest-
        // roundtrip formatting, so the phase-2 search sees bit-equal
        // inputs after a crash.
        Json::Obj(vec![(
            "values".into(),
            match &self.values {
                Some(vs) => Json::Arr(vs.iter().map(|&v| Json::Num(v)).collect()),
                None => Json::Null,
            },
        )])
    }

    fn restore(&mut self, snapshot: &Json) -> Result<(), String> {
        self.values = match snapshot.get("values") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) => Some(
                items
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| format!("length snapshot: bad value {v}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Some(other) => return Err(format!("length snapshot: bad values {other}")),
        };
        Ok(())
    }
}

/// Input-probability optimization ([`optimize_input_probabilities_budgeted`]).
/// The optimizer keeps best-so-far state internally per call but has no
/// cross-call checkpoint, so an interrupted leg (or a crash-recovered
/// job — the journal snapshot is the default `null`) restarts the
/// descent; the job reports the best report seen across legs'
/// completions.
pub struct OptimizeJob {
    net: Arc<Network>,
    faults: Vec<FaultEntry>,
    parallelism: Parallelism,
    confidence: f64,
    max_sweeps: usize,
    report: Option<OptimizeReport>,
    methods: Vec<EstimateMethod>,
    complete: bool,
}

impl OptimizeJob {
    /// Builds the job from a request (`confidence`, `max_sweeps`).
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` keeps the factory signature
    /// uniform.
    pub fn from_request(ctx: JobContext<'_>) -> Result<Self, String> {
        Ok(Self {
            confidence: param_f64(ctx.params, "confidence", DEFAULT_CONFIDENCE),
            max_sweeps: param_u64(ctx.params, "max_sweeps", 2) as usize,
            net: ctx.net,
            faults: ctx.faults,
            parallelism: ctx.parallelism,
            report: None,
            methods: Vec::new(),
            complete: false,
        })
    }
}

impl JobKernel for OptimizeJob {
    fn kind(&self) -> &'static str {
        "optimize"
    }

    fn run_leg(&mut self, budget: &RunBudget) -> RunStatus {
        if self.complete {
            return RunStatus::Completed;
        }
        let run = optimize_input_probabilities_budgeted(
            &self.net,
            &self.faults,
            self.confidence,
            self.max_sweeps,
            self.parallelism,
            budget,
        );
        self.complete = run.status.is_complete();
        self.report = Some(run.report);
        self.methods = run.methods;
        run.status
    }

    fn output(&self) -> Json {
        let mut members = vec![("kind".into(), Json::str("optimize"))];
        if let Some(r) = &self.report {
            members.push((
                "probabilities".into(),
                Json::Arr(r.probabilities.iter().map(|&p| Json::Num(p)).collect()),
            ));
            members.push(("uniform_length".into(), Json::num(r.uniform_length)));
            members.push(("optimized_length".into(), Json::num(r.optimized_length)));
            members.push(("sweeps".into(), Json::num(r.sweeps as u64)));
            members.push(("tiers".into(), Json::str(tier_census(&self.methods))));
        }
        members.push(("complete".into(), Json::Bool(self.complete)));
        Json::Obj(members)
    }

    fn snapshot(&self) -> Json {
        // The best-so-far report is the job's cross-leg state: a
        // crash between legs must not forget a finished descent (the
        // engine would otherwise re-run it and, worse, report
        // `complete: false` forever if the budget shrank). Lengths use
        // the `u64::MAX` = "unbounded" sentinel, which exceeds 2^53 and
        // cannot ride a JSON number exactly, so it serializes as null.
        let Some(r) = &self.report else {
            return Json::Null;
        };
        let length = |n: u64| match n {
            u64::MAX => Json::Null,
            n => Json::num(n),
        };
        Json::Obj(vec![
            (
                "probabilities".into(),
                Json::Arr(r.probabilities.iter().map(|&p| Json::Num(p)).collect()),
            ),
            ("uniform_length".into(), length(r.uniform_length)),
            ("optimized_length".into(), length(r.optimized_length)),
            ("sweeps".into(), Json::num(r.sweeps as u64)),
            (
                "methods".into(),
                Json::Arr(self.methods.iter().map(|m| Json::str(m.token())).collect()),
            ),
            ("complete".into(), Json::Bool(self.complete)),
        ])
    }

    fn restore(&mut self, snapshot: &Json) -> Result<(), String> {
        if matches!(snapshot, Json::Null) {
            return Ok(());
        }
        let probabilities = match snapshot.get("probabilities") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| format!("optimize snapshot: bad probability {v}"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            other => return Err(format!("optimize snapshot: bad probabilities {other:?}")),
        };
        let length = |key: &str| -> Result<u64, String> {
            match snapshot.get(key) {
                None | Some(Json::Null) => Ok(u64::MAX),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("optimize snapshot: bad {key} {v}")),
            }
        };
        let sweeps = snapshot
            .get("sweeps")
            .and_then(Json::as_u64)
            .ok_or_else(|| "optimize snapshot: missing sweeps".to_owned())?;
        self.methods = match snapshot.get("methods") {
            None | Some(Json::Null) => Vec::new(),
            Some(Json::Arr(items)) => items
                .iter()
                .map(|v| {
                    v.as_str()
                        .ok_or_else(|| format!("optimize snapshot: bad method {v}"))
                        .and_then(EstimateMethod::from_token)
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(other) => return Err(format!("optimize snapshot: bad methods {other}")),
        };
        self.report = Some(OptimizeReport {
            probabilities,
            uniform_length: length("uniform_length")?,
            optimized_length: length("optimized_length")?,
            sweeps: sweeps as usize,
        });
        self.complete = snapshot
            .get("complete")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        Ok(())
    }
}

/// Streaming tiered testability job: detection probabilities for the
/// whole fault list via the [`DetectionEngine`], committed one fault at
/// a time. Unlike `detect`, this kernel checkpoints mid-list — the
/// snapshot carries every committed estimate, and the engine's
/// per-fault values are batch-independent — so a crash-recovered job
/// resumes at the last journaled fault boundary and still completes
/// bit-identical to an uninterrupted run.
pub struct TestabilityJob {
    net: Arc<Network>,
    faults: Vec<FaultEntry>,
    parallelism: Parallelism,
    probs: Vec<f64>,
    config: TestabilityConfig,
    /// Committed estimates for faults `0..done.len()`, in list order.
    done: Vec<DetectionEstimate>,
}

impl TestabilityJob {
    /// Builds the job from a request (`probs`, `seed`, `mode`,
    /// `node_budget`, `tighten_samples`). An absent `mode` follows the
    /// process-wide `DYNMOS_TESTABILITY` policy.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid `probs` or an unknown `mode`.
    pub fn from_request(ctx: JobContext<'_>) -> Result<Self, String> {
        let n = ctx.net.primary_inputs().len();
        let mut config =
            TestabilityConfig::from_env().with_seed(param_u64(ctx.params, "seed", DEFAULT_SEED));
        if let Some(token) = ctx.params.get("mode").and_then(Json::as_str) {
            config = config.with_mode(TierMode::parse(token)?);
        }
        if let Some(nodes) = ctx.params.get("node_budget").and_then(Json::as_u64) {
            config = config.with_node_budget(nodes as usize);
        }
        if let Some(samples) = ctx.params.get("tighten_samples").and_then(Json::as_u64) {
            config = config.with_mc_tighten_samples(samples);
        }
        Ok(Self {
            probs: param_probs(ctx.params, n, 0.5)?,
            config,
            net: ctx.net,
            faults: ctx.faults,
            parallelism: ctx.parallelism,
            done: Vec::new(),
        })
    }

    fn complete(&self) -> bool {
        self.done.len() >= self.faults.len()
    }
}

impl JobKernel for TestabilityJob {
    fn kind(&self) -> &'static str {
        "testability"
    }

    fn run_leg(&mut self, budget: &RunBudget) -> RunStatus {
        if self.complete() {
            return RunStatus::Completed;
        }
        // The engine borrows the network, so each leg builds a fresh
        // one; per-fault values are engine-instance-independent (the
        // streaming contract of `estimates_from`), so legs compose
        // bit-identically.
        let mut engine = DetectionEngine::new(&self.net, &self.faults, self.config.clone())
            .with_parallelism(self.parallelism);
        let start = self.done.len();
        let done = &mut self.done;
        engine.estimates_from(start, &self.probs, budget, &mut |i, est| {
            debug_assert_eq!(i, done.len());
            done.push(est);
        })
    }

    fn output(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::str("testability")),
            (
                "estimates".into(),
                Json::Arr(self.done.iter().map(estimate_json).collect()),
            ),
            (
                "tiers".into(),
                Json::str(tier_census(self.done.iter().map(|e| &e.method))),
            ),
            ("complete".into(), Json::Bool(self.complete())),
        ])
    }

    fn snapshot(&self) -> Json {
        Json::Obj(vec![
            ("next".into(), Json::num(self.done.len() as u64)),
            (
                "estimates".into(),
                Json::Arr(self.done.iter().map(estimate_json).collect()),
            ),
        ])
    }

    fn restore(&mut self, snapshot: &Json) -> Result<(), String> {
        if matches!(snapshot, Json::Null) {
            return Ok(());
        }
        let next = snapshot
            .get("next")
            .and_then(Json::as_u64)
            .ok_or("testability snapshot: bad or missing \"next\"")? as usize;
        let items = match snapshot.get("estimates") {
            Some(Json::Arr(items)) => items,
            _ => return Err("testability snapshot: bad or missing \"estimates\"".into()),
        };
        if next != items.len() || next > self.faults.len() {
            return Err(format!(
                "testability snapshot: next={next} disagrees with {} estimates over {} faults",
                items.len(),
                self.faults.len()
            ));
        }
        let mut done = Vec::with_capacity(items.len());
        for item in items {
            done.push(estimate_from_json(item)?);
        }
        self.done = done;
        Ok(())
    }
}

/// Inverse of [`estimate_json`], for snapshot restore. The JSON writer
/// prints floats in Rust's shortest round-trip form, so the restored
/// values are bit-identical to the committed ones.
fn estimate_from_json(item: &Json) -> Result<DetectionEstimate, String> {
    let value = item
        .get("value")
        .and_then(Json::as_f64)
        .ok_or("estimate: bad or missing \"value\"")?;
    let std_error = item
        .get("std_error")
        .and_then(Json::as_f64)
        .ok_or("estimate: bad or missing \"std_error\"")?;
    let token = item
        .get("method")
        .and_then(Json::as_str)
        .ok_or("estimate: bad or missing \"method\"")?;
    let method = EstimateMethod::from_token(token)?;
    let bounds = match (
        item.get("low").and_then(Json::as_f64),
        item.get("high").and_then(Json::as_f64),
    ) {
        (Some(lo), Some(hi)) => Some((lo, hi)),
        (None, None) => None,
        _ => return Err("estimate: bounds need both \"low\" and \"high\"".into()),
    };
    Ok(DetectionEstimate {
        value,
        std_error,
        method,
        bounds,
    })
}

/// Builds a built-in kernel for `kind`, or `None` when the kind is not
/// built in (the engine then consults its registered factories).
///
/// Built-in kinds: `fsim`, `mc-detect`, `mc-signal`, `detect`,
/// `length`, `optimize`, `testability`.
pub fn build_builtin(
    kind: &str,
    ctx: JobContext<'_>,
) -> Option<Result<Box<dyn JobKernel>, String>> {
    fn boxed<K: JobKernel + 'static>(r: Result<K, String>) -> Result<Box<dyn JobKernel>, String> {
        r.map(|k| Box::new(k) as Box<dyn JobKernel>)
    }
    Some(match kind {
        "fsim" => boxed(FsimJob::from_request(ctx)),
        "mc-detect" => boxed(McDetectJob::from_request(ctx)),
        "mc-signal" => boxed(McSignalJob::from_request(ctx)),
        "detect" => boxed(DetectEstimatesJob::from_request(ctx)),
        "length" => boxed(TestLengthJob::from_request(ctx)),
        "optimize" => boxed(OptimizeJob::from_request(ctx)),
        "testability" => boxed(TestabilityJob::from_request(ctx)),
        _ => return None,
    })
}
