//! `dynmos_protest::service` — a supervised job engine over the
//! budgeted PROTEST kernels.
//!
//! Every budgeted kernel in this crate (weighted-random fault
//! simulation, both Monte Carlo estimators, the exact/MC detection
//! estimator, test length, input-probability optimization — plus ATPG
//! via `dynmos_atpg::service`) is wrapped behind the
//! [`JobKernel`] abstraction and run by [`JobEngine`], a supervisor
//! loop providing:
//!
//! - **deadline/timeout** per job, derived from [`crate::RunBudget`]
//!   (the job's `timeout_ms` becomes the budget deadline of every leg);
//! - **bounded retry with exponential backoff + jitter**
//!   ([`BackoffPolicy`]) for legs that die by panic or surface
//!   [`crate::StopReason::WorkerFailed`] — the retry bound counts
//!   *consecutive* failures, so a long job interleaving progress with
//!   occasional faults is not starved;
//! - **checkpoint-carrying requeue**: a retried job resumes from its
//!   kernel's last committed checkpoint, and for the checkpointed
//!   kernels the final result is bit-identical to an uninterrupted
//!   run (the determinism contract in [`crate::parallel`]);
//! - **bounded admission with load shedding**: the queue refuses
//!   submissions past [`EngineConfig::queue_capacity`] with a
//!   structured [`Rejection`];
//! - **compiled-network cache** ([`NetworkCache`]) keyed by netlist
//!   hash, with recompile-and-compare validation on a sampled fraction
//!   of hits and eviction on mismatch;
//! - **crash durability** (opt-in via [`JobEngine::attach_journal`],
//!   `faultlib serve --journal DIR`): a write-ahead [`Journal`] commits
//!   every admission, checkpointed leg, and terminal record before the
//!   client sees it, so a process killed at any instant — `kill -9`
//!   included — restarts against the same directory, requeues
//!   interrupted jobs from their last committed kernel snapshot, and
//!   reproduces result payloads byte-for-byte.
//!
//! The deterministic fault-injection harness lives in
//! [`crate::chaos`]: a seeded [`crate::FaultPlan`] (or the
//! `DYNMOS_FAULT_PLAN` environment knob) injects worker panics,
//! supervised-leg kills, artificial deadline expiry, worker delays,
//! and poisoned cache entries at seed-addressable points — CI runs the
//! whole suite under such a plan.
//!
//! The wire format is hand-rolled JSON ([`Json`]) — the crate has no
//! serialization dependency — spoken over stdin/stdout by
//! `faultlib serve`.

pub mod cache;
pub mod engine;
pub mod jobs;
pub mod journal;
pub mod json;

pub use cache::{network_fingerprint, CacheStats, NetlistFormat, NetworkCache};
pub use engine::{BackoffPolicy, EngineConfig, Job, JobEngine, JobRecord, JobStatus, Rejection};
pub use jobs::{build_builtin, JobContext, JobKernel};
pub use journal::{Journal, RecoveredJob, Recovery, JOURNAL_FILE};
pub use json::{Json, JsonError};
