//! Compiled-network cache for the job service, keyed by netlist hash,
//! with **validation on hit**: every `validate_every`-th hit recompiles
//! the source and compares behavioral fingerprints, evicting (and
//! replacing) the entry on mismatch. The fault-injection harness
//! ([`crate::chaos::FaultPlan::cache_poison`]) corrupts fingerprints at
//! insert time to prove the validation path actually catches rot.

#![deny(clippy::unwrap_used)]
// Durable path (dynlint zone: durable): a panic mid-append can
// fabricate a torn record the recovery logic then trusts, so even
// "impossible" unwraps are compiler-rejected in this module.
use crate::chaos::{mix64, FaultPlan};
use dynmos_netlist::generate::single_cell_network;
use dynmos_netlist::{parse_bench, parse_cell, Network, PackedEvaluator};
use std::sync::Arc;

/// Cache entries kept before the oldest is dropped (FIFO): the service
/// must stay bounded everywhere, including here.
const MAX_ENTRIES: usize = 64;

/// How a job request's netlist source is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetlistFormat {
    /// ISCAS-style `.bench` text ([`parse_bench`]).
    Bench,
    /// The paper's cell syntax ([`parse_cell`] +
    /// [`single_cell_network`]).
    Cell,
}

impl NetlistFormat {
    /// Parses a request's `format` field.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted spellings.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "bench" => Ok(NetlistFormat::Bench),
            "cell" => Ok(NetlistFormat::Cell),
            other => Err(format!("unknown netlist format {other:?} (bench|cell)")),
        }
    }

    fn tag(self) -> u8 {
        match self {
            NetlistFormat::Bench => b'b',
            NetlistFormat::Cell => b'c',
        }
    }
}

/// Cache traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled fresh.
    pub misses: u64,
    /// Recompile-and-compare validations performed on hits.
    pub validations: u64,
    /// Entries evicted because validation caught a fingerprint
    /// mismatch.
    pub evictions: u64,
}

struct Entry {
    key: u64,
    format: NetlistFormat,
    source: String,
    net: Arc<Network>,
    fingerprint: u64,
    hits: u64,
}

/// The compiled-network cache. Not thread-safe by itself — the engine
/// owns one and serializes access through its supervisor loop.
pub struct NetworkCache {
    entries: Vec<Entry>,
    validate_every: u64,
    stats: CacheStats,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The cache key: FNV-1a over the format tag and the raw source text.
fn source_key(format: NetlistFormat, source: &str) -> u64 {
    fnv(std::iter::once(format.tag()).chain(source.bytes().map(|b| b ^ 0x5a)))
}

/// A behavioral fingerprint of a compiled network: structural counts
/// plus every net value over four deterministic pseudo-random input
/// batches. Two compilations of the same source agree; a corrupted
/// compilation (or a poisoned cache entry) does not.
pub fn network_fingerprint(net: &Network) -> u64 {
    let mut h = fnv([
        net.primary_inputs().len() as u8,
        net.primary_outputs().len() as u8,
        (net.net_count() & 0xff) as u8,
        (net.net_count() >> 8) as u8,
    ]);
    let inputs = net.primary_inputs().len();
    let mut ev = PackedEvaluator::new(net);
    let mut batch = vec![0u64; inputs];
    for pass in 0..4u64 {
        for (i, word) in batch.iter_mut().enumerate() {
            *word = mix64(pass.wrapping_mul(0x1_0001).wrapping_add(i as u64));
        }
        ev.eval(&batch);
        for &v in ev.net_values() {
            for byte in v.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            }
        }
    }
    h
}

fn compile(format: NetlistFormat, source: &str) -> Result<Network, String> {
    match format {
        NetlistFormat::Bench => parse_bench(source).map_err(|e| e.to_string()),
        NetlistFormat::Cell => parse_cell("job", source)
            .map(single_cell_network)
            .map_err(|e| e.to_string()),
    }
}

impl NetworkCache {
    /// A cache validating every `validate_every`-th hit (0 disables
    /// validation).
    pub fn new(validate_every: u64) -> Self {
        Self {
            entries: Vec::new(),
            validate_every,
            stats: CacheStats::default(),
        }
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the compiled network for `source`, from cache when
    /// possible. On a sampled fraction of hits the entry is
    /// re-validated by recompiling and comparing fingerprints; a
    /// mismatch (e.g. an injected poisoned entry) evicts the entry and
    /// serves the fresh compilation instead. `plan` is the
    /// fault-injection hook that may poison the stored fingerprint at
    /// insert time.
    ///
    /// # Errors
    ///
    /// Returns the parser's message when the source does not compile.
    pub fn get_or_compile(
        &mut self,
        format: NetlistFormat,
        source: &str,
        plan: Option<&FaultPlan>,
    ) -> Result<Arc<Network>, String> {
        let key = source_key(format, source);
        if let Some(idx) = self
            .entries
            .iter()
            .position(|e| e.key == key && e.format == format && e.source == source)
        {
            self.stats.hits += 1;
            self.entries[idx].hits += 1;
            let due = self.validate_every > 0
                && self.entries[idx].hits.is_multiple_of(self.validate_every);
            if due {
                self.stats.validations += 1;
                let fresh = Arc::new(compile(format, source)?);
                let fresh_fp = network_fingerprint(&fresh);
                if fresh_fp != self.entries[idx].fingerprint {
                    // The stored entry disagrees with a fresh compile:
                    // evict it and serve (and store) the fresh network,
                    // with an honest fingerprint this time.
                    self.stats.evictions += 1;
                    self.entries[idx].net = fresh.clone();
                    self.entries[idx].fingerprint = fresh_fp;
                    self.entries[idx].hits = 0;
                    return Ok(fresh);
                }
            }
            return Ok(self.entries[idx].net.clone());
        }
        self.stats.misses += 1;
        let net = Arc::new(compile(format, source)?);
        let mut fingerprint = network_fingerprint(&net);
        if plan.is_some_and(|p| p.poison_cache(key)) {
            // Injected rot: the stored fingerprint no longer matches
            // what a recompilation produces, so a later validation-on-
            // hit must catch and evict this entry. The *network* stays
            // correct — only the integrity metadata is corrupted —
            // so results remain right even before detection.
            fingerprint ^= 0xDEAD_BEEF;
        }
        if self.entries.len() >= MAX_ENTRIES {
            self.entries.remove(0);
        }
        self.entries.push(Entry {
            key,
            format,
            source: source.to_owned(),
            net: net.clone(),
            fingerprint,
            hits: 0,
        });
        Ok(net)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dynmos_netlist::generate::ripple_adder_bench_text;

    const CELL: &str = "TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := a*b;";

    #[test]
    fn hit_and_miss_counters_track() {
        let mut cache = NetworkCache::new(0);
        let bench = ripple_adder_bench_text(4);
        let first = cache
            .get_or_compile(NetlistFormat::Bench, &bench, None)
            .unwrap();
        let second = cache
            .get_or_compile(NetlistFormat::Bench, &bench, None)
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hit must reuse the entry");
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn formats_do_not_collide() {
        let mut cache = NetworkCache::new(0);
        cache
            .get_or_compile(NetlistFormat::Cell, CELL, None)
            .unwrap();
        assert!(
            cache
                .get_or_compile(NetlistFormat::Bench, CELL, None)
                .is_err(),
            "cell text is not bench text; a format-blind cache would have served it"
        );
    }

    #[test]
    fn compile_errors_surface() {
        let mut cache = NetworkCache::new(0);
        let err = cache
            .get_or_compile(NetlistFormat::Cell, "INPUT ;;;", None)
            .expect_err("garbage must not compile");
        assert!(!err.is_empty());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 0, "failed compiles are not cached");
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let a1 = Arc::new(compile(NetlistFormat::Cell, CELL).unwrap());
        let a2 = Arc::new(compile(NetlistFormat::Cell, CELL).unwrap());
        assert_eq!(network_fingerprint(&a1), network_fingerprint(&a2));
        let other = compile(
            NetlistFormat::Cell,
            "TECHNOLOGY domino-CMOS; INPUT a,b; OUTPUT z; z := a+b;",
        )
        .unwrap();
        assert_ne!(network_fingerprint(&a1), network_fingerprint(&other));
    }

    #[test]
    fn poisoned_entry_is_caught_and_evicted_by_validation() {
        let mut cache = NetworkCache::new(2); // validate every 2nd hit
        let plan = FaultPlan::new(1).cache_poison(1.0);
        cache
            .get_or_compile(NetlistFormat::Cell, CELL, Some(&plan))
            .unwrap();
        // Hit 1: not due. Hit 2: validation catches the poisoned
        // fingerprint and evicts.
        cache
            .get_or_compile(NetlistFormat::Cell, CELL, None)
            .unwrap();
        assert_eq!(cache.stats().evictions, 0);
        cache
            .get_or_compile(NetlistFormat::Cell, CELL, None)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.validations, 1);
        assert_eq!(stats.evictions, 1);
        // The replacement entry is honest: the next validation passes.
        cache
            .get_or_compile(NetlistFormat::Cell, CELL, None)
            .unwrap();
        cache
            .get_or_compile(NetlistFormat::Cell, CELL, None)
            .unwrap();
        assert_eq!(cache.stats().validations, 2);
        assert_eq!(cache.stats().evictions, 1, "honest entry survives");
    }

    #[test]
    fn clean_entries_pass_validation() {
        let mut cache = NetworkCache::new(1); // validate every hit
        let bench = ripple_adder_bench_text(2);
        cache
            .get_or_compile(NetlistFormat::Bench, &bench, None)
            .unwrap();
        for _ in 0..3 {
            cache
                .get_or_compile(NetlistFormat::Bench, &bench, None)
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.validations, 3);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn cache_is_bounded() {
        let mut cache = NetworkCache::new(0);
        for bits in 1..=(MAX_ENTRIES + 5) {
            let bench = ripple_adder_bench_text(bits);
            cache
                .get_or_compile(NetlistFormat::Bench, &bench, None)
                .unwrap();
        }
        assert_eq!(cache.len(), MAX_ENTRIES);
    }
}
