//! The supervised job engine: a bounded admission queue, a compiled-
//! network cache, and a supervisor loop that runs each job in budgeted
//! legs with deadline enforcement, bounded retry with exponential
//! backoff + jitter, and checkpoint-carrying requeue.
//!
//! The engine is deliberately single-threaded at the supervisor level
//! (the kernels shard internally via [`Parallelism`]); that keeps
//! admission, cache access, and retry accounting trivially serialized
//! and the whole service deterministic under a seeded
//! [`FaultPlan`].

#![deny(clippy::unwrap_used)]
// Durable path (dynlint zone: durable): a panic mid-append can
// fabricate a torn record the recovery logic then trusts, so even
// "impossible" unwraps are compiler-rejected in this module.
use crate::budget::{RunBudget, RunStatus, StopReason};
use crate::chaos::{self, mix64, FaultPlan, LegFault};
use crate::list::{network_fault_list, stuck_fault_list};
use crate::parallel::{panic_message, Parallelism};
use crate::service::cache::{NetlistFormat, NetworkCache};
use crate::service::jobs::{build_builtin, JobContext, JobKernel};
use crate::service::journal::Journal;
use crate::service::json::Json;
use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything needed to enqueue a job built from a request: its kind
/// name, the optional per-job deadline, and the kernel itself.
type BuiltJob = (String, Option<Duration>, Box<dyn JobKernel>);

/// Exponential backoff with deterministic jitter: retry `k` sleeps
/// `base·2^(k-1)` ms (capped at `cap_ms`), scaled by a jitter factor in
/// `[0.5, 1.5)` drawn from a hash of `(seed, job, k)` — deterministic
/// for a given policy, decorrelated across jobs and retries.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// First-retry delay in milliseconds. `0` disables sleeping
    /// entirely (used by tests).
    pub base_ms: u64,
    /// Upper bound on the pre-jitter delay.
    pub cap_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base_ms: 25,
            cap_ms: 2000,
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// The delay before retry number `retry` (1-based) of job `job`.
    pub fn delay(&self, job: u64, retry: u32) -> Duration {
        if self.base_ms == 0 || retry == 0 {
            return Duration::ZERO;
        }
        let exp = self
            .base_ms
            .saturating_mul(1u64 << (retry - 1).min(20))
            .min(self.cap_ms);
        let h = mix64(self.seed ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(retry));
        let frac = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_millis((exp as f64 * frac) as u64)
    }
}

/// Engine tuning knobs. [`EngineConfig::from_env`] additionally honors
/// `DYNMOS_THREADS` and `DYNMOS_FAULT_PLAN`.
#[derive(Clone)]
pub struct EngineConfig {
    /// Admission bound: submissions beyond this many pending jobs are
    /// shed with a structured [`Rejection`].
    pub queue_capacity: usize,
    /// Maximum *consecutive* failed legs (panic or
    /// [`StopReason::WorkerFailed`]) before the job is marked
    /// [`JobStatus::Failed`]. Any successful leg resets the count.
    pub max_retries: u32,
    /// Hard valve on total legs per job, against non-progressing
    /// kernels.
    pub max_legs: u32,
    /// Per-leg wall-clock slice in milliseconds (`None` = the job's
    /// deadline is the only timer).
    pub leg_ms: Option<u64>,
    /// Per-leg pattern/sample cap (`None` = unbounded legs). Tests use
    /// this for deterministic leg boundaries — wall-clock slicing is
    /// too coarse to be reproducible.
    pub leg_patterns: Option<u64>,
    /// Retry backoff policy.
    pub backoff: BackoffPolicy,
    /// Cache validation sampling: validate every n-th hit (0 = never).
    pub validate_every: u64,
    /// Thread policy handed to every kernel.
    pub parallelism: Parallelism,
    /// Fault-injection plan applied to supervised legs, worker shards,
    /// and cache inserts (`None` = no injection).
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_retries: 3,
            max_legs: 100_000,
            leg_ms: None,
            leg_patterns: None,
            backoff: BackoffPolicy::default(),
            validate_every: 16,
            parallelism: Parallelism::default(),
            fault_plan: None,
        }
    }
}

impl EngineConfig {
    /// The default config with `DYNMOS_THREADS` and `DYNMOS_FAULT_PLAN`
    /// applied.
    ///
    /// # Panics
    ///
    /// Panics when `DYNMOS_FAULT_PLAN` is set but unparseable (same
    /// fail-fast contract as the other `DYNMOS_*` knobs).
    pub fn from_env() -> Self {
        Self {
            // `Parallelism::Auto` (the default) already honors
            // `DYNMOS_THREADS` at resolve time.
            fault_plan: chaos::env_fault_plan(),
            ..Self::default()
        }
    }
}

/// A structured load-shedding verdict: why the submission was refused
/// and how full the queue was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Human-readable reason (`"queue full"`).
    pub reason: String,
    /// The configured admission bound.
    pub capacity: usize,
    /// Jobs pending when the submission arrived.
    pub pending: usize,
}

/// Terminal state of a supervised job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The kernel finished all its work; the result is bit-identical
    /// to an uninterrupted run.
    Completed,
    /// The job's deadline passed; the result is the last checkpoint's
    /// partial output.
    DeadlineExceeded,
    /// More than [`EngineConfig::max_retries`] consecutive legs died.
    Failed,
}

impl JobStatus {
    /// The wire token (`completed` | `deadline-exceeded` | `failed`).
    pub fn token(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::DeadlineExceeded => "deadline-exceeded",
            JobStatus::Failed => "failed",
        }
    }
}

/// An admitted, not-yet-run job.
pub struct Job {
    /// Engine-assigned id (monotonic from 1).
    pub id: u64,
    /// The job-kind token.
    pub kind: String,
    /// Wall-clock allowance measured from the moment the supervisor
    /// picks the job up (`None` = no deadline).
    pub timeout: Option<Duration>,
    /// The kernel carrying all job state between legs.
    pub kernel: Box<dyn JobKernel>,
    /// Legs already run before this admission — nonzero only for jobs
    /// recovered from a [`Journal`], so the terminal record's counters
    /// span the whole job, not just the final process.
    pub legs: u32,
    /// Retries already consumed before this admission (journal
    /// recovery only).
    pub retries: u32,
}

/// The supervisor's account of one finished job.
pub struct JobRecord {
    /// Engine-assigned id.
    pub id: u64,
    /// The job-kind token.
    pub kind: String,
    /// Terminal state.
    pub status: JobStatus,
    /// Legs run (including failed ones).
    pub legs: u32,
    /// Legs that died (panic or worker failure) and were retried.
    pub retries: u32,
    /// The last interruption reason observed, if any.
    pub stop: Option<StopReason>,
    /// The last failure message, if any leg died.
    pub error: Option<String>,
    /// The kernel's output (partial for non-completed jobs).
    pub result: Json,
    /// Wall-clock from pickup to terminal state.
    pub elapsed: Duration,
}

impl JobRecord {
    /// The record as a deterministic JSON object (elapsed time is
    /// excluded — it is not reproducible).
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("ok".into(), Json::Bool(true)),
            ("id".into(), Json::num(self.id)),
            ("kind".into(), Json::str(self.kind.clone())),
            ("status".into(), Json::str(self.status.token())),
            ("legs".into(), Json::num(u64::from(self.legs))),
            ("retries".into(), Json::num(u64::from(self.retries))),
        ];
        if let Some(e) = &self.error {
            members.push(("error".into(), Json::str(e.clone())));
        }
        members.push(("result".into(), self.result.clone()));
        Json::Obj(members)
    }
}

type KernelFactory = Box<dyn Fn(JobContext<'_>) -> Result<Box<dyn JobKernel>, String>>;

/// The job engine: admission queue + cache + supervisor loop.
pub struct JobEngine {
    config: EngineConfig,
    cache: NetworkCache,
    queue: VecDeque<Job>,
    next_id: u64,
    shed: u64,
    kinds: Vec<(String, KernelFactory)>,
    journal: Option<Journal>,
    results: Vec<(u64, Json)>,
}

impl JobEngine {
    /// An engine with the given config and an empty queue.
    pub fn new(config: EngineConfig) -> Self {
        let cache = NetworkCache::new(config.validate_every);
        Self {
            config,
            cache,
            queue: VecDeque::new(),
            next_id: 0,
            shed: 0,
            kinds: Vec::new(),
            journal: None,
            results: Vec::new(),
        }
    }

    /// Attaches a write-ahead [`Journal`] in `dir`, replaying any
    /// existing records: finished jobs reload into the
    /// [`results_json`](Self::results_json) set, interrupted jobs are
    /// rebuilt from their journaled request, restored from their last
    /// committed kernel snapshot, and requeued under their original
    /// ids. Returns a summary object
    /// (`{"ok":true,"op":"journal","generation":g,"resumed":n,
    /// "finished":n,"torn":bool}`).
    ///
    /// Call this **after** [`register_kind`](Self::register_kind) —
    /// recovery rebuilds kernels through the same factories as live
    /// submission.
    ///
    /// # Errors
    ///
    /// I/O failures, a corrupt journal (see [`Journal::open`]), or a
    /// journaled job that no longer rebuilds or restores — all fatal:
    /// silently dropping durable jobs would be worse than refusing to
    /// start.
    pub fn attach_journal(&mut self, dir: &Path) -> io::Result<Json> {
        let (journal, recovery) = Journal::open(dir, self.config.fault_plan.clone())?;
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        self.next_id = self.next_id.max(recovery.max_id);
        for job in &recovery.jobs {
            let (kind, timeout, mut kernel) = self
                .build_job(&job.request)
                .map_err(|e| bad(format!("journal: job {} does not rebuild: {e}", job.id)))?;
            if let Some(snapshot) = &job.snapshot {
                kernel.restore(snapshot).map_err(|e| {
                    bad(format!(
                        "journal: job {} snapshot does not restore: {e}",
                        job.id
                    ))
                })?;
            }
            self.queue.push_back(Job {
                id: job.id,
                kind,
                timeout,
                kernel,
                legs: job.legs,
                retries: job.retries,
            });
        }
        self.results.extend(recovery.terminal.iter().cloned());
        let summary = Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("op".into(), Json::str("journal")),
            ("generation".into(), Json::num(recovery.generation)),
            ("resumed".into(), Json::num(recovery.jobs.len() as u64)),
            ("finished".into(), Json::num(recovery.terminal.len() as u64)),
            ("torn".into(), Json::Bool(recovery.torn_tail)),
        ]);
        self.journal = Some(journal);
        Ok(summary)
    }

    /// Every terminal record this engine has produced (or recovered
    /// from its journal), as `{"ok":true,"op":"results","records":
    /// [...]}` with records in job-id order — the deterministic order
    /// that makes a recovered session byte-comparable to an
    /// uninterrupted one.
    pub fn results_json(&self) -> Json {
        let mut records = self.results.clone();
        records.sort_by_key(|(id, _)| *id);
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("op".into(), Json::str("results")),
            (
                "records".into(),
                Json::Arr(records.into_iter().map(|(_, r)| r).collect()),
            ),
        ])
    }

    /// Registers an external kernel factory for `kind`. Registered
    /// kinds take precedence over the built-ins.
    pub fn register_kind(
        &mut self,
        kind: impl Into<String>,
        factory: impl Fn(JobContext<'_>) -> Result<Box<dyn JobKernel>, String> + 'static,
    ) {
        self.kinds.push((kind.into(), Box::new(factory)));
    }

    /// Jobs waiting in the admission queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Engine counters as a JSON object.
    pub fn stats_json(&self) -> Json {
        let c = self.cache.stats();
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("op".into(), Json::str("stats")),
            ("pending".into(), Json::num(self.pending() as u64)),
            ("shed".into(), Json::num(self.shed)),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("entries".into(), Json::num(self.cache.len() as u64)),
                    ("hits".into(), Json::num(c.hits)),
                    ("misses".into(), Json::num(c.misses)),
                    ("validations".into(), Json::num(c.validations)),
                    ("evictions".into(), Json::num(c.evictions)),
                ]),
            ),
        ])
    }

    fn reject(&mut self, reason: &str) -> Json {
        Json::Obj(vec![
            ("ok".into(), Json::Bool(false)),
            ("error".into(), Json::str(reason.to_owned())),
        ])
    }

    /// Admits a job described by a JSON request object
    /// (`{"kind": ..., "format": "bench"|"cell", "netlist": ...,
    /// kernel params...}`) and returns the admission verdict:
    /// `{"ok":true,"id":n,"pending":n}` on admit,
    /// `{"ok":false,"shed":true,...}` when the queue is full, or
    /// `{"ok":false,"error":...}` for malformed requests.
    pub fn submit_json(&mut self, request: &Json) -> Json {
        if request.get("kind").and_then(Json::as_str).is_none() {
            return self.reject("missing \"kind\"");
        }
        // Shed before compiling anything: an overloaded service must
        // refuse cheaply.
        if self.queue.len() >= self.config.queue_capacity {
            self.shed += 1;
            return Json::Obj(vec![
                ("ok".into(), Json::Bool(false)),
                ("shed".into(), Json::Bool(true)),
                ("reason".into(), Json::str("queue full")),
                (
                    "capacity".into(),
                    Json::num(self.config.queue_capacity as u64),
                ),
                ("pending".into(), Json::num(self.queue.len() as u64)),
            ]);
        }
        let (kind, timeout, kernel) = match self.build_job(request) {
            Ok(built) => built,
            Err(e) => return self.reject(&e),
        };
        self.next_id += 1;
        let id = self.next_id;
        // Write-ahead: journal the admission before acking it, so an
        // acked job is always durable. A journal that cannot commit
        // refuses the submission rather than admitting volatile work.
        if let Some(journal) = &mut self.journal {
            if let Err(e) = journal.record_admit(id, request) {
                self.next_id -= 1;
                return self.reject(&format!("journal write failed: {e}"));
            }
        }
        self.queue.push_back(Job {
            id,
            kind,
            timeout,
            kernel,
            legs: 0,
            retries: 0,
        });
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("id".into(), Json::num(id)),
            ("pending".into(), Json::num(self.queue.len() as u64)),
        ])
    }

    /// Builds the kernel (plus kind/timeout) for a request object —
    /// shared by live admission ([`submit_json`](Self::submit_json))
    /// and journal recovery, so a recovered job recompiles through the
    /// exact same cache path as its original submission.
    fn build_job(&mut self, request: &Json) -> Result<BuiltJob, String> {
        let kind = request
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing \"kind\"")?
            .to_owned();
        let source = request
            .get("netlist")
            .and_then(Json::as_str)
            .ok_or("missing \"netlist\"")?
            .to_owned();
        let format = match request.get("format").and_then(Json::as_str) {
            None => NetlistFormat::Bench,
            Some(s) => NetlistFormat::parse(s)?,
        };
        let net = self
            .cache
            .get_or_compile(format, &source, self.config.fault_plan.as_deref())
            .map_err(|e| format!("netlist does not compile: {e}"))?;
        let mut faults = match format {
            NetlistFormat::Bench => stuck_fault_list(&net),
            NetlistFormat::Cell => network_fault_list(&net),
        };
        if let Some(limit) = request.get("fault_limit").and_then(Json::as_u64) {
            faults.truncate(limit as usize);
        }
        let ctx = JobContext {
            net,
            faults,
            parallelism: self.config.parallelism,
            params: request,
        };
        let built = match self.kinds.iter().find(|(k, _)| *k == kind) {
            Some((_, factory)) => Some(factory(ctx)),
            None => build_builtin(&kind, ctx),
        };
        let kernel = match built {
            Some(Ok(k)) => k,
            Some(Err(e)) => return Err(format!("bad {kind} request: {e}")),
            None => return Err(format!("unknown job kind {kind:?}")),
        };
        let timeout = request
            .get("timeout_ms")
            .and_then(Json::as_u64)
            .map(Duration::from_millis);
        Ok((kind, timeout, kernel))
    }

    /// Runs the oldest pending job to a terminal state and returns its
    /// record (`None` when the queue is empty).
    ///
    /// The supervisor loop: each iteration probes the fault plan for
    /// an injected leg fault, builds a [`RunBudget`] from the job
    /// deadline and the per-leg slice, runs one kernel leg under
    /// `catch_unwind`, and then either completes, retries with
    /// backoff (bounded by consecutive failures), requeues the next
    /// leg from the kernel's checkpoint, or gives up.
    pub fn run_next(&mut self) -> Option<JobRecord> {
        let mut job = self.queue.pop_front()?;
        let started = Instant::now();
        let job_deadline = job.timeout.map(|t| started + t);
        let plan = self.config.fault_plan.clone();
        // Journal-recovered jobs resume their counters, so the terminal
        // record accounts for the whole job across process lifetimes.
        let mut legs: u32 = job.legs;
        let mut retries: u32 = job.retries;
        let mut consecutive: u32 = 0;
        let mut stop: Option<StopReason> = None;
        let mut error: Option<String> = None;
        let status = loop {
            if legs >= self.config.max_legs {
                error = Some(format!(
                    "kernel made no progress within {} legs",
                    self.config.max_legs
                ));
                break JobStatus::Failed;
            }
            let leg_idx = legs;
            legs += 1;
            // One leg-fault probe per leg, on this thread, in leg
            // order — like the worker probes, the schedule depends
            // only on the plan seed, never on prior outcomes.
            let injected = plan.as_deref().and_then(|p| p.leg_fault(job.id, leg_idx));
            let mut kill = false;
            let mut expire = false;
            match injected {
                Some(LegFault::Kill) => kill = true,
                Some(LegFault::Expire) => expire = true,
                Some(LegFault::Delay(d)) => std::thread::sleep(d),
                None => {}
            }
            let mut budget = RunBudget {
                deadline: job_deadline,
                max_patterns: self.config.leg_patterns,
                max_exact_rows: None,
                cancel: None,
            };
            if let Some(ms) = self.config.leg_ms {
                let slice = Instant::now() + Duration::from_millis(ms);
                budget.deadline = Some(budget.deadline.map_or(slice, |d| d.min(slice)));
            }
            if expire {
                // Artificial deadline expiry: the leg sees an already-
                // expired budget and must checkpoint immediately.
                budget.deadline = Some(Instant::now());
            }
            let kernel = &mut job.kernel;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if kill {
                    panic!("injected job kill (fault plan)"); // dynlint: allow(no-panic-in-durable-paths) -- deliberate chaos injection, confined to catch_unwind directly above
                }
                match &plan {
                    Some(p) => chaos::scoped(p.clone(), || kernel.run_leg(&budget)),
                    None => kernel.run_leg(&budget),
                }
            }));
            match outcome {
                Err(payload) => {
                    consecutive += 1;
                    retries += 1;
                    error = Some(panic_message(payload.as_ref()));
                    if consecutive > self.config.max_retries {
                        break JobStatus::Failed;
                    }
                    if self.backoff_or_deadline(job.id, consecutive, job_deadline) {
                        break JobStatus::DeadlineExceeded;
                    }
                }
                Ok(RunStatus::Interrupted(StopReason::WorkerFailed)) => {
                    stop = Some(StopReason::WorkerFailed);
                    consecutive += 1;
                    retries += 1;
                    error = job
                        .kernel
                        .last_error()
                        .or(Some("worker failed after retry".into()));
                    if consecutive > self.config.max_retries {
                        break JobStatus::Failed;
                    }
                    if self.backoff_or_deadline(job.id, consecutive, job_deadline) {
                        break JobStatus::DeadlineExceeded;
                    }
                }
                Ok(RunStatus::Completed) => break JobStatus::Completed,
                Ok(RunStatus::Interrupted(reason)) => {
                    // A clean checkpoint boundary: not a failure. The
                    // kernel just committed its checkpoint, so this is
                    // also the one durable point — journal the snapshot
                    // before running further legs.
                    stop = Some(reason);
                    consecutive = 0;
                    error = None;
                    if let Some(journal) = &mut self.journal {
                        if let Err(e) =
                            journal.record_leg(job.id, legs, retries, job.kernel.snapshot())
                        {
                            error = Some(format!("journal write failed: {e}"));
                            break JobStatus::Failed;
                        }
                    }
                    if job_deadline.is_some_and(|d| Instant::now() >= d) {
                        break JobStatus::DeadlineExceeded;
                    }
                }
            }
        };
        let mut record = JobRecord {
            id: job.id,
            kind: job.kind,
            status,
            legs,
            retries,
            stop,
            error,
            result: job.kernel.output(),
            elapsed: started.elapsed(),
        };
        // Write-ahead: the terminal record is durable before the client
        // sees it, and is what a restarted session replays verbatim.
        let payload = record.to_json();
        if let Some(journal) = &mut self.journal {
            if let Err(e) = journal.record_done(record.id, &payload) {
                record
                    .error
                    .get_or_insert(format!("journal write failed: {e}"));
            }
        }
        self.results.push((record.id, payload));
        Some(record)
    }

    /// Sleeps the retry backoff for `retry`, clamped to the job's
    /// remaining deadline. Returns `true` when the deadline was reached
    /// — the overshoot becomes a clean [`JobStatus::DeadlineExceeded`]
    /// instead of a full backoff sleep followed by a doomed extra leg.
    fn backoff_or_deadline(&self, job: u64, retry: u32, deadline: Option<Instant>) -> bool {
        let delay = self.config.backoff.delay(job, retry);
        let Some(deadline) = deadline else {
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            return false;
        };
        let remaining = deadline.saturating_duration_since(Instant::now());
        if delay < remaining {
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            return false;
        }
        if !remaining.is_zero() {
            std::thread::sleep(remaining);
        }
        true
    }

    /// Runs every pending job to a terminal state.
    pub fn drain(&mut self) -> Vec<JobRecord> {
        let mut records = Vec::new();
        while let Some(record) = self.run_next() {
            records.push(record);
        }
        records
    }
}
