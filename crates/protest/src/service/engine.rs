//! The supervised job engine: a bounded admission queue, a compiled-
//! network cache, and a supervisor loop that runs each job in budgeted
//! legs with deadline enforcement, bounded retry with exponential
//! backoff + jitter, and checkpoint-carrying requeue.
//!
//! The engine is deliberately single-threaded at the supervisor level
//! (the kernels shard internally via [`Parallelism`]); that keeps
//! admission, cache access, and retry accounting trivially serialized
//! and the whole service deterministic under a seeded
//! [`FaultPlan`].

use crate::budget::{RunBudget, RunStatus, StopReason};
use crate::chaos::{self, mix64, FaultPlan, LegFault};
use crate::list::{network_fault_list, stuck_fault_list};
use crate::parallel::{panic_message, Parallelism};
use crate::service::cache::{NetlistFormat, NetworkCache};
use crate::service::jobs::{build_builtin, JobContext, JobKernel};
use crate::service::json::Json;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Exponential backoff with deterministic jitter: retry `k` sleeps
/// `base·2^(k-1)` ms (capped at `cap_ms`), scaled by a jitter factor in
/// `[0.5, 1.5)` drawn from a hash of `(seed, job, k)` — deterministic
/// for a given policy, decorrelated across jobs and retries.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// First-retry delay in milliseconds. `0` disables sleeping
    /// entirely (used by tests).
    pub base_ms: u64,
    /// Upper bound on the pre-jitter delay.
    pub cap_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base_ms: 25,
            cap_ms: 2000,
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// The delay before retry number `retry` (1-based) of job `job`.
    pub fn delay(&self, job: u64, retry: u32) -> Duration {
        if self.base_ms == 0 || retry == 0 {
            return Duration::ZERO;
        }
        let exp = self
            .base_ms
            .saturating_mul(1u64 << (retry - 1).min(20))
            .min(self.cap_ms);
        let h = mix64(self.seed ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(retry));
        let frac = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_millis((exp as f64 * frac) as u64)
    }
}

/// Engine tuning knobs. [`EngineConfig::from_env`] additionally honors
/// `DYNMOS_THREADS` and `DYNMOS_FAULT_PLAN`.
#[derive(Clone)]
pub struct EngineConfig {
    /// Admission bound: submissions beyond this many pending jobs are
    /// shed with a structured [`Rejection`].
    pub queue_capacity: usize,
    /// Maximum *consecutive* failed legs (panic or
    /// [`StopReason::WorkerFailed`]) before the job is marked
    /// [`JobStatus::Failed`]. Any successful leg resets the count.
    pub max_retries: u32,
    /// Hard valve on total legs per job, against non-progressing
    /// kernels.
    pub max_legs: u32,
    /// Per-leg wall-clock slice in milliseconds (`None` = the job's
    /// deadline is the only timer).
    pub leg_ms: Option<u64>,
    /// Per-leg pattern/sample cap (`None` = unbounded legs). Tests use
    /// this for deterministic leg boundaries — wall-clock slicing is
    /// too coarse to be reproducible.
    pub leg_patterns: Option<u64>,
    /// Retry backoff policy.
    pub backoff: BackoffPolicy,
    /// Cache validation sampling: validate every n-th hit (0 = never).
    pub validate_every: u64,
    /// Thread policy handed to every kernel.
    pub parallelism: Parallelism,
    /// Fault-injection plan applied to supervised legs, worker shards,
    /// and cache inserts (`None` = no injection).
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_retries: 3,
            max_legs: 100_000,
            leg_ms: None,
            leg_patterns: None,
            backoff: BackoffPolicy::default(),
            validate_every: 16,
            parallelism: Parallelism::default(),
            fault_plan: None,
        }
    }
}

impl EngineConfig {
    /// The default config with `DYNMOS_THREADS` and `DYNMOS_FAULT_PLAN`
    /// applied.
    ///
    /// # Panics
    ///
    /// Panics when `DYNMOS_FAULT_PLAN` is set but unparseable (same
    /// fail-fast contract as the other `DYNMOS_*` knobs).
    pub fn from_env() -> Self {
        Self {
            // `Parallelism::Auto` (the default) already honors
            // `DYNMOS_THREADS` at resolve time.
            fault_plan: chaos::env_fault_plan(),
            ..Self::default()
        }
    }
}

/// A structured load-shedding verdict: why the submission was refused
/// and how full the queue was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Human-readable reason (`"queue full"`).
    pub reason: String,
    /// The configured admission bound.
    pub capacity: usize,
    /// Jobs pending when the submission arrived.
    pub pending: usize,
}

/// Terminal state of a supervised job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The kernel finished all its work; the result is bit-identical
    /// to an uninterrupted run.
    Completed,
    /// The job's deadline passed; the result is the last checkpoint's
    /// partial output.
    DeadlineExceeded,
    /// More than [`EngineConfig::max_retries`] consecutive legs died.
    Failed,
}

impl JobStatus {
    /// The wire token (`completed` | `deadline-exceeded` | `failed`).
    pub fn token(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::DeadlineExceeded => "deadline-exceeded",
            JobStatus::Failed => "failed",
        }
    }
}

/// An admitted, not-yet-run job.
pub struct Job {
    /// Engine-assigned id (monotonic from 1).
    pub id: u64,
    /// The job-kind token.
    pub kind: String,
    /// Wall-clock allowance measured from the moment the supervisor
    /// picks the job up (`None` = no deadline).
    pub timeout: Option<Duration>,
    /// The kernel carrying all job state between legs.
    pub kernel: Box<dyn JobKernel>,
}

/// The supervisor's account of one finished job.
pub struct JobRecord {
    /// Engine-assigned id.
    pub id: u64,
    /// The job-kind token.
    pub kind: String,
    /// Terminal state.
    pub status: JobStatus,
    /// Legs run (including failed ones).
    pub legs: u32,
    /// Legs that died (panic or worker failure) and were retried.
    pub retries: u32,
    /// The last interruption reason observed, if any.
    pub stop: Option<StopReason>,
    /// The last failure message, if any leg died.
    pub error: Option<String>,
    /// The kernel's output (partial for non-completed jobs).
    pub result: Json,
    /// Wall-clock from pickup to terminal state.
    pub elapsed: Duration,
}

impl JobRecord {
    /// The record as a deterministic JSON object (elapsed time is
    /// excluded — it is not reproducible).
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("ok".into(), Json::Bool(true)),
            ("id".into(), Json::num(self.id)),
            ("kind".into(), Json::str(self.kind.clone())),
            ("status".into(), Json::str(self.status.token())),
            ("legs".into(), Json::num(u64::from(self.legs))),
            ("retries".into(), Json::num(u64::from(self.retries))),
        ];
        if let Some(e) = &self.error {
            members.push(("error".into(), Json::str(e.clone())));
        }
        members.push(("result".into(), self.result.clone()));
        Json::Obj(members)
    }
}

type KernelFactory = Box<dyn Fn(JobContext<'_>) -> Result<Box<dyn JobKernel>, String>>;

/// The job engine: admission queue + cache + supervisor loop.
pub struct JobEngine {
    config: EngineConfig,
    cache: NetworkCache,
    queue: VecDeque<Job>,
    next_id: u64,
    shed: u64,
    kinds: Vec<(String, KernelFactory)>,
}

impl JobEngine {
    /// An engine with the given config and an empty queue.
    pub fn new(config: EngineConfig) -> Self {
        let cache = NetworkCache::new(config.validate_every);
        Self {
            config,
            cache,
            queue: VecDeque::new(),
            next_id: 0,
            shed: 0,
            kinds: Vec::new(),
        }
    }

    /// Registers an external kernel factory for `kind`. Registered
    /// kinds take precedence over the built-ins.
    pub fn register_kind(
        &mut self,
        kind: impl Into<String>,
        factory: impl Fn(JobContext<'_>) -> Result<Box<dyn JobKernel>, String> + 'static,
    ) {
        self.kinds.push((kind.into(), Box::new(factory)));
    }

    /// Jobs waiting in the admission queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Engine counters as a JSON object.
    pub fn stats_json(&self) -> Json {
        let c = self.cache.stats();
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("op".into(), Json::str("stats")),
            ("pending".into(), Json::num(self.pending() as u64)),
            ("shed".into(), Json::num(self.shed)),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("entries".into(), Json::num(self.cache.len() as u64)),
                    ("hits".into(), Json::num(c.hits)),
                    ("misses".into(), Json::num(c.misses)),
                    ("validations".into(), Json::num(c.validations)),
                    ("evictions".into(), Json::num(c.evictions)),
                ]),
            ),
        ])
    }

    fn reject(&mut self, reason: &str) -> Json {
        Json::Obj(vec![
            ("ok".into(), Json::Bool(false)),
            ("error".into(), Json::str(reason.to_owned())),
        ])
    }

    /// Admits a job described by a JSON request object
    /// (`{"kind": ..., "format": "bench"|"cell", "netlist": ...,
    /// kernel params...}`) and returns the admission verdict:
    /// `{"ok":true,"id":n,"pending":n}` on admit,
    /// `{"ok":false,"shed":true,...}` when the queue is full, or
    /// `{"ok":false,"error":...}` for malformed requests.
    pub fn submit_json(&mut self, request: &Json) -> Json {
        let Some(kind) = request.get("kind").and_then(Json::as_str) else {
            return self.reject("missing \"kind\"");
        };
        let kind = kind.to_owned();
        // Shed before compiling anything: an overloaded service must
        // refuse cheaply.
        if self.queue.len() >= self.config.queue_capacity {
            self.shed += 1;
            return Json::Obj(vec![
                ("ok".into(), Json::Bool(false)),
                ("shed".into(), Json::Bool(true)),
                ("reason".into(), Json::str("queue full")),
                (
                    "capacity".into(),
                    Json::num(self.config.queue_capacity as u64),
                ),
                ("pending".into(), Json::num(self.queue.len() as u64)),
            ]);
        }
        let Some(source) = request.get("netlist").and_then(Json::as_str) else {
            return self.reject("missing \"netlist\"");
        };
        let format = match request.get("format").and_then(Json::as_str) {
            None => NetlistFormat::Bench,
            Some(s) => match NetlistFormat::parse(s) {
                Ok(f) => f,
                Err(e) => return self.reject(&e),
            },
        };
        let source = source.to_owned();
        let net =
            match self
                .cache
                .get_or_compile(format, &source, self.config.fault_plan.as_deref())
            {
                Ok(net) => net,
                Err(e) => return self.reject(&format!("netlist does not compile: {e}")),
            };
        let mut faults = match format {
            NetlistFormat::Bench => stuck_fault_list(&net),
            NetlistFormat::Cell => network_fault_list(&net),
        };
        if let Some(limit) = request.get("fault_limit").and_then(Json::as_u64) {
            faults.truncate(limit as usize);
        }
        let ctx = JobContext {
            net,
            faults,
            parallelism: self.config.parallelism,
            params: request,
        };
        let built = match self.kinds.iter().find(|(k, _)| *k == kind) {
            Some((_, factory)) => Some(factory(ctx)),
            None => build_builtin(&kind, ctx),
        };
        let kernel = match built {
            Some(Ok(k)) => k,
            Some(Err(e)) => return self.reject(&format!("bad {kind} request: {e}")),
            None => return self.reject(&format!("unknown job kind {kind:?}")),
        };
        let timeout = request
            .get("timeout_ms")
            .and_then(Json::as_u64)
            .map(Duration::from_millis);
        self.next_id += 1;
        let id = self.next_id;
        self.queue.push_back(Job {
            id,
            kind,
            timeout,
            kernel,
        });
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("id".into(), Json::num(id)),
            ("pending".into(), Json::num(self.queue.len() as u64)),
        ])
    }

    /// Runs the oldest pending job to a terminal state and returns its
    /// record (`None` when the queue is empty).
    ///
    /// The supervisor loop: each iteration probes the fault plan for
    /// an injected leg fault, builds a [`RunBudget`] from the job
    /// deadline and the per-leg slice, runs one kernel leg under
    /// `catch_unwind`, and then either completes, retries with
    /// backoff (bounded by consecutive failures), requeues the next
    /// leg from the kernel's checkpoint, or gives up.
    pub fn run_next(&mut self) -> Option<JobRecord> {
        let mut job = self.queue.pop_front()?;
        let started = Instant::now();
        let job_deadline = job.timeout.map(|t| started + t);
        let plan = self.config.fault_plan.clone();
        let mut legs: u32 = 0;
        let mut retries: u32 = 0;
        let mut consecutive: u32 = 0;
        let mut stop: Option<StopReason> = None;
        let mut error: Option<String> = None;
        let status = loop {
            if legs >= self.config.max_legs {
                error = Some(format!(
                    "kernel made no progress within {} legs",
                    self.config.max_legs
                ));
                break JobStatus::Failed;
            }
            let leg_idx = legs;
            legs += 1;
            // One leg-fault probe per leg, on this thread, in leg
            // order — like the worker probes, the schedule depends
            // only on the plan seed, never on prior outcomes.
            let injected = plan.as_deref().and_then(|p| p.leg_fault(job.id, leg_idx));
            let mut kill = false;
            let mut expire = false;
            match injected {
                Some(LegFault::Kill) => kill = true,
                Some(LegFault::Expire) => expire = true,
                Some(LegFault::Delay(d)) => std::thread::sleep(d),
                None => {}
            }
            let mut budget = RunBudget {
                deadline: job_deadline,
                max_patterns: self.config.leg_patterns,
                max_exact_rows: None,
                cancel: None,
            };
            if let Some(ms) = self.config.leg_ms {
                let slice = Instant::now() + Duration::from_millis(ms);
                budget.deadline = Some(budget.deadline.map_or(slice, |d| d.min(slice)));
            }
            if expire {
                // Artificial deadline expiry: the leg sees an already-
                // expired budget and must checkpoint immediately.
                budget.deadline = Some(Instant::now());
            }
            let kernel = &mut job.kernel;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if kill {
                    panic!("injected job kill (fault plan)");
                }
                match &plan {
                    Some(p) => chaos::scoped(p.clone(), || kernel.run_leg(&budget)),
                    None => kernel.run_leg(&budget),
                }
            }));
            match outcome {
                Err(payload) => {
                    consecutive += 1;
                    retries += 1;
                    error = Some(panic_message(payload.as_ref()));
                    if consecutive > self.config.max_retries {
                        break JobStatus::Failed;
                    }
                    let delay = self.config.backoff.delay(job.id, consecutive);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                Ok(RunStatus::Interrupted(StopReason::WorkerFailed)) => {
                    stop = Some(StopReason::WorkerFailed);
                    consecutive += 1;
                    retries += 1;
                    error = job
                        .kernel
                        .last_error()
                        .or(Some("worker failed after retry".into()));
                    if consecutive > self.config.max_retries {
                        break JobStatus::Failed;
                    }
                    let delay = self.config.backoff.delay(job.id, consecutive);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                Ok(RunStatus::Completed) => break JobStatus::Completed,
                Ok(RunStatus::Interrupted(reason)) => {
                    // A clean checkpoint boundary: not a failure.
                    stop = Some(reason);
                    consecutive = 0;
                    error = None;
                    if job_deadline.is_some_and(|d| Instant::now() >= d) {
                        break JobStatus::DeadlineExceeded;
                    }
                }
            }
        };
        Some(JobRecord {
            id: job.id,
            kind: job.kind,
            status,
            legs,
            retries,
            stop,
            error,
            result: job.kernel.output(),
            elapsed: started.elapsed(),
        })
    }

    /// Runs every pending job to a terminal state.
    pub fn drain(&mut self) -> Vec<JobRecord> {
        let mut records = Vec::new();
        while let Some(record) = self.run_next() {
            records.push(record);
        }
        records
    }
}
