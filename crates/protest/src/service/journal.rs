//! The write-ahead journal behind `faultlib serve --journal DIR`:
//! crash-durable job state as a JSON-lines file, written with the same
//! hand-rolled [`Json`] the wire protocol uses.
//!
//! # Record stream
//!
//! One JSON object per line, in commit order:
//!
//! - `{"t":"open","gen":G}` — a recovery generation marker, appended
//!   once per session (see below);
//! - `{"t":"admit","id":N,"request":{...}}` — a job was admitted; the
//!   full request is stored so recovery can rebuild the kernel from
//!   scratch (recompiling the netlist through the ordinary cache path);
//! - `{"t":"leg","id":N,"legs":L,"retries":R,"snapshot":...}` — a leg
//!   returned at a clean checkpoint boundary; `snapshot` is the
//!   kernel's [`JobKernel::snapshot`](super::JobKernel::snapshot);
//! - `{"t":"done","id":N,"record":{...}}` — the job reached a terminal
//!   state; `record` is the full
//!   [`JobRecord::to_json`](super::JobRecord::to_json) payload.
//!
//! # Durability contract
//!
//! Every append is one `write` of `line + "\n"` followed by an
//! `fdatasync`; the engine appends **before** acknowledging anything to
//! the client, so an acked admission and an emitted record are always
//! durable. A crash (including `kill -9` and the injected
//! [`CrashPoint`] aborts) can therefore lose only (a) work since the
//! last committed leg record — recomputed bit-identically on resume,
//! because checkpoints plus the absolute seed+counter `PatternSource`
//! addressing make the replay exact — and (b) records that were mid-
//! write, which appear as a **torn final line**. Recovery tolerates
//! exactly that: an unparsable final line is discarded, an unparsable
//! interior line is a corrupt journal and refuses loudly.
//!
//! [`Journal::open`] replays the stream, then **compacts** it — live
//! jobs keep their admission plus latest leg snapshot, finished jobs
//! keep their terminal record — and rewrites the file via temp file +
//! rename + fsync (file and directory), so compaction is atomic: a
//! crash leaves either the old journal or the new one, never a mix.
//!
//! # Crash injection and the generation counter
//!
//! Appends probe the engine's [`FaultPlan`] for an injected process
//! crash ([`FaultPlan::crash_fault`]) — before the write, mid-write
//! (writing a strict prefix, the torn-line generator), or after it.
//! The probe site mixes in the journal's **generation** (how many times
//! this journal has been opened), so a restarted process rolls a fresh
//! crash schedule: committed records shrink the remaining work while
//! re-rolled schedules guarantee a crash-at-every-append plan cannot
//! pin recovery in place. The generation bump itself is committed by
//! the compaction rewrite, which never probes — recovery always makes
//! that much progress.

#![deny(clippy::unwrap_used)]
// Durable path (dynlint zone: durable): a panic mid-append can
// fabricate a torn record the recovery logic then trusts, so even
// "impossible" unwraps are compiler-rejected in this module.
use crate::chaos::{CrashPoint, FaultPlan};
use crate::service::json::Json;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The journal file name inside the `--journal` directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// A crash-durable append-only record stream in `DIR/journal.jsonl`.
pub struct Journal {
    dir: PathBuf,
    file: File,
    generation: u64,
    appends: u64,
    plan: Option<Arc<FaultPlan>>,
}

/// One not-yet-terminal job reconstructed from the journal.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The id the job was originally admitted under (preserved so
    /// replayed records are byte-identical).
    pub id: u64,
    /// The original submission request, verbatim.
    pub request: Json,
    /// The latest committed kernel snapshot, if any leg finished.
    pub snapshot: Option<Json>,
    /// Legs run before the crash (as of the latest leg record).
    pub legs: u32,
    /// Retries consumed before the crash.
    pub retries: u32,
}

/// Everything [`Journal::open`] reconstructed from an existing journal.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Admitted jobs without a terminal record, in admission order.
    pub jobs: Vec<RecoveredJob>,
    /// Terminal records `(id, record)` in admission order.
    pub terminal: Vec<(u64, Json)>,
    /// The highest job id ever admitted (0 when the journal is fresh).
    pub max_id: u64,
    /// `true` when a torn final line was discarded.
    pub torn_tail: bool,
    /// The generation this session runs as (1 for a fresh journal).
    pub generation: u64,
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Journal {
    /// Opens (creating if necessary) the journal in `dir`, replays and
    /// compacts any existing records, and returns the journal plus what
    /// it recovered. `plan` is the fault plan probed for injected
    /// crashes on every subsequent append (`None` = no injection).
    ///
    /// # Errors
    ///
    /// I/O failures, or a corrupt journal: an unparsable line anywhere
    /// but the final position, an unknown record type, or a record
    /// missing its required fields. A torn *final* line is not an error
    /// — it is the expected signature of a crash mid-append.
    pub fn open(dir: &Path, plan: Option<Arc<FaultPlan>>) -> io::Result<(Journal, Recovery)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut recovery = match fs::read(&path) {
            Ok(bytes) => Self::replay(&bytes)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Recovery::default(),
            Err(e) => return Err(e),
        };
        recovery.generation += 1;

        // Compact + persist the generation bump atomically: temp file,
        // fdatasync, rename, directory fsync. No crash probes here —
        // every recovery commits at least its generation.
        let tmp = dir.join(format!("{JOURNAL_FILE}.tmp"));
        {
            let mut out = File::create(&tmp)?;
            let mut line = |record: &Json| writeln!(out, "{record}");
            line(&Json::Obj(vec![
                ("t".into(), Json::str("open")),
                ("gen".into(), Json::num(recovery.generation)),
            ]))?;
            for (id, record) in &recovery.terminal {
                line(&done_record(*id, record))?;
            }
            for job in &recovery.jobs {
                line(&admit_record(job.id, &job.request))?;
                if let Some(snapshot) = &job.snapshot {
                    line(&leg_record(job.id, job.legs, job.retries, snapshot.clone()))?;
                }
            }
            out.sync_data()?;
        }
        fs::rename(&tmp, &path)?;
        // Persist the rename itself (POSIX: fsync the directory).
        File::open(dir)?.sync_all()?;

        let file = OpenOptions::new().append(true).open(&path)?;
        let journal = Journal {
            dir: dir.to_owned(),
            file,
            generation: recovery.generation,
            appends: 0,
            plan,
        };
        Ok((journal, recovery))
    }

    /// Replays raw journal bytes into a [`Recovery`] (generation not
    /// yet bumped). Split out for fixture tests.
    fn replay(bytes: &[u8]) -> io::Result<Recovery> {
        let mut recovery = Recovery::default();
        let mut segments = bytes.split(|&b| b == b'\n').peekable();
        while let Some(segment) = segments.next() {
            let is_last = segments.peek().is_none();
            if segment.is_empty() {
                continue;
            }
            let parsed = std::str::from_utf8(segment)
                .ok()
                .and_then(|text| Json::parse(text).ok());
            let Some(record) = parsed else {
                if is_last {
                    // The torn tail of a crash mid-append: everything
                    // before it committed, the tail record did not.
                    recovery.torn_tail = true;
                    break;
                }
                return Err(corrupt("journal: unparsable record before the final line"));
            };
            recovery.apply(&record)?;
        }
        Ok(recovery)
    }

    /// This session's recovery generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The journal file path.
    pub fn path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    /// Appends (and syncs) a job-admission record.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures.
    pub fn record_admit(&mut self, id: u64, request: &Json) -> io::Result<()> {
        self.append(&admit_record(id, request))
    }

    /// Appends (and syncs) a leg-completion record carrying the
    /// kernel's committed snapshot.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures.
    pub fn record_leg(
        &mut self,
        id: u64,
        legs: u32,
        retries: u32,
        snapshot: Json,
    ) -> io::Result<()> {
        self.append(&leg_record(id, legs, retries, snapshot))
    }

    /// Appends (and syncs) a terminal record.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures.
    pub fn record_done(&mut self, id: u64, record: &Json) -> io::Result<()> {
        self.append(&done_record(id, record))
    }

    /// One committed append: `line + "\n"`, written then `fdatasync`ed,
    /// with the [`FaultPlan`] crash probe around the write.
    fn append(&mut self, record: &Json) -> io::Result<()> {
        let line = format!("{record}\n").into_bytes();
        let site = self
            .generation
            .wrapping_mul(0x1_0000_0000)
            .wrapping_add(self.appends);
        self.appends += 1;
        match self.plan.as_deref().and_then(|p| p.crash_fault(site)) {
            None => {
                self.file.write_all(&line)?;
                self.file.sync_data()?;
                Ok(())
            }
            Some(CrashPoint::BeforeWrite) => std::process::abort(),
            Some(CrashPoint::TornWrite) => {
                // A strict, non-empty prefix: the torn final line the
                // recovery path must tolerate.
                let cut = (line.len() / 2).max(1).min(line.len() - 1);
                let _ = self.file.write_all(&line[..cut]);
                let _ = self.file.sync_data();
                std::process::abort();
            }
            Some(CrashPoint::AfterWrite) => {
                let _ = self.file.write_all(&line);
                let _ = self.file.sync_data();
                std::process::abort();
            }
        }
    }
}

impl Recovery {
    /// Folds one parsed record into the recovery state.
    fn apply(&mut self, record: &Json) -> io::Result<()> {
        let id = || {
            record
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| corrupt("journal: record missing \"id\""))
        };
        match record.get("t").and_then(Json::as_str) {
            Some("open") => {
                let gen = record
                    .get("gen")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| corrupt("journal: open record missing \"gen\""))?;
                self.generation = self.generation.max(gen);
            }
            Some("admit") => {
                let id = id()?;
                let request = record
                    .get("request")
                    .ok_or_else(|| corrupt("journal: admit record missing \"request\""))?;
                self.max_id = self.max_id.max(id);
                self.jobs.push(RecoveredJob {
                    id,
                    request: request.clone(),
                    snapshot: None,
                    legs: 0,
                    retries: 0,
                });
            }
            Some("leg") => {
                let id = id()?;
                let job =
                    self.jobs.iter_mut().find(|j| j.id == id).ok_or_else(|| {
                        corrupt(format!("journal: leg record for unknown job {id}"))
                    })?;
                let count = |k: &str| {
                    record
                        .get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| corrupt(format!("journal: leg record missing {k:?}")))
                };
                job.legs = count("legs")? as u32;
                job.retries = count("retries")? as u32;
                job.snapshot = Some(
                    record
                        .get("snapshot")
                        .cloned()
                        .ok_or_else(|| corrupt("journal: leg record missing \"snapshot\""))?,
                );
            }
            Some("done") => {
                let id = id()?;
                let payload = record
                    .get("record")
                    .ok_or_else(|| corrupt("journal: done record missing \"record\""))?;
                self.jobs.retain(|j| j.id != id);
                self.max_id = self.max_id.max(id);
                self.terminal.push((id, payload.clone()));
            }
            Some(other) => {
                return Err(corrupt(format!("journal: unknown record type {other:?}")));
            }
            None => return Err(corrupt("journal: record missing \"t\"")),
        }
        Ok(())
    }
}

fn admit_record(id: u64, request: &Json) -> Json {
    Json::Obj(vec![
        ("t".into(), Json::str("admit")),
        ("id".into(), Json::num(id)),
        ("request".into(), request.clone()),
    ])
}

fn leg_record(id: u64, legs: u32, retries: u32, snapshot: Json) -> Json {
    Json::Obj(vec![
        ("t".into(), Json::str("leg")),
        ("id".into(), Json::num(id)),
        ("legs".into(), Json::num(u64::from(legs))),
        ("retries".into(), Json::num(u64::from(retries))),
        ("snapshot".into(), snapshot),
    ])
}

fn done_record(id: u64, record: &Json) -> Json {
    Json::Obj(vec![
        ("t".into(), Json::str("done")),
        ("id".into(), Json::num(id)),
        ("record".into(), record.clone()),
    ])
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Recovery {
        Journal::replay(text.as_bytes()).expect("replay")
    }

    #[test]
    fn replays_admit_leg_done() {
        let r = parse(concat!(
            "{\"t\":\"open\",\"gen\":3}\n",
            "{\"t\":\"admit\",\"id\":1,\"request\":{\"kind\":\"fsim\"}}\n",
            "{\"t\":\"admit\",\"id\":2,\"request\":{\"kind\":\"atpg\"}}\n",
            "{\"t\":\"leg\",\"id\":1,\"legs\":4,\"retries\":1,\"snapshot\":{\"started\":true}}\n",
            "{\"t\":\"done\",\"id\":2,\"record\":{\"ok\":true}}\n",
        ));
        assert_eq!(r.generation, 3);
        assert_eq!(r.max_id, 2);
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].id, 1);
        assert_eq!(r.jobs[0].legs, 4);
        assert_eq!(r.jobs[0].retries, 1);
        assert!(r.jobs[0].snapshot.is_some());
        assert_eq!(r.terminal.len(), 1);
        assert_eq!(r.terminal[0].0, 2);
        assert!(!r.torn_tail);
    }

    #[test]
    fn torn_final_line_is_discarded() {
        let r = parse(concat!(
            "{\"t\":\"admit\",\"id\":1,\"request\":{\"kind\":\"fsim\"}}\n",
            "{\"t\":\"leg\",\"id\":1,\"legs\":2,\"ret",
        ));
        assert!(r.torn_tail);
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].legs, 0, "torn leg record must not apply");
    }

    #[test]
    fn torn_non_utf8_tail_is_discarded() {
        let mut bytes = b"{\"t\":\"admit\",\"id\":1,\"request\":{}}\n".to_vec();
        bytes.extend_from_slice(&[0x7b, 0x22, 0xFF, 0xFE]);
        let r = Journal::replay(&bytes).expect("replay");
        assert!(r.torn_tail);
        assert_eq!(r.jobs.len(), 1);
    }

    #[test]
    fn interior_corruption_is_refused() {
        let err = Journal::replay(
            concat!(
                "{\"t\":\"admit\",\"id\":1,\"request\":{}}\n",
                "NOT JSON AT ALL\n",
                "{\"t\":\"done\",\"id\":1,\"record\":{}}\n",
            )
            .as_bytes(),
        )
        .expect_err("interior corruption");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        for bad in [
            "{\"t\":\"frobnicate\"}\n{\"t\":\"open\",\"gen\":1}\n",
            "{\"id\":1}\n{\"t\":\"open\",\"gen\":1}\n",
            "{\"t\":\"leg\",\"id\":9,\"legs\":1,\"retries\":0,\"snapshot\":null}\n{\"t\":\"open\",\"gen\":1}\n",
        ] {
            assert!(Journal::replay(bad.as_bytes()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn open_compacts_and_bumps_generation() {
        let dir = std::env::temp_dir().join(format!("dynmos-journal-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(JOURNAL_FILE),
            concat!(
                "{\"t\":\"open\",\"gen\":1}\n",
                "{\"t\":\"admit\",\"id\":1,\"request\":{\"kind\":\"fsim\"}}\n",
                "{\"t\":\"leg\",\"id\":1,\"legs\":1,\"retries\":0,\"snapshot\":{\"s\":1}}\n",
                "{\"t\":\"leg\",\"id\":1,\"legs\":2,\"retries\":0,\"snapshot\":{\"s\":2}}\n",
                "{\"t\":\"admit\",\"id\":2,\"request\":{\"kind\":\"fsim\"}}\n",
                "{\"t\":\"done\",\"id\":2,\"record\":{\"ok\":true}}\n",
                "{\"t\":\"leg\",\"id\":1,\"legs\":3,\"retries\":1,\"sn",
            ),
        )
        .unwrap();
        let (journal, recovery) = Journal::open(&dir, None).unwrap();
        assert_eq!(recovery.generation, 2);
        assert_eq!(journal.generation(), 2);
        assert!(recovery.torn_tail);
        assert_eq!(recovery.max_id, 2);
        assert_eq!(recovery.jobs.len(), 1);
        // The latest *committed* leg record wins; the torn one is gone.
        assert_eq!(recovery.jobs[0].legs, 2);
        drop(journal);

        // The rewritten journal is compact (stale leg 1 dropped, torn
        // tail gone) and replays to the same state one generation up.
        let text = fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(text.lines().count(), 4, "compacted: {text}");
        assert!(!text.contains("\"s\":1"), "stale leg kept: {text}");
        let (journal, recovery) = Journal::open(&dir, None).unwrap();
        assert_eq!(recovery.generation, 3);
        assert_eq!(recovery.jobs.len(), 1);
        assert_eq!(recovery.jobs[0].legs, 2);
        assert_eq!(recovery.terminal.len(), 1);
        drop(journal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("dynmos-journal-ap-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let (mut journal, recovery) = Journal::open(&dir, None).unwrap();
        assert_eq!(recovery.generation, 1);
        assert_eq!(recovery.max_id, 0);
        let request = Json::parse("{\"kind\":\"fsim\",\"patterns\":64}").unwrap();
        journal.record_admit(1, &request).unwrap();
        journal
            .record_leg(1, 2, 0, Json::parse("{\"started\":true}").unwrap())
            .unwrap();
        journal.record_admit(2, &request).unwrap();
        journal
            .record_done(2, &Json::parse("{\"ok\":true,\"id\":2}").unwrap())
            .unwrap();
        drop(journal);
        let (_journal, recovery) = Journal::open(&dir, None).unwrap();
        assert_eq!(recovery.generation, 2);
        assert_eq!(recovery.max_id, 2);
        assert_eq!(recovery.jobs.len(), 1);
        assert_eq!(recovery.jobs[0].id, 1);
        assert_eq!(recovery.jobs[0].legs, 2);
        assert_eq!(recovery.jobs[0].request, request);
        assert_eq!(recovery.terminal.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
