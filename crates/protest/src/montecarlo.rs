//! Monte Carlo estimation for circuits beyond exact enumeration.
//!
//! The exact routines in [`crate::detect`] and [`crate::estimate`]
//! enumerate the primary-input space and stop being feasible around 24
//! inputs. Production-sized circuits (the paper's "large scaled
//! integrated circuit") need sampling: these estimators draw weighted
//! random patterns with the pattern-parallel evaluator and report the
//! observed frequency together with a normal-approximation confidence
//! half-width, so PROTEST's test-length stage can keep working at scale.
//!
//! Both estimators are thread-sharded over the counter-based pattern
//! stream along the axis the two-axis planner
//! ([`crate::parallel::plan_shards`]) picks: detection estimation shards
//! the *fault list* when it can feed every worker (each worker owns an
//! evaluator and replays the whole stream for its shard) and falls back
//! to the *sample-pass axis* in the few-fault regime; signal estimation
//! has one target, so the planner always hands it the pass axis. Hit
//! counts over disjoint pass ranges add exactly (integer sums), so
//! either way the estimates are bit-identical to the serial path at any
//! thread count.

use crate::budget::{self, RunBudget, RunStatus, StopReason};
use crate::list::FaultEntry;
use crate::parallel::{plan_shards, try_run_sharded, Parallelism, ShardError, ShardPlan};
use crate::random::PatternSource;
use crate::service::json::Json;
use dynmos_netlist::{NetId, Network, NetworkFault, PackedEvaluator};
use std::ops::Range;
use std::time::Duration;

/// Lane words per evaluator pass: 4 × 64 = 256 patterns per tape walk.
const WIDTH: usize = 4;

/// Evaluator passes per budgeted chunk (16 passes = 4096 samples): the
/// granularity of budget checks and checkpoints. Hit counts are exact
/// integer sums, so chunking is invisible to the final estimates.
const CHUNK_PASSES: usize = 16;

/// A Monte Carlo estimate: frequency plus a 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Observed frequency.
    pub value: f64,
    /// 95% normal-approximation half-width (`1.96 * sqrt(p(1-p)/n)`).
    pub half_width: f64,
    /// Samples drawn.
    pub samples: u64,
}

impl Estimate {
    /// `true` if `truth` lies within the confidence interval (with a
    /// small absolute floor for degenerate frequencies).
    pub fn covers(&self, truth: f64) -> bool {
        (self.value - truth).abs() <= self.half_width.max(1e-3)
    }

    /// The standard error of the estimate (`sqrt(p(1-p)/n)`; the
    /// half-width is 1.96 standard errors).
    pub fn std_error(&self) -> f64 {
        self.half_width / 1.96
    }
}

/// Resumable state of an interrupted Monte Carlo estimation: the exact
/// integer hit counts over the sample passes drawn so far. Resuming
/// and completing produces estimates bit-identical to an uninterrupted
/// run — integer hit counts over disjoint pass ranges add exactly.
#[derive(Debug, Clone)]
pub struct McCheckpoint {
    /// Wide evaluator passes fully drawn so far.
    passes_done: usize,
    /// The run's total sample budget.
    samples: u64,
    /// Per-target hit counts so far (one entry per fault; length 1 for
    /// signal estimation).
    hits: Vec<u64>,
}

impl McCheckpoint {
    /// The checkpoint as a JSON object — integer pass and hit counts
    /// serialize exactly, so [`McCheckpoint::from_json`] round-trips
    /// bit-identically and resumed estimates are unchanged.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::str("mc")),
            ("passes_done".into(), Json::num(self.passes_done as u64)),
            ("samples".into(), Json::num(self.samples)),
            (
                "hits".into(),
                Json::Arr(self.hits.iter().map(|&h| Json::num(h)).collect()),
            ),
        ])
    }

    /// Rebuilds a checkpoint from [`McCheckpoint::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message for missing/mistyped fields or a wrong `kind`.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        if v.get("kind").and_then(Json::as_str) != Some("mc") {
            return Err("not a Monte Carlo checkpoint".into());
        }
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("mc checkpoint: bad or missing {k:?}"))
        };
        let hits = v
            .get("hits")
            .and_then(Json::as_arr)
            .ok_or("mc checkpoint: bad or missing \"hits\"")?
            .iter()
            .map(|h| {
                h.as_u64()
                    .ok_or_else(|| format!("mc checkpoint: bad hit count {h}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            passes_done: field("passes_done")? as usize,
            samples: field("samples")?,
            hits,
        })
    }

    /// Samples fully drawn so far.
    pub fn samples_done(&self) -> u64 {
        ((self.passes_done as u64) * (WIDTH as u64) * 64).min(self.samples)
    }

    /// The run's total sample budget.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Result of a budgeted whole-list detection estimation: estimates
/// over the samples drawn so far, completion status, and — when
/// interrupted — the checkpoint to resume from.
#[derive(Debug, Clone)]
pub struct BudgetedEstimates {
    /// One estimate per fault over the samples drawn so far (a
    /// completed run's estimates equal the unbudgeted run's exactly).
    pub estimates: Vec<Estimate>,
    /// Completed, or interrupted at a chunk boundary.
    pub status: RunStatus,
    /// `Some` exactly when interrupted: resume with
    /// [`mc_detection_resume`].
    pub checkpoint: Option<McCheckpoint>,
    /// `Some` exactly when the status is
    /// [`RunStatus::Interrupted`]`(`[`StopReason::WorkerFailed`]`)`: the
    /// shard whose worker panicked twice. The failed chunk was not
    /// merged; resuming retries it.
    pub worker_error: Option<ShardError>,
}

/// Result of a budgeted single-net signal estimation.
#[derive(Debug, Clone)]
pub struct BudgetedEstimate {
    /// The estimate over the samples drawn so far.
    pub estimate: Estimate,
    /// Completed, or interrupted at a chunk boundary.
    pub status: RunStatus,
    /// `Some` exactly when interrupted: resume with
    /// [`mc_signal_resume`].
    pub checkpoint: Option<McCheckpoint>,
    /// `Some` exactly when the status is
    /// [`RunStatus::Interrupted`]`(`[`StopReason::WorkerFailed`]`)`: the
    /// shard whose worker panicked twice. The failed chunk was not
    /// merged; resuming retries it.
    pub worker_error: Option<ShardError>,
}

fn estimate_from_counts(hits: u64, samples: u64) -> Estimate {
    let p = hits as f64 / samples as f64;
    Estimate {
        value: p,
        half_width: 1.96 * (p * (1.0 - p) / samples as f64).sqrt(),
        samples,
    }
}

/// Lane mask for the samples still owed after `drawn` of `samples`.
fn tail_mask(drawn: u64, samples: u64) -> u64 {
    match (samples - drawn).min(64) {
        64 => u64::MAX,
        0 => 0,
        l => (1u64 << l) - 1,
    }
}

/// Monte Carlo signal probability of one net under weighted inputs, with
/// the default thread policy ([`Parallelism::Auto`]).
///
/// # Panics
///
/// Panics if `samples == 0` or the probability arity mismatches.
///
/// # Example
///
/// ```
/// use dynmos_netlist::generate::and_or_tree;
/// use dynmos_protest::montecarlo::mc_signal_probability;
///
/// let net = and_or_tree(4); // 16 inputs
/// let po = net.primary_outputs()[0];
/// let est = mc_signal_probability(&net, po, &vec![0.5; 16], 7, 50_000);
/// assert!(est.half_width < 0.01);
/// ```
pub fn mc_signal_probability(
    net: &Network,
    target: NetId,
    pi_probs: &[f64],
    seed: u64,
    samples: u64,
) -> Estimate {
    mc_signal_probability_par(net, target, pi_probs, seed, samples, Parallelism::default())
}

/// [`mc_signal_probability`] with an explicit thread policy. A single
/// target net means the planner always shards the pass axis; the
/// estimate is identical at any thread count. When `DYNMOS_BUDGET_MS`
/// is set, the estimation runs as an interrupt/resume loop with that
/// per-leg deadline — producing the identical estimate.
pub fn mc_signal_probability_par(
    net: &Network,
    target: NetId,
    pi_probs: &[f64],
    seed: u64,
    samples: u64,
    parallelism: Parallelism,
) -> Estimate {
    // A worker that failed even its serial retry keeps the historical
    // panicking contract on this entry point.
    let check = |run: &BudgetedEstimate| {
        if let Some(e) = &run.worker_error {
            panic!("{e}");
        }
    };
    if let Some(ms) = budget::env_budget_ms() {
        let leg = || RunBudget::deadline_in(Duration::from_millis(ms));
        let mut run = mc_signal_probability_budgeted(
            net,
            target,
            pi_probs,
            seed,
            samples,
            parallelism,
            &leg(),
        );
        check(&run);
        while let Some(cp) = run.checkpoint.take() {
            run = mc_signal_resume(net, target, pi_probs, seed, parallelism, &leg(), cp);
            check(&run);
        }
        return run.estimate;
    }
    let run = mc_signal_probability_budgeted(
        net,
        target,
        pi_probs,
        seed,
        samples,
        parallelism,
        &RunBudget::unlimited(),
    );
    check(&run);
    run.estimate
}

/// [`mc_signal_probability_par`] under a [`RunBudget`]: stops at the
/// first chunk boundary past the deadline, cancellation, or per-call
/// sample cap, returning the partial estimate plus a checkpoint for
/// [`mc_signal_resume`]. A run completed across any number of
/// interruptions yields the identical estimate.
///
/// # Panics
///
/// Panics if `samples == 0` or the probability arity mismatches.
pub fn mc_signal_probability_budgeted(
    net: &Network,
    target: NetId,
    pi_probs: &[f64],
    seed: u64,
    samples: u64,
    parallelism: Parallelism,
    run_budget: &RunBudget,
) -> BudgetedEstimate {
    assert!(samples > 0, "need at least one sample");
    let checkpoint = McCheckpoint {
        passes_done: 0,
        samples,
        hits: vec![0],
    };
    mc_signal_walk(
        net,
        target,
        pi_probs,
        seed,
        parallelism,
        run_budget,
        checkpoint,
    )
}

/// Continues an interrupted [`mc_signal_probability_budgeted`] run.
/// The network, target, probabilities and seed must match the original
/// call.
pub fn mc_signal_resume(
    net: &Network,
    target: NetId,
    pi_probs: &[f64],
    seed: u64,
    parallelism: Parallelism,
    run_budget: &RunBudget,
    checkpoint: McCheckpoint,
) -> BudgetedEstimate {
    assert_eq!(checkpoint.hits.len(), 1, "not a signal checkpoint");
    mc_signal_walk(
        net,
        target,
        pi_probs,
        seed,
        parallelism,
        run_budget,
        checkpoint,
    )
}

/// Per-pass hit counts for one net over the passes `pass_range`,
/// tail-masked against `samples` — the pure kernel every signal worker
/// runs over its disjoint range.
fn mc_signal_span(
    net: &Network,
    target: NetId,
    src: &PatternSource,
    pass_range: Range<usize>,
    samples: u64,
) -> u64 {
    let mut ev = PackedEvaluator::with_width(net, WIDTH);
    let mut batch = vec![0u64; src.input_count() * WIDTH];
    let mut hits = 0u64;
    for pass in pass_range {
        let first_batch = pass as u64 * WIDTH as u64;
        src.fill_batch_wide_at(first_batch, WIDTH, &mut batch);
        let values = ev.eval(&batch);
        for w in 0..WIDTH {
            let drawn = (first_batch + w as u64) * 64;
            if drawn >= samples {
                break;
            }
            let mask = tail_mask(drawn, samples);
            hits += (values[target.index() * WIDTH + w] & mask).count_ones() as u64;
        }
    }
    hits
}

/// The chunked signal-estimation walk: disjoint pass chunks, budget
/// checks between chunks only, exact integer hit sums (chunking and
/// sharding both invisible to the estimate).
fn mc_signal_walk(
    net: &Network,
    target: NetId,
    pi_probs: &[f64],
    seed: u64,
    parallelism: Parallelism,
    run_budget: &RunBudget,
    checkpoint: McCheckpoint,
) -> BudgetedEstimate {
    let McCheckpoint {
        mut passes_done,
        samples,
        mut hits,
    } = checkpoint;
    let src = PatternSource::new(seed, pi_probs.to_vec());
    // One evaluator pass covers WIDTH * 64 samples.
    let total_passes = samples.div_ceil((WIDTH as u64) * 64) as usize;
    let threads = parallelism.resolve();
    let chunk = if run_budget.is_unlimited() {
        total_passes.max(1)
    } else {
        CHUNK_PASSES
    };
    let call_start = passes_done;
    let cap_passes = run_budget
        .max_patterns
        .map(|p| (p.div_ceil((WIDTH as u64) * 64) as usize).max(1));
    let mut stop: Option<StopReason> = None;
    let mut worker_error: Option<ShardError> = None;
    while passes_done < total_passes {
        let mut end = (passes_done + chunk).min(total_passes);
        if let Some(cap) = cap_passes {
            end = end.min(call_start + cap);
        }
        let range = passes_done..end;
        let workers = plan_shards(1, range.len() as u64, threads).workers();
        // A twice-failed shard stops the walk before `passes_done`
        // advances: the failed chunk is discarded whole and the
        // checkpoint stays at the last merged boundary.
        match try_run_sharded(range.len(), workers, |r| {
            mc_signal_span(
                net,
                target,
                &src,
                range.start + r.start..range.start + r.end,
                samples,
            )
        }) {
            Ok(spans) => hits[0] += spans.into_iter().sum::<u64>(),
            Err(e) => {
                worker_error = Some(e);
                stop = Some(StopReason::WorkerFailed);
                break;
            }
        }
        passes_done = range.end;
        if passes_done >= total_passes {
            break;
        }
        if cap_passes.is_some_and(|cap| passes_done - call_start >= cap) {
            stop = Some(StopReason::PatternCap);
            break;
        }
        if let Some(reason) = run_budget.stop_requested() {
            stop = Some(reason);
            break;
        }
    }
    let drawn = ((passes_done as u64) * (WIDTH as u64) * 64)
        .min(samples)
        .max(1);
    let estimate = estimate_from_counts(hits[0], drawn);
    match stop {
        Some(reason) => BudgetedEstimate {
            estimate,
            status: RunStatus::Interrupted(reason),
            checkpoint: Some(McCheckpoint {
                passes_done,
                samples,
                hits,
            }),
            worker_error,
        },
        None => BudgetedEstimate {
            estimate,
            status: RunStatus::Completed,
            checkpoint: None,
            worker_error: None,
        },
    }
}

/// Monte Carlo detection probability of one fault.
///
/// # Panics
///
/// Panics if `samples == 0` or the probability arity mismatches.
pub fn mc_detection_probability(
    net: &Network,
    fault: &dynmos_netlist::NetworkFault,
    pi_probs: &[f64],
    seed: u64,
    samples: u64,
) -> Estimate {
    mc_detection_core(
        net,
        std::slice::from_ref(fault),
        pi_probs,
        seed,
        samples,
        Parallelism::default(),
    )
    .pop()
    .expect("one estimate per fault")
}

/// Monte Carlo detection probabilities for a whole list (one estimate per
/// entry), sharing one pattern stream across faults so estimates are
/// comparable — and sharing each batch's good-machine evaluation, so the
/// marginal cost per fault is its fanout cone, not the network. Uses the
/// default thread policy ([`Parallelism::Auto`]).
pub fn mc_detection_probabilities(
    net: &Network,
    faults: &[FaultEntry],
    pi_probs: &[f64],
    seed: u64,
    samples: u64,
) -> Vec<Estimate> {
    mc_detection_probabilities_par(net, faults, pi_probs, seed, samples, Parallelism::default())
}

/// [`mc_detection_probabilities`] with an explicit thread policy. Work
/// is sharded along the planner's axis — fault slices replaying the same
/// counter-based stream, or disjoint pass ranges covering every fault in
/// the few-fault regime (hit counts add exactly); estimates are
/// identical at any thread count either way. When `DYNMOS_BUDGET_MS`
/// is set, the estimation runs as an interrupt/resume loop with that
/// per-leg deadline — producing the identical estimates.
pub fn mc_detection_probabilities_par(
    net: &Network,
    faults: &[FaultEntry],
    pi_probs: &[f64],
    seed: u64,
    samples: u64,
    parallelism: Parallelism,
) -> Vec<Estimate> {
    let faults: Vec<NetworkFault> = faults.iter().map(|e| e.fault.clone()).collect();
    mc_detection_core(net, &faults, pi_probs, seed, samples, parallelism)
}

/// [`mc_detection_probabilities_par`] under a [`RunBudget`]: stops at
/// the first chunk boundary past the deadline, cancellation, or
/// per-call sample cap, returning partial estimates plus a checkpoint
/// for [`mc_detection_resume`]. A run completed across any number of
/// interruptions yields estimates bit-identical to an uninterrupted
/// run at any thread count.
///
/// # Panics
///
/// Panics if `samples == 0` or the probability arity mismatches.
pub fn mc_detection_probabilities_budgeted(
    net: &Network,
    faults: &[FaultEntry],
    pi_probs: &[f64],
    seed: u64,
    samples: u64,
    parallelism: Parallelism,
    run_budget: &RunBudget,
) -> BudgetedEstimates {
    assert!(samples > 0, "need at least one sample");
    if faults.is_empty() {
        return BudgetedEstimates {
            estimates: Vec::new(),
            status: RunStatus::Completed,
            checkpoint: None,
            worker_error: None,
        };
    }
    let faults: Vec<NetworkFault> = faults.iter().map(|e| e.fault.clone()).collect();
    let checkpoint = McCheckpoint {
        passes_done: 0,
        samples,
        hits: vec![0; faults.len()],
    };
    mc_detection_walk(
        net,
        &faults,
        pi_probs,
        seed,
        parallelism,
        run_budget,
        checkpoint,
    )
}

/// Continues an interrupted [`mc_detection_probabilities_budgeted`]
/// run. The network, fault list, probabilities and seed must match the
/// original call.
///
/// # Panics
///
/// Panics if the checkpoint's fault count differs from `faults`.
pub fn mc_detection_resume(
    net: &Network,
    faults: &[FaultEntry],
    pi_probs: &[f64],
    seed: u64,
    parallelism: Parallelism,
    run_budget: &RunBudget,
    checkpoint: McCheckpoint,
) -> BudgetedEstimates {
    assert_eq!(
        checkpoint.hits.len(),
        faults.len(),
        "checkpoint fault count mismatch"
    );
    let faults: Vec<NetworkFault> = faults.iter().map(|e| e.fault.clone()).collect();
    mc_detection_walk(
        net,
        &faults,
        pi_probs,
        seed,
        parallelism,
        run_budget,
        checkpoint,
    )
}

fn mc_detection_core(
    net: &Network,
    faults: &[NetworkFault],
    pi_probs: &[f64],
    seed: u64,
    samples: u64,
    parallelism: Parallelism,
) -> Vec<Estimate> {
    assert!(samples > 0, "need at least one sample");
    if faults.is_empty() {
        return Vec::new();
    }
    let fresh = |_: &()| McCheckpoint {
        passes_done: 0,
        samples,
        hits: vec![0; faults.len()],
    };
    // A worker that failed even its serial retry keeps the historical
    // panicking contract on this entry point.
    let check = |run: &BudgetedEstimates| {
        if let Some(e) = &run.worker_error {
            panic!("{e}");
        }
    };
    if let Some(ms) = budget::env_budget_ms() {
        let leg = || RunBudget::deadline_in(Duration::from_millis(ms));
        let mut run =
            mc_detection_walk(net, faults, pi_probs, seed, parallelism, &leg(), fresh(&()));
        check(&run);
        while let Some(cp) = run.checkpoint.take() {
            run = mc_detection_walk(net, faults, pi_probs, seed, parallelism, &leg(), cp);
            check(&run);
        }
        return run.estimates;
    }
    let run = mc_detection_walk(
        net,
        faults,
        pi_probs,
        seed,
        parallelism,
        &RunBudget::unlimited(),
        fresh(&()),
    );
    check(&run);
    run.estimates
}

/// The chunked detection-estimation walk both entry points share. Each
/// chunk shards along the planner's axis; per-fault hit counts over
/// disjoint pass ranges add exactly, so neither chunking nor sharding
/// is visible in the estimates; budget checks happen only between
/// chunks, after at least one has run.
fn mc_detection_walk(
    net: &Network,
    faults: &[NetworkFault],
    pi_probs: &[f64],
    seed: u64,
    parallelism: Parallelism,
    run_budget: &RunBudget,
    checkpoint: McCheckpoint,
) -> BudgetedEstimates {
    let McCheckpoint {
        mut passes_done,
        samples,
        mut hits,
    } = checkpoint;
    let src = PatternSource::new(seed, pi_probs.to_vec());
    let total_passes = samples.div_ceil((WIDTH as u64) * 64) as usize;
    let threads = parallelism.resolve();
    let chunk = if run_budget.is_unlimited() {
        total_passes.max(1)
    } else {
        CHUNK_PASSES
    };
    let call_start = passes_done;
    let cap_passes = run_budget
        .max_patterns
        .map(|p| (p.div_ceil((WIDTH as u64) * 64) as usize).max(1));
    let mut stop: Option<StopReason> = None;
    let mut worker_error: Option<ShardError> = None;
    while passes_done < total_passes {
        let mut end = (passes_done + chunk).min(total_passes);
        if let Some(cap) = cap_passes {
            end = end.min(call_start + cap);
        }
        let range = passes_done..end;
        // A twice-failed shard stops the walk before `passes_done`
        // advances: the failed chunk is discarded whole and the
        // checkpoint stays at the last merged boundary.
        let sharded = match plan_shards(faults.len(), range.len() as u64, threads) {
            ShardPlan::Faults(workers) => try_run_sharded(faults.len(), workers, |fault_range| {
                mc_detection_span(net, &faults[fault_range], &src, range.clone(), samples)
            })
            .map(|results| results.into_iter().flatten().collect::<Vec<u64>>()),
            ShardPlan::Patterns(workers) => try_run_sharded(range.len(), workers, |pass_range| {
                mc_detection_span(
                    net,
                    faults,
                    &src,
                    range.start + pass_range.start..range.start + pass_range.end,
                    samples,
                )
            })
            .map(|spans| {
                // Disjoint pass ranges: per-fault hit counts add exactly.
                let mut acc = vec![0u64; faults.len()];
                for span in spans {
                    for (a, s) in acc.iter_mut().zip(span) {
                        *a += s;
                    }
                }
                acc
            }),
        };
        let chunk_hits: Vec<u64> = match sharded {
            Ok(v) => v,
            Err(e) => {
                worker_error = Some(e);
                stop = Some(StopReason::WorkerFailed);
                break;
            }
        };
        for (h, c) in hits.iter_mut().zip(chunk_hits) {
            *h += c;
        }
        passes_done = range.end;
        if passes_done >= total_passes {
            break;
        }
        if cap_passes.is_some_and(|cap| passes_done - call_start >= cap) {
            stop = Some(StopReason::PatternCap);
            break;
        }
        if let Some(reason) = run_budget.stop_requested() {
            stop = Some(reason);
            break;
        }
    }
    let drawn = ((passes_done as u64) * (WIDTH as u64) * 64)
        .min(samples)
        .max(1);
    let estimates = hits
        .iter()
        .map(|&h| estimate_from_counts(h, drawn))
        .collect();
    match stop {
        Some(reason) => BudgetedEstimates {
            estimates,
            status: RunStatus::Interrupted(reason),
            checkpoint: Some(McCheckpoint {
                passes_done,
                samples,
                hits,
            }),
            worker_error,
        },
        None => BudgetedEstimates {
            estimates,
            status: RunStatus::Completed,
            checkpoint: None,
            worker_error: None,
        },
    }
}

/// The kernel both axes share: per-fault hit counts for `faults` over
/// the wide evaluator passes `pass_range` of the stream (pass `p` covers
/// samples `p * WIDTH * 64 ..`, tail-masked against `samples`). The
/// fault axis calls it with the full pass range and a fault slice; the
/// pattern axis with a pass slice and the full fault list.
fn mc_detection_span(
    net: &Network,
    faults: &[NetworkFault],
    src: &PatternSource,
    pass_range: Range<usize>,
    samples: u64,
) -> Vec<u64> {
    let prepared: Vec<_> = faults.iter().map(|f| net.prepare_fault(f)).collect();
    let mut ev = PackedEvaluator::with_width(net, WIDTH);
    let mut batch = vec![0u64; src.input_count() * WIDTH];
    let mut hits = vec![0u64; prepared.len()];
    let mut diff = vec![0u64; WIDTH];
    let mut masks = [0u64; WIDTH];
    for pass in pass_range {
        let first_batch = pass as u64 * WIDTH as u64;
        if first_batch * 64 >= samples {
            break;
        }
        src.fill_batch_wide_at(first_batch, WIDTH, &mut batch);
        ev.eval(&batch);
        for (w, mask) in masks.iter_mut().enumerate() {
            let drawn = (first_batch + w as u64) * 64;
            *mask = if drawn >= samples {
                0
            } else {
                tail_mask(drawn, samples)
            };
        }
        for (fi, p) in prepared.iter().enumerate() {
            ev.fault_diff(p, &mut diff);
            for (d, m) in diff.iter().zip(&masks) {
                hits[fi] += (d & m).count_ones() as u64;
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::exact_detection_probability;
    use crate::estimate::exact_signal_probability;
    use crate::list::network_fault_list;
    use dynmos_netlist::generate::{and_or_tree, c17_dynamic_nmos, random_domino_network};

    /// Tests compare at 3 half-widths (~99.7%) so seed luck does not
    /// flake CI; `covers` itself documents the 95% interval.
    fn close(est: &Estimate, truth: f64) -> bool {
        (est.value - truth).abs() <= (3.0 / 1.96) * est.half_width.max(1e-3)
    }

    #[test]
    fn mc_signal_probability_matches_exact_small() {
        let net = c17_dynamic_nmos();
        let probs = vec![0.5; 5];
        for &po in net.primary_outputs() {
            let exact = exact_signal_probability(&net, po, &probs);
            let est = mc_signal_probability(&net, po, &probs, 11, 100_000);
            assert!(close(&est, exact), "exact {exact} vs {est:?}");
        }
    }

    #[test]
    fn mc_detection_matches_exact_small() {
        let net = c17_dynamic_nmos();
        let faults = network_fault_list(&net);
        let probs = vec![0.5; 5];
        for e in faults.iter().take(8) {
            let exact = exact_detection_probability(&net, &e.fault, &probs);
            let est = mc_detection_probability(&net, &e.fault, &probs, 23, 100_000);
            assert!(close(&est, exact), "{}: exact {exact} vs {est:?}", e.label);
        }
    }

    #[test]
    fn mc_works_beyond_exact_limit() {
        // 32 primary inputs: exact enumeration is impossible; MC is fine.
        let net = and_or_tree(5);
        assert!(net.primary_inputs().len() > 24);
        let probs = vec![0.5; 32];
        let po = net.primary_outputs()[0];
        let est = mc_signal_probability(&net, po, &probs, 3, 200_000);
        // Analytic value for the alternating tree of depth 5:
        // AND: p^2, OR: 1-(1-p)^2 alternating from leaves.
        let mut p = 0.5f64;
        for level in 1..=5 {
            p = if level % 2 == 1 {
                p * p
            } else {
                1.0 - (1.0 - p) * (1.0 - p)
            };
        }
        assert!(close(&est, p), "analytic {p} vs {est:?}");
    }

    #[test]
    fn half_width_shrinks_with_samples() {
        let net = c17_dynamic_nmos();
        let po = net.primary_outputs()[0];
        let probs = vec![0.5; 5];
        let small = mc_signal_probability(&net, po, &probs, 1, 1_000);
        let large = mc_signal_probability(&net, po, &probs, 1, 100_000);
        assert!(large.half_width < small.half_width);
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let net = random_domino_network(5, 4, 6);
        let n = net.primary_inputs().len();
        let po = net.primary_outputs()[0];
        if n <= 12 {
            let probs = vec![0.875; n];
            let exact = exact_signal_probability(&net, po, &probs);
            let est = mc_signal_probability(&net, po, &probs, 9, 150_000);
            assert!(close(&est, exact), "exact {exact} vs {est:?}");
        }
    }

    #[test]
    fn estimates_count_samples_exactly() {
        let net = c17_dynamic_nmos();
        let po = net.primary_outputs()[0];
        // Non-multiple of 64 exercises the tail mask.
        let est = mc_signal_probability(&net, po, &[0.5; 5], 1, 1_000);
        assert_eq!(est.samples, 1_000);
        assert!(est.value >= 0.0 && est.value <= 1.0);
    }

    #[test]
    fn thread_count_does_not_change_estimates() {
        let net = c17_dynamic_nmos();
        let faults = network_fault_list(&net);
        let probs = vec![0.25, 0.5, 0.9375, 0.5, 0.75];
        let serial =
            mc_detection_probabilities_par(&net, &faults, &probs, 7, 10_123, Parallelism::Serial);
        let po = net.primary_outputs()[0];
        let sig_serial =
            mc_signal_probability_par(&net, po, &probs, 7, 10_123, Parallelism::Serial);
        for threads in [2usize, 4, 8] {
            let par = Parallelism::Fixed(threads);
            let est = mc_detection_probabilities_par(&net, &faults, &probs, 7, 10_123, par);
            assert_eq!(est, serial, "threads={threads}");
            let sig = mc_signal_probability_par(&net, po, &probs, 7, 10_123, par);
            assert_eq!(sig, sig_serial, "threads={threads}");
        }
    }

    #[test]
    fn few_fault_pattern_axis_estimates_match_serial() {
        // 2 faults < threads: the planner shards the pass axis; exact
        // integer hit sums keep the estimates bit-identical.
        let net = c17_dynamic_nmos();
        let faults: Vec<FaultEntry> = network_fault_list(&net).into_iter().take(2).collect();
        let probs = vec![0.25, 0.5, 0.9375, 0.5, 0.75];
        let serial =
            mc_detection_probabilities_par(&net, &faults, &probs, 7, 50_123, Parallelism::Serial);
        for threads in [4usize, 8, 16] {
            let est = mc_detection_probabilities_par(
                &net,
                &faults,
                &probs,
                7,
                50_123,
                Parallelism::Fixed(threads),
            );
            assert_eq!(est, serial, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let net = c17_dynamic_nmos();
        let po = net.primary_outputs()[0];
        mc_signal_probability(&net, po, &[0.5; 5], 1, 0);
    }
}
