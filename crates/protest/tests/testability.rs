//! Integration tests of the tiered testability engine: differential
//! properties against the exact detector, the paper-scale optimizer
//! acceptance run on `ripple_adder(80)`, and the `testability` service
//! kernel's snapshot/restore durability contract.

use dynmos_netlist::generate::{carry_chain, random_domino_network, ripple_adder};
use dynmos_protest::service::build_builtin;
use dynmos_protest::{
    network_fault_list, optimize_input_probabilities_with, stuck_fault_list, DetectionEngine,
    EstimateMethod, ExactDetector, JobContext, Json, Parallelism, RunBudget, RunStatus,
    TestabilityConfig, TierMode,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Mildly skewed but valid per-input probabilities.
fn skewed_probs(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.2 + 0.03 * (i % 16) as f64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The BDD tier is exact: on random networks (well under 16
    /// inputs) its detection probabilities match the enumeration-based
    /// [`ExactDetector`] within 1e-12.
    #[test]
    fn bdd_tier_matches_exact_detector(seed in 0u64..10_000) {
        let net = random_domino_network(seed, 6, 9);
        let n = net.primary_inputs().len();
        prop_assume!((1..=16).contains(&n));
        let faults = network_fault_list(&net);
        let probs = skewed_probs(n);
        let exact = ExactDetector::new(&net, &faults).probabilities(&probs);
        let mut engine =
            DetectionEngine::new(&net, &faults, TestabilityConfig::new(TierMode::Bdd));
        let est = engine
            .estimates(&probs, &RunBudget::unlimited())
            .expect("unlimited budget cannot interrupt");
        for ((e, &x), f) in est.iter().zip(&exact).zip(&faults) {
            prop_assert_eq!(e.method, EstimateMethod::Bdd, "{}", f.label);
            prop_assert!(
                (e.value - x).abs() <= 1e-12,
                "{}: bdd {} vs exact {}",
                f.label, e.value, x
            );
        }
    }

    /// The cutting tier is sound: its certified interval always
    /// contains the exact detection probability, and the reported
    /// value stays inside the interval.
    #[test]
    fn cutting_bounds_contain_exact_value(seed in 0u64..10_000) {
        let net = random_domino_network(seed, 6, 9);
        let n = net.primary_inputs().len();
        prop_assume!((1..=16).contains(&n));
        let faults = network_fault_list(&net);
        let probs = skewed_probs(n);
        let exact = ExactDetector::new(&net, &faults).probabilities(&probs);
        // No tightening: the raw interval propagation must already be
        // sound on its own.
        let config = TestabilityConfig::new(TierMode::Cutting).with_mc_tighten_samples(0);
        let mut engine = DetectionEngine::new(&net, &faults, config);
        let est = engine
            .estimates(&probs, &RunBudget::unlimited())
            .expect("unlimited budget cannot interrupt");
        for ((e, &x), f) in est.iter().zip(&exact).zip(&faults) {
            prop_assert_eq!(e.method, EstimateMethod::Cutting, "{}", f.label);
            let (lo, hi) = e.bounds.expect("cutting reports bounds");
            prop_assert!(
                lo - 1e-12 <= x && x <= hi + 1e-12,
                "{}: exact {} outside [{lo}, {hi}]",
                f.label, x
            );
            prop_assert!(lo - 1e-12 <= e.value && e.value <= hi + 1e-12, "{}", f.label);
        }
    }
}

/// The paper-scale acceptance run: weight optimization on
/// `ripple_adder(80)` — 161 inputs, far beyond any exact enumeration —
/// completes under a finite `RunBudget` on the symbolic tiers, with a
/// per-fault method tag recorded for every fault.
#[test]
fn optimizer_completes_on_ripple_adder_80_with_method_tags() {
    let net = ripple_adder(80);
    assert_eq!(net.primary_inputs().len(), 161);
    let faults = stuck_fault_list(&net);
    let budget = RunBudget::deadline_in(Duration::from_secs(600));
    let run = optimize_input_probabilities_with(
        &net,
        &faults,
        0.999,
        0, // the uniform + grid scan alone is the acceptance bar here
        Parallelism::default(),
        &budget,
        &TestabilityConfig::new(TierMode::Auto),
    );
    assert!(run.status.is_complete(), "status {:?}", run.status);
    assert_eq!(run.methods.len(), faults.len());
    assert!(
        run.methods
            .iter()
            .all(|&m| m == EstimateMethod::Bdd || m == EstimateMethod::Cutting),
        "161 inputs must resolve to the symbolic tiers"
    );
    assert!(
        run.methods.contains(&EstimateMethod::Bdd),
        "the adder's cones fit the default node budget"
    );
    assert!(run.report.optimized_length <= run.report.uniform_length);
    assert_eq!(run.report.probabilities.len(), 161);
}

/// The `testability` kernel's durability contract: a run sliced into
/// expired-budget legs, with the kernel torn down and rebuilt from a
/// JSON-serialized snapshot between every leg, produces output
/// byte-identical to a single uninterrupted run.
#[test]
fn testability_kernel_resumes_bit_identical_from_snapshots() {
    let net = Arc::new(carry_chain(20)); // 41 inputs: symbolic tiers
    let faults = stuck_fault_list(&net);
    // A small node budget plus tightening samples exercises all of
    // bdd, cutting, and the per-fault-seeded sampler across resumes.
    let params =
        Json::parse(r#"{"seed":7,"mode":"auto","node_budget":600,"tighten_samples":128}"#).unwrap();
    let make = || {
        build_builtin(
            "testability",
            JobContext {
                net: net.clone(),
                faults: faults.clone(),
                parallelism: Parallelism::Serial,
                params: &params,
            },
        )
        .expect("testability is built in")
        .expect("request is valid")
    };

    let mut reference = make();
    assert!(matches!(
        reference.run_leg(&RunBudget::unlimited()),
        RunStatus::Completed
    ));
    let expected = reference.output().to_string();

    // Every leg runs on an already-expired deadline: forward progress
    // guarantees exactly the minimum per-leg commit, maximizing the
    // number of snapshot boundaries crossed.
    let expired = RunBudget::deadline_in(Duration::ZERO);
    let mut snapshot = Json::Null;
    let mut legs = 0;
    let final_output = loop {
        let mut kernel = make();
        kernel.restore(&snapshot).expect("snapshot round-trips");
        let status = kernel.run_leg(&expired);
        // Through the wire format, as the write-ahead journal would.
        snapshot = Json::parse(&kernel.snapshot().to_string()).unwrap();
        legs += 1;
        assert!(legs <= 10 * faults.len(), "no forward progress");
        if matches!(status, RunStatus::Completed) {
            break kernel.output().to_string();
        }
    };
    assert!(legs > 2, "budget never interrupted the run — vacuous test");
    assert_eq!(
        final_output, expected,
        "resumed run diverged after {legs} legs"
    );
}

/// A corrupt snapshot is refused with a message, not trusted.
#[test]
fn testability_kernel_rejects_corrupt_snapshots() {
    let net = Arc::new(carry_chain(4));
    let faults = stuck_fault_list(&net);
    let params = Json::parse(r#"{"seed":1}"#).unwrap();
    let mut kernel = build_builtin(
        "testability",
        JobContext {
            net: net.clone(),
            faults: faults.clone(),
            parallelism: Parallelism::Serial,
            params: &params,
        },
    )
    .unwrap()
    .unwrap();
    for bad in [
        r#"{"next":1,"estimates":[]}"#,
        r#"{"next":0}"#,
        r#"{"next":1,"estimates":[{"value":0.5}]}"#,
        r#"{"next":1,"estimates":[{"value":0.5,"std_error":0,"method":"warp"}]}"#,
        r#"{"next":1,"estimates":[{"value":0.5,"std_error":0,"method":"cutting","low":0.1}]}"#,
    ] {
        let snap = Json::parse(bad).unwrap();
        assert!(kernel.restore(&snap).is_err(), "snapshot accepted: {bad}");
    }
}
