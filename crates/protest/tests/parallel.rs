//! Differential tests: every thread-sharded PROTEST path must be
//! bit-identical to its serial form for the same seed, at every tested
//! thread count, from paper-scale networks up to the ISCAS-class
//! generated circuits.

use dynmos_netlist::generate::{array_multiplier, random_domino_network, ripple_adder};
use dynmos_netlist::Network;
use dynmos_protest::{
    mc_detection_probabilities_par, mc_signal_probability_par, network_fault_list,
    stuck_fault_list, FaultEntry, FaultSimulator, Parallelism, PatternSource,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The circuits under differential test: random multi-level domino
/// networks plus the large structured bipolar circuits.
fn corpus() -> Vec<(String, Network, Vec<FaultEntry>)> {
    let mut out = Vec::new();
    for seed in [3u64, 11, 29] {
        let net = random_domino_network(seed, 8, 30);
        let faults = network_fault_list(&net);
        out.push((format!("random{seed}"), net, faults));
    }
    let adder = ripple_adder(48); // 240 gates
    let faults = stuck_fault_list(&adder);
    out.push(("ripple_adder_48".into(), adder, faults));
    let mult = array_multiplier(6); // 164 gates
    let faults = stuck_fault_list(&mult);
    out.push(("array_mult_6".into(), mult, faults));
    out
}

#[test]
fn parallel_fsim_is_bit_identical_to_serial() {
    for (name, net, faults) in corpus() {
        let n = net.primary_inputs().len();
        let probs: Vec<f64> = (0..n).map(|i| [0.5, 0.25, 0.9375, 0.75][i % 4]).collect();
        let mut serial_src = PatternSource::new(0xDAC0 + n as u64, probs.clone());
        let serial = FaultSimulator::with_parallelism(&net, Parallelism::Serial).run_random(
            &faults,
            &mut serial_src,
            5000, // non-multiple of 64: exercises the tail mask
        );
        for threads in THREAD_COUNTS {
            let mut src = PatternSource::new(0xDAC0 + n as u64, probs.clone());
            let sim = FaultSimulator::with_parallelism(&net, Parallelism::Fixed(threads));
            let out = sim.run_random(&faults, &mut src, 5000);
            assert_eq!(
                out.detected_at, serial.detected_at,
                "{name}: detection indices differ at {threads} threads"
            );
            assert_eq!(
                out.patterns_applied, serial.patterns_applied,
                "{name}: pattern counts differ at {threads} threads"
            );
            assert_eq!(
                out.coverage_curve, serial.coverage_curve,
                "{name}: coverage curves differ at {threads} threads"
            );
            assert_eq!(
                out.escapes(),
                serial.escapes(),
                "{name}: escape sets differ at {threads} threads"
            );
            assert_eq!(
                src.position(),
                serial_src.position(),
                "{name}: stream cursors differ at {threads} threads"
            );
        }
    }
}

/// The two-axis planner satellite: fault-sharded (500 faults), the
/// boundary (3 faults), and pattern-sharded (1 fault) runs on the
/// ISCAS-scale adder must all be bit-identical to serial at every thread
/// count — whichever axis the planner cuts for each (fault count,
/// thread count) pair.
#[test]
fn few_fault_pattern_axis_is_bit_identical_to_serial() {
    let net = ripple_adder(80); // 400 gates
    let all = stuck_fault_list(&net);
    let n = net.primary_inputs().len();
    // Heavily biased weights keep hard-fault tails live deep into the
    // budget, so pattern shards do real work over their whole ranges.
    let probs = vec![0.0625f64; n];
    for fault_count in [1usize, 3, 500] {
        let faults: Vec<FaultEntry> = all.iter().take(fault_count).cloned().collect();
        let mut serial_src = PatternSource::new(0xFACE, probs.clone());
        let serial = FaultSimulator::with_parallelism(&net, Parallelism::Serial).run_random(
            &faults,
            &mut serial_src,
            5000, // non-multiple of 64: the final-batch lane mask crosses axes
        );
        for threads in THREAD_COUNTS {
            let mut src = PatternSource::new(0xFACE, probs.clone());
            let sim = FaultSimulator::with_parallelism(&net, Parallelism::Fixed(threads));
            let out = sim.run_random(&faults, &mut src, 5000);
            assert_eq!(
                out.detected_at, serial.detected_at,
                "{fault_count} faults: detection indices differ at {threads} threads"
            );
            assert_eq!(
                out.patterns_applied, serial.patterns_applied,
                "{fault_count} faults: pattern counts differ at {threads} threads"
            );
            assert_eq!(
                out.coverage_curve, serial.coverage_curve,
                "{fault_count} faults: coverage curves differ at {threads} threads"
            );
            assert_eq!(
                out.escapes(),
                serial.escapes(),
                "{fault_count} faults: escape sets differ at {threads} threads"
            );
            assert_eq!(
                src.position(),
                serial_src.position(),
                "{fault_count} faults: stream cursors differ at {threads} threads"
            );
        }
    }
}

/// A single hard fault — the exact workload the pattern axis exists for:
/// test-length validation of one optimized-weight fault. Pick the last
/// detected fault under the biased stream and rerun it alone.
#[test]
fn few_fault_single_hard_fault_detection_index_is_stable() {
    let net = ripple_adder(80);
    let all = stuck_fault_list(&net);
    let n = net.primary_inputs().len();
    let probs = vec![0.0625f64; n];
    let mut probe_src = PatternSource::new(0xBEEF, probs.clone());
    let probe = FaultSimulator::with_parallelism(&net, Parallelism::Serial).run_random(
        &all,
        &mut probe_src,
        5000,
    );
    // Hardest = latest first detection (escapes would be even harder but
    // give no index to compare shard merges against).
    let (hardest, _) = probe
        .detected_at
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|d| (i, d)))
        .max_by_key(|&(_, d)| d)
        .expect("some fault detected");
    let lone = vec![all[hardest].clone()];
    let mut serial_src = PatternSource::new(0xBEEF, probs.clone());
    let serial = FaultSimulator::with_parallelism(&net, Parallelism::Serial).run_random(
        &lone,
        &mut serial_src,
        5000,
    );
    assert!(serial.detected_at[0].is_some());
    for threads in THREAD_COUNTS {
        let mut src = PatternSource::new(0xBEEF, probs.clone());
        let out = FaultSimulator::with_parallelism(&net, Parallelism::Fixed(threads))
            .run_random(&lone, &mut src, 5000);
        assert_eq!(out.detected_at, serial.detected_at, "threads={threads}");
        assert_eq!(out.patterns_applied, serial.patterns_applied);
        assert_eq!(src.position(), serial_src.position());
    }
}

/// Few-fault Monte Carlo detection estimates cross the same planner:
/// pass-axis hit counts must add back to the serial estimates exactly.
#[test]
fn few_fault_monte_carlo_is_bit_identical_to_serial() {
    let net = ripple_adder(24);
    let all = stuck_fault_list(&net);
    let n = net.primary_inputs().len();
    let probs: Vec<f64> = (0..n).map(|i| [0.9375, 0.5, 0.25][i % 3]).collect();
    for fault_count in [1usize, 2] {
        let faults: Vec<FaultEntry> = all.iter().take(fault_count).cloned().collect();
        let serial =
            mc_detection_probabilities_par(&net, &faults, &probs, 42, 9_999, Parallelism::Serial);
        for threads in THREAD_COUNTS {
            let est = mc_detection_probabilities_par(
                &net,
                &faults,
                &probs,
                42,
                9_999,
                Parallelism::Fixed(threads),
            );
            assert_eq!(est, serial, "{fault_count} faults at {threads} threads");
        }
    }
}

#[test]
fn parallel_fsim_covers_large_circuits() {
    // Sanity beyond equality: the sharded simulator actually detects
    // faults on the ISCAS-scale circuits.
    let net = ripple_adder(80); // 400 gates
    let faults = stuck_fault_list(&net);
    let mut src = PatternSource::uniform(7, net.primary_inputs().len());
    let sim = FaultSimulator::with_parallelism(&net, Parallelism::Fixed(4));
    let out = sim.run_random(&faults, &mut src, 20_000);
    assert!(
        out.coverage() > 0.95,
        "coverage {} suspiciously low",
        out.coverage()
    );
}

#[test]
fn parallel_monte_carlo_is_bit_identical_to_serial() {
    for (name, net, faults) in corpus() {
        let n = net.primary_inputs().len();
        let probs: Vec<f64> = (0..n).map(|i| [0.9375, 0.5, 0.25][i % 3]).collect();
        // Keep the fault list small enough for quick estimation.
        let subset: Vec<FaultEntry> = faults.into_iter().take(24).collect();
        let serial =
            mc_detection_probabilities_par(&net, &subset, &probs, 99, 7_777, Parallelism::Serial);
        let po = net.primary_outputs()[0];
        let sig_serial =
            mc_signal_probability_par(&net, po, &probs, 99, 7_777, Parallelism::Serial);
        for threads in THREAD_COUNTS {
            let par = Parallelism::Fixed(threads);
            let est = mc_detection_probabilities_par(&net, &subset, &probs, 99, 7_777, par);
            assert_eq!(
                est, serial,
                "{name}: detection estimates at {threads} threads"
            );
            let sig = mc_signal_probability_par(&net, po, &probs, 99, 7_777, par);
            assert_eq!(
                sig, sig_serial,
                "{name}: signal estimate at {threads} threads"
            );
        }
    }
}

#[test]
fn auto_parallelism_matches_serial_on_default_entry_points() {
    // The public defaults (Parallelism::Auto) must agree with the forced
    // serial path — this is what guarantees user-visible determinism no
    // matter the machine (or the DYNMOS_THREADS override CI sets).
    let net = ripple_adder(24);
    let faults = stuck_fault_list(&net);
    let mut auto_src = PatternSource::uniform(5, net.primary_inputs().len());
    let auto = FaultSimulator::new(&net).run_random(&faults, &mut auto_src, 4096);
    let mut serial_src = PatternSource::uniform(5, net.primary_inputs().len());
    let serial = FaultSimulator::with_parallelism(&net, Parallelism::Serial).run_random(
        &faults,
        &mut serial_src,
        4096,
    );
    assert_eq!(auto.detected_at, serial.detected_at);
    assert_eq!(auto.coverage_curve, serial.coverage_curve);
}
