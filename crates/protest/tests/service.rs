//! Job-engine integration tests: supervised runs under deterministic
//! fault injection must complete bit-identical to uninterrupted runs,
//! the admission queue must shed with structured rejections, deadlines
//! must surface partial results, and the cache's validation-on-hit
//! must catch poisoned entries.

use dynmos_netlist::generate::ripple_adder_bench_text;
use dynmos_protest::{BackoffPolicy, EngineConfig, FaultPlan, JobStatus, Json, Parallelism};
use dynmos_protest::{JobEngine, StopReason};
use std::sync::Arc;
use std::time::Duration;

/// A config with no sleeps and no wall-clock leg slicing: tests use
/// deterministic pattern-count legs only.
fn test_config() -> EngineConfig {
    EngineConfig {
        backoff: BackoffPolicy {
            base_ms: 0,
            cap_ms: 0,
            seed: 0,
        },
        parallelism: Parallelism::Fixed(2),
        ..EngineConfig::default()
    }
}

fn submit_ok(engine: &mut JobEngine, request: &str) -> u64 {
    let verdict = engine.submit_json(&Json::parse(request).unwrap());
    assert_eq!(
        verdict.get("ok").and_then(Json::as_bool),
        Some(true),
        "submit rejected: {verdict}"
    );
    verdict.get("id").and_then(Json::as_u64).unwrap()
}

fn fsim_request(bench: &str, patterns: u64) -> String {
    let req = Json::Obj(vec![
        ("kind".into(), Json::str("fsim")),
        ("format".into(), Json::str("bench")),
        ("netlist".into(), Json::str(bench.to_owned())),
        ("patterns".into(), Json::num(patterns)),
        ("fault_limit".into(), Json::num(64)),
    ]);
    req.to_string()
}

/// An fsim request with extremely biased input weights (p = 2^-16 per
/// input): the covered fault slice is dominated by primary-input
/// stuck-ats, whose stuck-at-0 half then has detection probability
/// 2^-16 — they outlive every pattern budget used here, so early
/// coverage exit can never collapse a run into a single leg.
fn hard_fsim_request(bench: &str, inputs: usize, patterns: u64) -> Json {
    Json::Obj(vec![
        ("kind".into(), Json::str("fsim")),
        ("format".into(), Json::str("bench")),
        ("netlist".into(), Json::str(bench.to_owned())),
        ("patterns".into(), Json::num(patterns)),
        ("fault_limit".into(), Json::num(200)),
        (
            "probs".into(),
            Json::Arr(vec![Json::Num(1.0 / 65536.0); inputs]),
        ),
    ])
}

/// The tentpole acceptance criterion: a job killed by injected faults
/// several times completes via checkpointed retries with a result
/// bit-identical to an undisturbed run — at 1, 2, and 4 threads.
#[test]
fn killed_job_completes_bit_identical_to_undisturbed_run() {
    let bench = ripple_adder_bench_text(80);
    let request = hard_fsim_request(&bench, 161, 5000);
    let reference = {
        let mut engine = JobEngine::new(EngineConfig {
            leg_patterns: Some(1024),
            parallelism: Parallelism::Serial,
            ..test_config()
        });
        let verdict = engine.submit_json(&request);
        assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(true));
        let record = engine.run_next().expect("queued");
        assert_eq!(record.status, JobStatus::Completed);
        assert_eq!(record.retries, 0);
        assert!(record.legs >= 5, "5000 patterns over 1024-pattern legs");
        record.result.to_string()
    };
    for threads in [1usize, 2, 4] {
        // Kill legs 1 and 3 (0-based) of job 1: two mid-run deaths,
        // both after real progress. `kill_at` is thread-count
        // independent, unlike rate-based injection.
        let plan = Arc::new(FaultPlan::new(11).kill_at(&[1, 3]));
        let mut engine = JobEngine::new(EngineConfig {
            leg_patterns: Some(1024),
            parallelism: Parallelism::Fixed(threads),
            fault_plan: Some(plan),
            ..test_config()
        });
        let verdict = engine.submit_json(&request);
        assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(true));
        let record = engine.run_next().expect("queued");
        assert_eq!(record.status, JobStatus::Completed, "threads={threads}");
        assert_eq!(record.retries, 2, "threads={threads}: both kills retried");
        assert!(record.legs > 5, "threads={threads}: {} legs", record.legs);
        assert_eq!(
            record.result.to_string(),
            reference,
            "threads={threads}: result differs from undisturbed run"
        );
    }
}

/// Retry is bounded by *consecutive* failures: a plan that kills every
/// leg exhausts the budget and fails the job, with the injected panic
/// message preserved.
#[test]
fn unrelenting_kills_exhaust_the_retry_budget() {
    let bench = ripple_adder_bench_text(8);
    let plan = Arc::new(FaultPlan::new(5).leg_kill(1.0));
    let mut engine = JobEngine::new(EngineConfig {
        max_retries: 3,
        fault_plan: Some(plan),
        ..test_config()
    });
    submit_ok(&mut engine, &fsim_request(&bench, 2000));
    let record = engine.run_next().expect("queued");
    assert_eq!(record.status, JobStatus::Failed);
    assert_eq!(record.legs, 4, "initial attempt + 3 retries");
    assert_eq!(record.retries, 4);
    assert!(
        record
            .error
            .as_deref()
            .unwrap_or("")
            .contains("injected job kill"),
        "error lost: {:?}",
        record.error
    );
}

/// Injected deadline expiry is absorbed: every leg sees an already-
/// expired budget, checkpoints at its first chunk boundary, and the
/// forward-progress guarantee still drives the job to completion with
/// a result identical to the undisturbed run.
#[test]
fn expire_injection_degrades_to_many_legs_not_failure() {
    let bench = ripple_adder_bench_text(24);
    // 40 000 patterns span three 16 384-pattern fsim chunks, and the
    // biased weights keep hard-fault tails live past the first chunk,
    // so an always-expired budget (which stops at every chunk
    // boundary) must produce several legs.
    let request = hard_fsim_request(&bench, 49, 40_000);
    let reference = {
        let mut engine = JobEngine::new(test_config());
        let verdict = engine.submit_json(&request);
        assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(true));
        engine.run_next().expect("queued").result.to_string()
    };
    let plan = Arc::new(FaultPlan::new(9).leg_expire(1.0));
    let mut engine = JobEngine::new(EngineConfig {
        fault_plan: Some(plan),
        ..test_config()
    });
    let verdict = engine.submit_json(&request);
    assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(true));
    let record = engine.run_next().expect("queued");
    assert_eq!(record.status, JobStatus::Completed);
    assert_eq!(record.retries, 0, "expiry is not a failure");
    assert!(record.legs > 1, "expiry must slice the run into legs");
    assert_eq!(
        record.stop,
        Some(StopReason::Deadline),
        "the injected expiry is the recorded stop"
    );
    assert_eq!(record.result.to_string(), reference);
}

/// A full queue sheds new submissions with a structured rejection
/// naming the reason, the capacity, and the pending count.
#[test]
fn full_queue_sheds_with_structured_rejection() {
    let bench = ripple_adder_bench_text(4);
    let mut engine = JobEngine::new(EngineConfig {
        queue_capacity: 2,
        ..test_config()
    });
    submit_ok(&mut engine, &fsim_request(&bench, 100));
    submit_ok(&mut engine, &fsim_request(&bench, 100));
    let verdict = engine.submit_json(&Json::parse(&fsim_request(&bench, 100)).unwrap());
    assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(verdict.get("shed").and_then(Json::as_bool), Some(true));
    assert_eq!(
        verdict.get("reason").and_then(Json::as_str),
        Some("queue full")
    );
    assert_eq!(verdict.get("capacity").and_then(Json::as_u64), Some(2));
    assert_eq!(verdict.get("pending").and_then(Json::as_u64), Some(2));
    // The queue drains normally afterwards; service resumes.
    assert_eq!(engine.drain().len(), 2);
    submit_ok(&mut engine, &fsim_request(&bench, 100));
    assert_eq!(engine.pending(), 1);
}

/// A job timeout surfaces `DeadlineExceeded` with the partial result of
/// the last committed checkpoint, not a failure and not a hang.
#[test]
fn job_timeout_reports_partial_result() {
    let bench = ripple_adder_bench_text(64);
    let mut engine = JobEngine::new(EngineConfig {
        leg_patterns: Some(1024),
        ..test_config()
    });
    let mut request = hard_fsim_request(&bench, 129, 1 << 40);
    let Json::Obj(members) = &mut request else {
        unreachable!()
    };
    members.push(("timeout_ms".into(), Json::num(50)));
    let verdict = engine.submit_json(&request);
    assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(true));
    let record = engine.run_next().expect("queued");
    assert_eq!(record.status, JobStatus::DeadlineExceeded);
    // The last leg stopped either on the job deadline or on its own
    // pattern slice right as the deadline passed — both are clean
    // checkpoint boundaries, never a failure.
    assert!(record.stop.is_some());
    assert_eq!(record.retries, 0);
    let patterns = record
        .result
        .get("patterns")
        .and_then(Json::as_u64)
        .expect("partial result carries progress");
    assert!(patterns > 0, "at least one leg of work committed");
    assert_eq!(
        record.result.get("complete").and_then(Json::as_bool),
        Some(false)
    );
    assert!(record.elapsed >= Duration::from_millis(50));
}

/// Cache poisoning injected at insert time is caught by validation-on-
/// hit: repeated submissions of the same netlist trigger a validation
/// that evicts the poisoned entry, visible in the engine stats.
#[test]
fn poisoned_cache_entry_is_evicted_by_validation() {
    let bench = ripple_adder_bench_text(6);
    let plan = Arc::new(FaultPlan::new(2).cache_poison(1.0));
    let mut engine = JobEngine::new(EngineConfig {
        validate_every: 2,
        queue_capacity: 16,
        fault_plan: Some(plan),
        ..test_config()
    });
    for _ in 0..4 {
        submit_ok(&mut engine, &fsim_request(&bench, 64));
    }
    let stats = engine.stats_json();
    let cache = stats.get("cache").expect("cache stats");
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(3));
    assert!(cache.get("validations").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(
        cache.get("evictions").and_then(Json::as_u64),
        Some(1),
        "poisoned fingerprint must be caught exactly once: {stats}"
    );
    // The jobs themselves are unharmed — the poison corrupts integrity
    // metadata, not the compiled network.
    for record in engine.drain() {
        assert_eq!(record.status, JobStatus::Completed);
    }
}

/// Malformed submissions get structured errors, not panics; the engine
/// keeps serving afterwards.
#[test]
fn bad_requests_are_rejected_with_reasons() {
    let mut engine = JobEngine::new(test_config());
    let cases = [
        (r#"{"netlist":"x"}"#, "missing \"kind\""),
        (r#"{"kind":"fsim"}"#, "missing \"netlist\""),
        (r#"{"kind":"nope","netlist":"a"}"#, "does not compile"),
    ];
    for (request, needle) in cases {
        let verdict = engine.submit_json(&Json::parse(request).unwrap());
        assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(false));
        let error = verdict.get("error").and_then(Json::as_str).unwrap();
        assert!(error.contains(needle), "error {error:?} lacks {needle:?}");
    }
    let bench = ripple_adder_bench_text(2);
    let verdict = engine.submit_json(
        &Json::parse(&format!(
            r#"{{"kind":"warp","netlist":{}}}"#,
            Json::str(bench.clone())
        ))
        .unwrap(),
    );
    let error = verdict.get("error").and_then(Json::as_str).unwrap();
    assert!(error.contains("unknown job kind"), "{error}");
    // Still serving.
    submit_ok(&mut engine, &fsim_request(&bench, 16));
}

/// Backoff delays are deterministic, exponential up to the cap, and
/// jittered within [0.5, 1.5) of the nominal delay.
#[test]
fn backoff_policy_is_bounded_and_deterministic() {
    let policy = BackoffPolicy {
        base_ms: 25,
        cap_ms: 2000,
        seed: 42,
    };
    for job in 1..=5u64 {
        for retry in 1..=10u32 {
            let d = policy.delay(job, retry);
            let nominal = 25u64.saturating_mul(1 << (retry - 1)).min(2000);
            let lo = Duration::from_millis(nominal / 2);
            let hi = Duration::from_millis(nominal + nominal / 2 + 1);
            assert!(
                d >= lo && d < hi,
                "job {job} retry {retry}: {d:?} outside [{lo:?}, {hi:?})"
            );
            assert_eq!(d, policy.delay(job, retry), "jitter must be deterministic");
        }
    }
    // Different jobs decorrelate.
    assert_ne!(policy.delay(1, 3), policy.delay(2, 3));
    // base 0 disables sleeping.
    let off = BackoffPolicy {
        base_ms: 0,
        cap_ms: 0,
        seed: 0,
    };
    assert_eq!(off.delay(7, 4), Duration::ZERO);
}

/// Every built-in kernel kind completes through the engine and reports
/// a `complete: true` result under injected kills.
#[test]
fn all_builtin_kinds_survive_kill_injection() {
    let bench = ripple_adder_bench_text(3);
    let cell = "TECHNOLOGY domino-CMOS; INPUT a,b,c; OUTPUT z; z := a*b + c;";
    let kinds: [(&str, &str, &str); 7] = [
        ("fsim", "bench", &bench),
        ("mc-detect", "bench", &bench),
        ("mc-signal", "bench", &bench),
        ("detect", "cell", cell),
        ("length", "cell", cell),
        ("optimize", "cell", cell),
        ("testability", "bench", &bench),
    ];
    let plan = Arc::new(FaultPlan::new(21).kill_at(&[0]));
    let mut engine = JobEngine::new(EngineConfig {
        queue_capacity: 16,
        leg_patterns: Some(1024),
        fault_plan: Some(plan),
        ..test_config()
    });
    for (kind, format, netlist) in kinds {
        let request = Json::Obj(vec![
            ("kind".into(), Json::str(kind)),
            ("format".into(), Json::str(format)),
            ("netlist".into(), Json::str(netlist.to_owned())),
            ("patterns".into(), Json::num(2000)),
            ("samples".into(), Json::num(2000)),
            ("fault_limit".into(), Json::num(16)),
        ]);
        let verdict = engine.submit_json(&request);
        assert_eq!(
            verdict.get("ok").and_then(Json::as_bool),
            Some(true),
            "{kind}: {verdict}"
        );
    }
    let records = engine.drain();
    assert_eq!(records.len(), 7);
    for record in records {
        assert_eq!(record.status, JobStatus::Completed, "kind {}", record.kind);
        assert_eq!(record.retries, 1, "kind {}: leg 0 was killed", record.kind);
        assert_eq!(
            record.result.get("complete").and_then(Json::as_bool),
            Some(true),
            "kind {}: {}",
            record.kind,
            record.result
        );
    }
}
