//! Property-based tests for PROTEST.

use dynmos_netlist::generate::{random_domino_network, single_cell_network};
use dynmos_netlist::Cell;
use dynmos_protest::{
    detection_probabilities, escape_probability, exact_detection_probability, network_fault_list,
    test_length, test_length_per_fault, FaultSimulator, PatternSource,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Escape probability is monotone decreasing in the pattern count and
    /// in the detection probability.
    #[test]
    fn escape_probability_monotone(p in 0.01f64..0.99, n in 1u64..1000) {
        prop_assert!(escape_probability(p, n + 1) <= escape_probability(p, n));
        prop_assert!(escape_probability(p + 0.005, n) <= escape_probability(p, n));
    }

    /// Per-fault test length achieves the confidence and is tight.
    #[test]
    fn per_fault_length_is_tight(p in 0.001f64..0.9, c in 0.5f64..0.9999) {
        let n = test_length_per_fault(p, c);
        prop_assert!(1.0 - escape_probability(p, n) >= c - 1e-12);
        if n > 1 {
            prop_assert!(1.0 - escape_probability(p, n - 1) < c + 1e-9);
        }
    }

    /// Joint test length is monotone in confidence and dominated by the
    /// weakest fault.
    #[test]
    fn joint_length_monotone(
        probs in prop::collection::vec(0.01f64..0.9, 1..6),
        c in 0.5f64..0.99,
    ) {
        let n_lo = test_length(&probs, c);
        let n_hi = test_length(&probs, (c + 1.0) / 2.0);
        prop_assert!(n_hi >= n_lo);
        let weakest = probs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(n_lo >= test_length_per_fault(weakest, c));
    }

    /// The shared-enumeration detection probabilities (compiled
    /// evaluator, cone-incremental faulty replay) agree with a
    /// per-fault reference computed on the legacy interpreter.
    #[test]
    fn detection_probabilities_match_interpreter_reference(seed in 0u64..400) {
        let net = random_domino_network(seed, 3, 4);
        let n = net.primary_inputs().len();
        prop_assume!(n <= 8);
        let faults = network_fault_list(&net);
        let probs: Vec<f64> = (0..n).map(|i| 0.3 + 0.05 * i as f64).collect();
        let fast = detection_probabilities(&net, &faults, &probs);
        for (e, got) in faults.iter().zip(&fast) {
            // Reference: scalar weighted enumeration on the interpreter.
            let mut expect = 0.0f64;
            for w in 0..(1u64 << n) {
                let lanes: Vec<u64> = (0..n).map(|i| (w >> i) & 1).collect();
                let good = net.eval_packed_all_reference(&lanes, None);
                let bad = net.eval_packed_all_reference(&lanes, Some(&e.fault));
                let detected = net
                    .primary_outputs()
                    .iter()
                    .any(|po| good[po.index()] & 1 != bad[po.index()] & 1);
                if detected {
                    let mut weight = 1.0;
                    for (i, &p) in probs.iter().enumerate() {
                        weight *= if (w >> i) & 1 == 1 { p } else { 1.0 - p };
                    }
                    expect += weight;
                }
            }
            prop_assert!((got - expect).abs() < 1e-9, "{}: {} vs {}", e.label, got, expect);
        }
    }

    /// Detection probabilities are probabilities, and the fault-free
    /// "fault" would be zero (checked via label-free construction).
    #[test]
    fn detection_probabilities_in_range(seed in 0u64..500) {
        let net = random_domino_network(seed, 3, 4);
        prop_assume!(net.primary_inputs().len() <= 10);
        let faults = network_fault_list(&net);
        let n = net.primary_inputs().len();
        let det = detection_probabilities(&net, &faults, &vec![0.5; n]);
        for (e, p) in faults.iter().zip(&det) {
            prop_assert!((0.0..=1.0).contains(p), "{}: {}", e.label, p);
        }
    }

    /// Raising the probability of patterns that detect a fault never
    /// lowers its detection probability — checked on the wide AND where
    /// the monotone direction is known.
    #[test]
    fn weighting_monotone_on_wide_and(p in 0.5f64..0.95) {
        use dynmos_netlist::generate::domino_wide_and;
        let net = single_cell_network(domino_wide_and(6));
        let faults = network_fault_list(&net);
        // The s0-z class needs the all-ones pattern.
        let s0z = faults
            .iter()
            .find(|e| matches!(
                &e.fault,
                dynmos_netlist::NetworkFault::GateFunction(_, f)
                    if *f == dynmos_logic::Bexpr::FALSE
            ))
            .expect("s0-z exists");
        let base = exact_detection_probability(&net, &s0z.fault, &[p; 6]);
        let higher = exact_detection_probability(&net, &s0z.fault, &[p + 0.04; 6]);
        prop_assert!(higher >= base);
    }

    /// Fault simulation detection is consistent: a fault detected by a
    /// pattern set is also detected by any superset.
    #[test]
    fn detection_is_monotone_in_patterns(seed in 0u64..200, extra in 1usize..4) {
        let net = random_domino_network(seed, 3, 4);
        let faults = network_fault_list(&net);
        let n = net.primary_inputs().len();
        let mut src = PatternSource::uniform(seed, n);
        let base: Vec<Vec<bool>> = (0..8).map(|_| src.next_pattern()).collect();
        let mut superset = base.clone();
        for _ in 0..extra {
            superset.push(src.next_pattern());
        }
        let sim = FaultSimulator::new(&net);
        let d_base = sim.run_patterns(&faults, &base);
        let d_super = sim.run_patterns(&faults, &superset);
        for (i, d) in d_base.detected_at.iter().enumerate() {
            if d.is_some() {
                prop_assert!(d_super.detected_at[i].is_some(), "fault {} lost", i);
                prop_assert_eq!(d_super.detected_at[i], *d);
            }
        }
    }

    /// The number of library-derived fault entries equals classes summed
    /// over gates plus 2 per primary input.
    #[test]
    fn fault_list_size_formula(seed in 0u64..200) {
        use dynmos_core::FaultLibrary;
        let net = random_domino_network(seed, 3, 3);
        let list = network_fault_list(&net);
        let classes: usize = (0..net.gates().len())
            .map(|g| {
                let cell: &Cell = net.cell_of(dynmos_netlist::GateRef(g as u32));
                FaultLibrary::generate(cell).classes().len()
            })
            .sum();
        prop_assert_eq!(list.len(), classes + 2 * net.primary_inputs().len());
    }
}

/// Empirical law-of-large-numbers check tying the exact detection
/// probability to simulated detection frequency.
#[test]
fn exact_probability_matches_simulated_frequency() {
    use dynmos_netlist::generate::domino_wide_and;
    let n = 6;
    let net = single_cell_network(domino_wide_and(n));
    let faults = network_fault_list(&net);
    let s0z = faults
        .iter()
        .find(|e| {
            matches!(
                &e.fault,
                dynmos_netlist::NetworkFault::GateFunction(_, f)
                    if *f == dynmos_logic::Bexpr::FALSE
            )
        })
        .expect("s0-z exists");
    let p = exact_detection_probability(&net, &s0z.fault, &vec![0.5; n]);
    // Count detecting patterns among 64k random ones.
    let mut src = PatternSource::uniform(5, n);
    let mut detecting = 0u64;
    let total = 65_536u64;
    let sim = FaultSimulator::new(&net);
    let mut seen = 0u64;
    while seen < total {
        let batch = src.next_batch();
        let good = net.eval_packed(&batch);
        let bad = net.eval_packed_faulty(&batch, Some(&s0z.fault));
        let mut differ = 0u64;
        for (g, b) in good.iter().zip(&bad) {
            differ |= g ^ b;
        }
        detecting += differ.count_ones() as u64;
        seen += 64;
    }
    let _ = sim;
    let freq = detecting as f64 / total as f64;
    assert!(
        (freq - p).abs() < 0.005,
        "frequency {freq} vs exact {p} (n={n})"
    );
}
