//! Budget/checkpoint differential tests: a kernel run interrupted by a
//! [`RunBudget`] and resumed from its checkpoint must be bit-identical
//! to the uninterrupted serial run — per-fault detection indices,
//! pattern counts, coverage curves, stream cursors, and Monte-Carlo
//! estimates — at every tested thread count and on both shard axes
//! (fault-sharded many-fault runs and pattern-sharded few-fault runs).

use dynmos_netlist::generate::ripple_adder;
use dynmos_protest::{
    detection_probability_estimates_with, mc_detection_probabilities_budgeted,
    mc_detection_probabilities_par, mc_detection_resume, mc_signal_probability_budgeted,
    mc_signal_probability_par, mc_signal_resume, stuck_fault_list, EstimateMethod, FaultEntry,
    FaultSimulator, Parallelism, PatternSource, RunBudget, RunStatus, StopReason,
    TestabilityConfig, TierMode,
};
use std::time::Duration;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const SEED: u64 = 0xFACE;
const PATTERN_BUDGET: u64 = 5000;

/// Budget-interrupted-then-resumed fault simulation on the ISCAS-scale
/// adder, across both shard axes (1 fault = pattern axis, 500 faults =
/// fault axis) — the acceptance criterion of the budget subsystem.
#[test]
fn interrupted_fsim_resumes_bit_identical_to_serial() {
    let net = ripple_adder(80); // 400 gates
    let all = stuck_fault_list(&net);
    let n = net.primary_inputs().len();
    // Heavily biased weights keep hard-fault tails live deep into the
    // budget, so resumed legs do real work over their whole ranges.
    let probs = vec![0.0625f64; n];
    // Fault 180 survives all 5000 patterns under these weights, so the
    // single-fault (pattern-axis) run cannot finish by early coverage
    // exit before the per-leg cap interrupts it.
    let cases: [Vec<FaultEntry>; 2] = [
        vec![all[180].clone()],
        all.iter().take(500).cloned().collect(),
    ];
    for faults in cases {
        let fault_count = faults.len();
        let mut serial_src = PatternSource::new(SEED, probs.clone());
        let serial = FaultSimulator::with_parallelism(&net, Parallelism::Serial).run_random(
            &faults,
            &mut serial_src,
            PATTERN_BUDGET,
        );
        for threads in THREAD_COUNTS {
            // Each leg is capped at 1024 patterns, forcing repeated
            // PatternCap interrupts before the 5000-pattern run ends.
            let leg = || RunBudget::unlimited().with_max_patterns(1024);
            let mut src = PatternSource::new(SEED, probs.clone());
            let sim = FaultSimulator::with_parallelism(&net, Parallelism::Fixed(threads));
            let mut run = sim.run_random_budgeted(&faults, &mut src, PATTERN_BUDGET, &leg());
            let mut legs = 1usize;
            while let Some(cp) = run.checkpoint.take() {
                assert_eq!(
                    run.status,
                    RunStatus::Interrupted(StopReason::PatternCap),
                    "{fault_count} faults, {threads} threads, leg {legs}"
                );
                // Partial outcomes are valid: never more patterns than
                // the cap allows, detections a prefix of the final set.
                assert!(run.outcome.patterns_applied <= legs as u64 * 1024);
                run = sim.resume_random(&faults, &mut src, cp, &leg());
                legs += 1;
            }
            assert!(
                legs > 1,
                "{fault_count} faults, {threads} threads: expected interrupts"
            );
            assert!(run.status.is_complete());
            assert_eq!(
                run.outcome.detected_at, serial.detected_at,
                "{fault_count} faults: detection indices differ at {threads} threads"
            );
            assert_eq!(
                run.outcome.patterns_applied, serial.patterns_applied,
                "{fault_count} faults: pattern counts differ at {threads} threads"
            );
            assert_eq!(
                run.outcome.coverage_curve, serial.coverage_curve,
                "{fault_count} faults: coverage curves differ at {threads} threads"
            );
            assert_eq!(
                src.position(),
                serial_src.position(),
                "{fault_count} faults: stream cursors differ at {threads} threads"
            );
        }
    }
}

/// The always-expired deadline is the adversarial resume loop: every
/// leg stops at its first chunk boundary, and forward progress is the
/// only thing driving the run to completion.
#[test]
fn expired_deadline_legs_still_complete_and_match_serial() {
    let net = ripple_adder(24);
    let faults = stuck_fault_list(&net);
    let n = net.primary_inputs().len();
    let probs = vec![0.25f64; n];
    let mut serial_src = PatternSource::new(7, probs.clone());
    let serial = FaultSimulator::with_parallelism(&net, Parallelism::Serial).run_random(
        &faults,
        &mut serial_src,
        4096,
    );
    let leg = || RunBudget::deadline_in(Duration::ZERO);
    let mut src = PatternSource::new(7, probs.clone());
    let sim = FaultSimulator::with_parallelism(&net, Parallelism::Fixed(2));
    let mut run = sim.run_random_budgeted(&faults, &mut src, 4096, &leg());
    let mut legs = 1usize;
    while let Some(cp) = run.checkpoint.take() {
        run = sim.resume_random(&faults, &mut src, cp, &leg());
        legs += 1;
        assert!(legs < 10_000, "no forward progress under expired deadline");
    }
    assert!(run.status.is_complete());
    assert_eq!(run.outcome.detected_at, serial.detected_at);
    assert_eq!(run.outcome.patterns_applied, serial.patterns_applied);
    assert_eq!(run.outcome.coverage_curve, serial.coverage_curve);
    assert_eq!(src.position(), serial_src.position());
}

/// Budget-interrupted-then-resumed Monte-Carlo detection estimation,
/// across both shard axes (1 fault = pass axis, 24 faults = fault
/// axis).
#[test]
fn interrupted_mc_detection_resumes_bit_identical() {
    let net = ripple_adder(24);
    let all = stuck_fault_list(&net);
    let n = net.primary_inputs().len();
    let probs: Vec<f64> = (0..n).map(|i| [0.9375, 0.5, 0.25][i % 3]).collect();
    let samples = 9_999u64;
    for fault_count in [1usize, 24] {
        let faults: Vec<FaultEntry> = all.iter().take(fault_count).cloned().collect();
        let serial =
            mc_detection_probabilities_par(&net, &faults, &probs, 42, samples, Parallelism::Serial);
        for threads in THREAD_COUNTS {
            let par = Parallelism::Fixed(threads);
            // 2048 samples per leg: five legs to finish 9 999.
            let leg = || RunBudget::unlimited().with_max_patterns(2048);
            let mut run = mc_detection_probabilities_budgeted(
                &net,
                &faults,
                &probs,
                42,
                samples,
                par,
                &leg(),
            );
            let mut legs = 1usize;
            while let Some(cp) = run.checkpoint.take() {
                assert_eq!(run.status, RunStatus::Interrupted(StopReason::PatternCap));
                run = mc_detection_resume(&net, &faults, &probs, 42, par, &leg(), cp);
                legs += 1;
            }
            assert!(legs > 1, "{fault_count} faults at {threads} threads");
            assert!(run.status.is_complete());
            assert_eq!(
                run.estimates, serial,
                "{fault_count} faults: estimates differ at {threads} threads"
            );
        }
    }
}

/// Budget-interrupted-then-resumed Monte-Carlo signal estimation.
#[test]
fn interrupted_mc_signal_resumes_bit_identical() {
    let net = ripple_adder(24);
    let n = net.primary_inputs().len();
    let probs: Vec<f64> = (0..n).map(|i| [0.75, 0.5][i % 2]).collect();
    let po = net.primary_outputs()[0];
    let serial = mc_signal_probability_par(&net, po, &probs, 99, 7_777, Parallelism::Serial);
    for threads in THREAD_COUNTS {
        let par = Parallelism::Fixed(threads);
        let leg = || RunBudget::unlimited().with_max_patterns(2048);
        let mut run = mc_signal_probability_budgeted(&net, po, &probs, 99, 7_777, par, &leg());
        let mut legs = 1usize;
        while let Some(cp) = run.checkpoint.take() {
            run = mc_signal_resume(&net, po, &probs, 99, par, &leg(), cp);
            legs += 1;
        }
        assert!(legs > 1, "threads={threads}");
        assert!(run.status.is_complete());
        assert_eq!(run.estimate, serial, "threads={threads}");
    }
}

/// A worker that panics on both the sharded attempt and the serial
/// retry must surface as `Interrupted(WorkerFailed)` with the
/// [`dynmos_protest::ShardError`] attached — without losing coverage
/// already merged from earlier chunks: the checkpoint stays at the last
/// merged boundary, and a healthy resume from it finishes bit-identical
/// to the uninterrupted serial run.
#[test]
fn double_panicking_worker_surfaces_error_and_keeps_merged_coverage() {
    use dynmos_protest::chaos;
    use dynmos_protest::FaultPlan;
    use std::sync::Arc;

    let net = ripple_adder(80);
    let faults: Vec<FaultEntry> = stuck_fault_list(&net).into_iter().take(500).collect();
    let n = net.primary_inputs().len();
    let probs = vec![0.0625f64; n];
    let mut serial_src = PatternSource::new(SEED, probs.clone());
    let serial = FaultSimulator::with_parallelism(&net, Parallelism::Serial).run_random(
        &faults,
        &mut serial_src,
        PATTERN_BUDGET,
    );
    let sim = FaultSimulator::with_parallelism(&net, Parallelism::Fixed(2));
    let leg = || RunBudget::unlimited().with_max_patterns(1024);

    // Leg 1 under an inert plan: a clean 1024-pattern chunk merges.
    let inert = Arc::new(FaultPlan::new(0));
    let mut src = PatternSource::new(SEED, probs.clone());
    let run = chaos::scoped(inert.clone(), || {
        sim.run_random_budgeted(&faults, &mut src, PATTERN_BUDGET, &leg())
    });
    assert_eq!(run.status, RunStatus::Interrupted(StopReason::PatternCap));
    assert!(run.worker_error.is_none());
    let cp = run.checkpoint.expect("leg 1 checkpoint");
    let merged_patterns = cp.patterns_done();
    let merged_detected = cp.detected_count();
    assert_eq!(merged_patterns, 1024);

    // Leg 2 under a plan whose workers panic on the sharded attempt
    // AND the serial retry: the leg must stop with WorkerFailed, keep
    // the error, and keep the checkpoint at the leg-1 boundary (the
    // failed chunk is not merged).
    let hostile = Arc::new(FaultPlan::new(3).worker_panic_persistent(1.0));
    let run = chaos::scoped(hostile, || sim.resume_random(&faults, &mut src, cp, &leg()));
    assert_eq!(run.status, RunStatus::Interrupted(StopReason::WorkerFailed));
    let err = run.worker_error.expect("shard error travels with the stop");
    assert!(
        err.to_string().contains("injected persistent worker panic"),
        "unexpected shard error: {err}"
    );
    let cp = run.checkpoint.expect("checkpoint survives the failure");
    assert_eq!(
        cp.patterns_done(),
        merged_patterns,
        "failed chunk must not advance the checkpoint"
    );
    assert_eq!(
        cp.detected_count(),
        merged_detected,
        "already-merged coverage lost by the failed leg"
    );

    // Healthy resume loop from that same checkpoint: bit-identical to
    // the uninterrupted serial run. The stream is rebuilt because the
    // failed leg consumed source batches for the unmerged chunk;
    // checkpoint batch addressing is absolute, so only seed and
    // weights matter.
    let mut src = PatternSource::new(SEED, probs.clone());
    let run = chaos::scoped(inert, || {
        let mut run = sim.resume_random(&faults, &mut src, cp, &leg());
        while let Some(cp) = run.checkpoint.take() {
            run = sim.resume_random(&faults, &mut src, cp, &leg());
        }
        run
    });
    assert!(run.status.is_complete());
    assert!(run.worker_error.is_none());
    assert_eq!(run.outcome.detected_at, serial.detected_at);
    assert_eq!(run.outcome.patterns_applied, serial.patterns_applied);
    assert_eq!(run.outcome.coverage_curve, serial.coverage_curve);
}

/// The over-cap degradation rule through the public estimator: within
/// the row cap the values are the exact enumeration's; over it the
/// tiered engine drops to the symbolic BDD tier — still exact, zero
/// standard error — instead of refusing (the adder has 49 inputs — the
/// old exact path would have asserted).
#[test]
fn estimator_degrades_exactly_at_the_row_cap() {
    let net = ripple_adder(24); // 49 inputs: over any exact cap
    let faults: Vec<FaultEntry> = stuck_fault_list(&net).into_iter().take(8).collect();
    let n = net.primary_inputs().len();
    let probs = vec![0.5f64; n];
    let est = detection_probability_estimates_with(
        &net,
        &faults,
        &probs,
        Parallelism::Fixed(2),
        &RunBudget::unlimited().with_max_exact_rows(1 << 12),
        &TestabilityConfig::new(TierMode::Auto).with_seed(0xBEEF),
    )
    .expect("completes");
    assert!(est.iter().all(|e| e.method == EstimateMethod::Bdd));
    assert!(est.iter().all(|e| e.std_error == 0.0));
    assert!(est.iter().any(|e| e.value > 0.0));
}
